//! # dyc-suite — workspace umbrella
//!
//! This crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`) of the DyC-RS
//! workspace. The library to depend on is [`dyc`]; the benchmark suite is
//! [`dyc_workloads`]; the table-reproduction harnesses live in the
//! `dyc-bench` crate's binaries.
//!
//! See the workspace `README.md` for the project overview, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the paper-vs-
//! measured results.

pub use dyc;
pub use dyc_workloads;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compile() {
        let _ = crate::dyc::Compiler::new();
        assert!(crate::dyc_workloads::all().len() >= 10);
    }
}
