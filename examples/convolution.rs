//! The paper's running example (Figures 2–4): image convolution
//! specialized on the convolution matrix.
//!
//! Shows the three stages the paper illustrates:
//!   Figure 2 — the annotated source;
//!   Figure 3 — unrolled, constant-instantiated code (zero/copy
//!              propagation and dead-assignment elimination disabled);
//!   Figure 4 — the fully optimized region.
//!
//! ```sh
//! cargo run --example convolution
//! ```

use dyc::{Compiler, OptConfig, Value};
use dyc_workloads::pnmconvol::Pnmconvol;
use dyc_workloads::Workload;

fn specialize_and_report(cfg: OptConfig, label: &str, w: &Pnmconvol) {
    let program = Compiler::with_config(cfg).compile(&w.source()).unwrap();
    let mut d = program.dynamic_session();
    let args = w.setup_region(&mut d);
    d.run("do_convol", &args).unwrap();
    assert!(w.check_region(None, &mut d), "wrong convolution result");
    let rt = d.rt_stats().unwrap().clone();
    println!("=== {label} ===");
    println!(
        "generated {} instructions; {} zero/copy folds; {} dead assignments removed",
        rt.instrs_generated, rt.zero_copy_folds, rt.dae_removed
    );
    let name = &d.generated_functions()[0];
    let listing = d.disassemble(name).unwrap();
    // The full listing is long; show the first unrolled iterations.
    for line in listing.lines().take(24) {
        println!("{line}");
    }
    println!(
        "  ... ({} more lines)\n",
        listing.lines().count().saturating_sub(24)
    );
}

fn main() {
    let w = Pnmconvol {
        csize: 3,
        irows: 6,
        icols: 6,
    };

    println!("=== Figure 2: annotated source ===");
    println!("{}\n", dyc_workloads::pnmconvol::SOURCE);
    println!(
        "convolution matrix (3x3 for readability): {:?}\n",
        w.matrix()
    );

    // Figure 3: unrolling + static loads, but no value-dependent opts.
    let partial = OptConfig::all()
        .without("zero_copy_propagation")
        .unwrap()
        .without("dead_assignment_elimination")
        .unwrap()
        .without("strength_reduction")
        .unwrap();
    specialize_and_report(partial, "Figure 3: partially optimized (no ZCP/DAE)", &w);

    // Figure 4: everything on.
    specialize_and_report(OptConfig::all(), "Figure 4: fully optimized", &w);

    // And the numbers: static vs dynamic cycles per invocation.
    let program = Compiler::new().compile(&w.source()).unwrap();
    let mut s = program.static_session();
    let sargs = w.setup_region(&mut s);
    let (_, sc) = s.run_measured("do_convol", &sargs).unwrap();
    let mut d = program.dynamic_session();
    let dargs = w.setup_region(&mut d);
    d.run("do_convol", &dargs).unwrap(); // compile
    let (_, dc) = d.run_measured("do_convol", &dargs).unwrap();
    println!(
        "static {} cycles vs specialized {} cycles -> {:.2}x asymptotic speedup",
        sc.run_cycles(),
        dc.run_cycles(),
        sc.run_cycles() as f64 / dc.run_cycles() as f64
    );
    let _ = Value::I(0);
}
