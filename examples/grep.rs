//! The paper's other §3.1 scenario: a grep-style substring searcher
//! specialized on its pattern.
//!
//! The pattern bytes are run-time constants, so the inner comparison loop
//! completely unrolls into a straight chain of compare-and-branch pairs
//! with the pattern bytes as immediates — the code a programmer would
//! hand-write for that exact pattern.
//!
//! ```sh
//! cargo run --example grep
//! ```

use dyc::{Compiler, Value};

const SOURCE: &str = r#"
    /* Count occurrences of the pattern in the text. The whole search is
       one dynamic region: the pattern loop unrolls into immediate
       compares inside the residual position loop, and the dispatch
       happens once per search, not once per position. */
    int grep(int pat[m], int m, int text[n], int n) {
        make_static(pat, m);
        int count = 0;
        int i = 0;
        int last = n - m;
        while (i <= last) {
            int ok = 1;
            int j = 0;
            while (j < m) {
                if (text[i + j] != pat@[j]) { ok = 0; break; }
                j = j + 1;
            }
            count = count + ok;
            i = i + 1;
        }
        return count;
    }
"#;

fn bytes(s: &str) -> Vec<i64> {
    s.bytes().map(i64::from).collect()
}

fn main() {
    let text = bytes("the quick brown fox jumps over the lazy dog; the dog does not mind the fox");
    let pattern = bytes("the");

    let program = Compiler::new().compile(SOURCE).expect("compiles");

    let setup = |sess: &mut dyc::Session| -> Vec<Value> {
        let p = sess.alloc(pattern.len());
        sess.mem().write_ints(p, &pattern);
        let t = sess.alloc(text.len());
        sess.mem().write_ints(t, &text);
        vec![
            Value::I(p),
            Value::I(pattern.len() as i64),
            Value::I(t),
            Value::I(text.len() as i64),
        ]
    };

    let mut stat = program.static_session();
    let sargs = setup(&mut stat);
    let (count, sc) = stat.run_measured("grep", &sargs).unwrap();
    println!(
        "static : {} matches in {} cycles",
        count.unwrap(),
        sc.run_cycles()
    );

    let mut dynm = program.dynamic_session();
    let dargs = setup(&mut dynm);
    let (count, first) = dynm.run_measured("grep", &dargs).unwrap();
    println!(
        "dynamic: {} matches in {} cycles (+{} compiling the pattern matcher)",
        count.unwrap(),
        first.run_cycles(),
        first.dyncomp_cycles
    );
    let (_, steady) = dynm.run_measured("grep", &dargs).unwrap();
    println!(
        "steady : {} cycles -> {:.2}x speedup",
        steady.run_cycles(),
        sc.run_cycles() as f64 / steady.run_cycles() as f64
    );

    // The specialized searcher: pattern bytes baked in as immediates.
    println!("\nspecialized searcher for \"the\":");
    for name in dynm.generated_functions() {
        print!("{}", dynm.disassemble(&name).unwrap());
    }
    println!(
        "\n§3.1: \"a version of grep could become profitable to compile\n\
         dynamically\" — the pattern loop is gone; each position costs a\n\
         few compares against immediate bytes."
    );
}
