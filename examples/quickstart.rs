//! Quickstart: compile an annotated function, run it statically and
//! dynamically, and inspect what the dynamic compiler produced.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dyc::{Compiler, Value};

fn main() {
    let source = r#"
        /* Exponentiation, specialized on the (rarely changing) exponent. */
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) {
                r = r * base;
                exp = exp - 1;
            }
            return r;
        }
    "#;

    let program = Compiler::new().compile(source).expect("compiles");

    // The statically compiled version runs the loop every call.
    let mut stat = program.static_session();
    let (out, cycles) = stat
        .run_measured("power", &[Value::I(3), Value::I(12)])
        .unwrap();
    println!(
        "static : power(3, 12) = {:?} in {} cycles",
        out.unwrap(),
        cycles.run_cycles()
    );

    // The dynamic version compiles a specialized power-of-12 on first call…
    let mut dyn_ = program.dynamic_session();
    let (out, first) = dyn_
        .run_measured("power", &[Value::I(3), Value::I(12)])
        .unwrap();
    println!(
        "dynamic: power(3, 12) = {:?} in {} cycles (+{} compiling)",
        out.unwrap(),
        first.run_cycles(),
        first.dyncomp_cycles
    );

    // …and reuses it from the code cache afterwards.
    let (out, steady) = dyn_
        .run_measured("power", &[Value::I(5), Value::I(12)])
        .unwrap();
    println!(
        "dynamic: power(5, 12) = {:?} in {} cycles (cache hit)",
        out.unwrap(),
        steady.run_cycles()
    );
    println!(
        "asymptotic speedup: {:.2}x",
        cycles.run_cycles() as f64 / steady.run_cycles() as f64
    );

    // The specialized code: twelve multiplies, no loop.
    for name in dyn_.generated_functions() {
        println!("\n{}", dyn_.disassemble(&name).unwrap());
    }
}
