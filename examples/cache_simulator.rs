//! Specializing a cache simulator on its configuration — the dinero
//! scenario. The configuration parameters fold into the hot loop as
//! immediates; the modulo/division by the set count strength-reduce to
//! mask and shift.
//!
//! ```sh
//! cargo run --example cache_simulator
//! ```

use dyc::{Compiler, Value};
use dyc_workloads::dinero::Dinero;
use dyc_workloads::Workload;

fn main() {
    let w = Dinero::default();
    println!(
        "simulating {} references against an 8kB direct-mapped cache, 32B blocks\n",
        w.trace_len
    );

    let program = Compiler::new().compile(&w.source()).unwrap();

    let mut s = program.static_session();
    let sargs = w.setup_region(&mut s);
    let (misses, sc) = s.run_measured("mainloop", &sargs).unwrap();
    println!(
        "static : {} misses in {} cycles ({:.1} cycles/ref)",
        misses.unwrap(),
        sc.run_cycles(),
        sc.run_cycles() as f64 / w.trace_len as f64
    );

    let mut d = program.dynamic_session();
    let dargs = w.setup_region(&mut d);
    let (_, first) = d.run_measured("mainloop", &dargs).unwrap();
    w.reset(&mut d, &dargs);
    let (misses, dc) = d.run_measured("mainloop", &dargs).unwrap();
    println!(
        "dynamic: {} misses in {} cycles ({:.1} cycles/ref, compiled in {} cycles)",
        misses.unwrap(),
        dc.run_cycles(),
        dc.run_cycles() as f64 / w.trace_len as f64,
        first.dyncomp_cycles
    );
    println!(
        "speedup: {:.2}x; break-even after {:.0} references\n",
        sc.run_cycles() as f64 / dc.run_cycles() as f64,
        first.dyncomp_cycles as f64 / (sc.run_cycles() as f64 - dc.run_cycles() as f64)
            * w.trace_len as f64
    );

    // Show the specialized inner loop: config folded to immediates,
    // set/tag extraction reduced to shift/mask.
    let name = &d.generated_functions()[0];
    println!("{}", d.disassemble(name).unwrap());
    let _ = Value::I(0);
}
