//! Specializing an interpreter on its input program — the mipsi scenario,
//! and the classic first Futamura projection: the interpreter's
//! fetch-decode overhead vanishes, leaving code equivalent to compiling
//! the guest program.
//!
//! ```sh
//! cargo run --example interpreter_specialization
//! ```

use dyc::{Compiler, Value};
use dyc_workloads::mipsi::Mipsi;
use dyc_workloads::Workload;

fn main() {
    let w = Mipsi {
        n: 10,
        max_steps: 50_000,
    };
    println!("guest program: bubble sort, {} elements", w.n);
    println!("guest data   : {:?}\n", w.guest_data());

    let program = Compiler::new().compile(&w.source()).unwrap();

    // Interpret conventionally.
    let mut s = program.static_session();
    let sargs = w.setup_region(&mut s);
    let (steps, sc) = s.run_measured("run", &sargs).unwrap();
    println!(
        "interpreted  : {} guest instructions in {} cycles ({:.1} cycles/guest instr)",
        steps.unwrap(),
        sc.run_cycles(),
        sc.run_cycles() as f64 / steps.unwrap().as_i() as f64
    );

    // Specialize the interpreter on the guest program.
    let mut d = program.dynamic_session();
    let dargs = w.setup_region(&mut d);
    let (_, first) = d.run_measured("run", &dargs).unwrap();
    println!(
        "1st dynamic  : {} cycles running + {} cycles compiling",
        first.run_cycles(),
        first.dyncomp_cycles
    );

    w.reset(&mut d, &dargs);
    let (steps, dc) = d.run_measured("run", &dargs).unwrap();
    println!(
        "specialized  : {} guest instructions in {} cycles ({:.1} cycles/guest instr)",
        steps.unwrap(),
        dc.run_cycles(),
        dc.run_cycles() as f64 / steps.unwrap().as_i() as f64
    );
    println!(
        "speedup      : {:.2}x\n",
        sc.run_cycles() as f64 / dc.run_cycles() as f64
    );

    let rt = d.rt_stats().unwrap();
    println!("what the specializer did:");
    println!(
        "  multi-way loop unrolling over the guest pc: {}",
        rt.multi_way_unroll
    );
    println!(
        "  instruction fetches folded (static loads) : {}",
        rt.static_loads
    );
    println!(
        "  address translations memoized (static calls): {}",
        rt.static_calls
    );
    println!(
        "  decode switches folded                     : {}",
        rt.branches_folded
    );
    println!(
        "  jr-target promotions                       : {}",
        rt.internal_promotions
    );
    println!(
        "  residual code                              : {} instructions",
        rt.instrs_generated
    );

    // Check the guest actually sorted its memory.
    let mem_base = Mipsi::guest_program().len() as i64;
    let sorted = d.mem().read_ints(mem_base, w.n as usize);
    println!("\nsorted guest memory: {sorted:?}");
    assert!(sorted.windows(2).all(|p| p[0] <= p[1]));
    let _ = Value::I(0);
}
