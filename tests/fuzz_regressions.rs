//! Pinned regressions found by `dyc-fuzz` (see DESIGN.md §10).
//!
//! Each case is stored as the minimized DyCL source plus its inputs and
//! replayed through the full 4-way differential oracle, so a fixed bug
//! stays fixed across all four execution paths at once. When the fuzzer
//! finds a new bug, its printed repro block is pinned here verbatim.

use dyc_fuzz::{case_from_source, case_seed, generate_case, run_case, GenConfig, ScalarArg};
use dyc_lang::pretty::program_to_string;

fn pin(src: &str, wbuf: Option<Vec<i64>>, tuples: Vec<Vec<ScalarArg>>) {
    pin_arr(src, None, wbuf, tuples);
}

fn pin_arr(src: &str, arr: Option<Vec<i64>>, wbuf: Option<Vec<i64>>, tuples: Vec<Vec<ScalarArg>>) {
    let case = case_from_source(src, arr, wbuf, tuples).expect("pinned source must parse");
    if let Err(v) = run_case(&case) {
        panic!("pinned regression failed the oracle again: {v}\n---\n{src}");
    }
}

/// Found by dyc-fuzz (minimized from seed-3 material): a non-void
/// function that falls off the end. The region-entry dispatch stub
/// always forwards a return register, so the static build returning
/// "nothing" while the dynamic builds returned the scratch register made
/// the paths diverge. Lowering (and the reference evaluator) now return
/// a defined zero.
#[test]
fn missing_return_through_region_stub() {
    pin(
        "int fuzz_target(int s0) {\n    make_static(s0);\n    int x = s0 + 1;\n}\n",
        None,
        vec![
            vec![ScalarArg::I(0)],
            vec![ScalarArg::I(7)],
            vec![ScalarArg::I(-3)],
            vec![ScalarArg::I(0)],
        ],
    );
}

/// Same bug, richer shape: the implicit return sits behind folded
/// control flow inside the dynamic region.
#[test]
fn missing_return_behind_folded_branch() {
    pin(
        "int fuzz_target(int s0, int d0) {\n    make_static(s0);\n    if (s0 > 0)\n    {\n        return d0;\n    }\n}\n",
        None,
        vec![
            vec![ScalarArg::I(1), ScalarArg::I(5)],
            vec![ScalarArg::I(0), ScalarArg::I(9)],
            vec![ScalarArg::I(1), ScalarArg::I(5)],
        ],
    );
}

/// Found by dyc-fuzz (case seed 11548805271789224382, seed-2 run): a
/// constant whose only in-block use is immediate-capable got folded into
/// the operand field and never materialized — but in the dynamic build
/// the use sits past the region entry, so the dispatch passed the
/// constant's *register*, which was never written. The specialized code
/// then computed `d0 | 0` instead of `d0 | 1`. Codegen now materializes
/// any constant feeding a dispatch argument.
#[test]
fn dispatch_args_materialize_folded_constants() {
    pin(
        "int fuzz_target(int s0, int s1, int d0, int d1, float f0, int wbuf[], int wn) {\n    int x2 = 1;\n    int x3 = 0;\n    make_static(x3);\n    print_int(d0 | x2);\n}\n",
        Some(vec![0; 8]),
        vec![
            vec![
                ScalarArg::I(0),
                ScalarArg::I(0),
                ScalarArg::I(2),
                ScalarArg::I(0),
                ScalarArg::F(0.0),
            ],
            vec![
                ScalarArg::I(1),
                ScalarArg::I(-1),
                ScalarArg::I(12),
                ScalarArg::I(3),
                ScalarArg::F(0.5),
            ],
        ],
    );
}

/// Found by dyc-fuzz: the pretty printer rendered a nested unary as
/// `--17`, which does not lex. Printing now parenthesizes the inner
/// unary; pin the whole round trip through the oracle.
#[test]
fn nested_unary_round_trips_and_runs() {
    pin(
        "int fuzz_target(int s0) {\n    make_static(s0);\n    return -(-17) + s0;\n}\n",
        None,
        vec![vec![ScalarArg::I(4)], vec![ScalarArg::I(4)]],
    );
}

/// Found by dyc-fuzz (case seed 17568163346389866865, seed-5 run): when
/// template fusion reverted a guarded singleton emit (its run was too
/// short to fuse), the op that triggered the revert had already been
/// planned against the revertee as a register. Its destination stayed
/// "register" in the abstract state while the concrete path could
/// constant-fold it into a rename, so a later template patched a
/// register that was never written — the fused path silently dropped
/// two instructions. The planner now marks the consumer's destination
/// value-dependent as well.
#[test]
fn reverted_guard_taints_consumer_destination() {
    pin_arr(
        "int fuzz_target(int s0, int arr[], int an) {\n    make_static(s0);\n    int i1 = 0;\n    int x1 = 0.0;\n    int x2 = 1;\n    x2 *= arr[x1];\n    x1 = 50 - (x2 & i1);\n    return (int) 1.75 & (x1 + 1);\n}\n",
        Some(vec![0, 7, -4, 0, 3, 0, 0, 1]),
        None,
        vec![
            vec![ScalarArg::I(0)],
            vec![ScalarArg::I(3)],
            vec![ScalarArg::I(0)],
        ],
    );
}

/// Found by dyc-fuzz (case seed 2470166100036192763, seed-2 run): a
/// region whose statics are immediately demoted made the staged path
/// one cycle dearer than online, because the online walk charged
/// nothing for inspecting annotation directives while the staged path
/// pays per GE op. The online specializer now charges its per-inst
/// classification for annotations too; the oracle holds staged ≤ online.
#[test]
fn degenerate_demoted_region_overhead_ordering() {
    pin(
        "int fuzz_target(int s0, int s1, int d0, int d1) {\n    make_static(s0);\n    make_dynamic(s0);\n    return s0;\n}\n",
        None,
        vec![
            vec![
                ScalarArg::I(0),
                ScalarArg::I(0),
                ScalarArg::I(0),
                ScalarArg::I(0),
            ],
            vec![
                ScalarArg::I(5),
                ScalarArg::I(1),
                ScalarArg::I(-2),
                ScalarArg::I(9),
            ],
        ],
    );
}

/// The generator must be a pure function of the case seed: the corpus
/// and every printed repro depend on it.
#[test]
fn generation_is_a_pure_function_of_the_seed() {
    for seed in [1u64, 42, 0xdead_beef] {
        let a = generate_case(seed, GenConfig::default());
        let b = generate_case(seed, GenConfig::default());
        assert_eq!(a, b);
        assert_eq!(program_to_string(&a.program), program_to_string(&b.program));
    }
    // Case seeds are stable under --iters changes: case i of a run is
    // the same whether the run is long or short.
    assert_eq!(case_seed(1, 3), case_seed(1, 3));
    assert_ne!(case_seed(1, 3), case_seed(1, 4));
    assert_ne!(case_seed(1, 3), case_seed(2, 3));
}

/// A small fixed-seed smoke sweep: the first cases of the default run
/// must pass the oracle. (CI runs the full 500 via the fuzz-smoke job.)
#[test]
fn fixed_seed_smoke_sweep_passes_the_oracle() {
    for i in 0..40u64 {
        let cs = case_seed(1, i);
        let case = generate_case(cs, GenConfig::default());
        if let Err(v) = run_case(&case) {
            panic!(
                "case {i} (seed {cs}) failed: {v}\n---\n{}",
                program_to_string(&case.program)
            );
        }
    }
}
