//! Edge cases of stage-time copy-and-patch template fusion: what must
//! fuse, what must split a run, and what must be left as a plain hole.
//!
//! These tests inspect the precompiled GE programs directly
//! (`Program::staged`) and then execute both the fused and unfused
//! configurations to confirm the structural expectations translate into
//! byte-identical code and correct results.

use dyc::{Compiler, OptConfig, Value};
use dyc_stage::GeOp;

/// Flatten every division's ops of every staged function.
fn all_ops(p: &dyc::Program) -> Vec<&GeOp> {
    p.staged()
        .ge
        .funcs
        .iter()
        .flatten()
        .flat_map(|f| f.divisions.iter())
        .flat_map(|d| d.ops.iter())
        .collect()
}

fn count_templates(ops: &[&GeOp]) -> usize {
    ops.iter()
        .filter(|op| matches!(op, GeOp::EmitTemplate(_)))
        .count()
}

fn count_holes(ops: &[&GeOp]) -> usize {
    ops.iter()
        .filter(|op| matches!(op, GeOp::EmitHole { .. }))
        .count()
}

/// Run `src` under both the fused and unfused configurations and check
/// behavior and emitted code agree; returns (fused stats, unfused stats).
fn differential(src: &str, func: &str, args: &[Value]) -> (dyc::RtStats, dyc::RtStats) {
    let fused_p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let unfused_p = Compiler::with_config(OptConfig::all().without("template_fusion").unwrap())
        .compile(src)
        .unwrap();
    let mut fused = fused_p.dynamic_session();
    let mut unfused = unfused_p.dynamic_session();
    let rf = fused.run(func, args).unwrap();
    let ru = unfused.run(func, args).unwrap();
    assert_eq!(rf, ru, "results diverged");
    assert_eq!(
        fused.disassemble_matching(""),
        unfused.disassemble_matching(""),
        "template fusion changed the emitted code"
    );
    (
        fused.rt_stats().unwrap().clone(),
        unfused.rt_stats().unwrap().clone(),
    )
}

#[test]
fn single_instruction_run_stays_a_plain_hole() {
    // Exactly one dynamic instruction: a template would buy nothing over
    // one hole-filling emit, so the fusion pass must leave it alone.
    let src = "int f(int s, int d) { make_static(s); return d + s; }";
    let p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let ops = all_ops(&p);
    assert_eq!(count_templates(&ops), 0, "singleton run was fused");
    assert!(count_holes(&ops) >= 1, "expected a plain EmitHole");

    let (fused, _) = differential(src, "f", &[Value::I(4), Value::I(10)]);
    assert_eq!(fused.template_instrs, 0);
    assert_eq!(fused.template_copy_cycles, 0);
}

#[test]
fn demote_splits_an_emit_run() {
    // `make_dynamic` in the middle of a dynamic region materializes the
    // demoted variable, which must end the current run: two separate
    // templates around the DemoteMaterialize, never one across it.
    let src = r#"
        int f(int s, int d) {
            make_static(s);
            int a = d + s;
            int b = a + d;
            make_dynamic(s);
            int c = b + s;
            int e = c + b;
            return e;
        }
    "#;
    let p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let staged = p.staged();
    // Find the division that carries the demotion and check op order:
    // template, demote, template.
    let mut shape_ok = false;
    for gef in staged.ge.funcs.iter().flatten() {
        for d in &gef.divisions {
            let kinds: Vec<&str> = d
                .ops
                .iter()
                .map(|op| match op {
                    GeOp::Eval(_) => "eval",
                    GeOp::EmitHole { .. } => "hole",
                    GeOp::DemoteMaterialize { .. } => "demote",
                    GeOp::EmitTemplate(_) => "template",
                })
                .collect();
            if let Some(at) = kinds.iter().position(|k| *k == "demote") {
                assert!(
                    kinds[..at].contains(&"template"),
                    "no template before the demotion: {kinds:?}"
                );
                assert!(
                    kinds[at..].contains(&"template"),
                    "no template after the demotion: {kinds:?}"
                );
                shape_ok = true;
            }
        }
    }
    assert!(shape_ok, "no division carried a DemoteMaterialize");

    let (fused, unfused) = differential(src, "f", &[Value::I(5), Value::I(2)]);
    assert!(fused.template_instrs > 0);
    assert!(fused.dyncomp_cycles < unfused.dyncomp_cycles);
}

#[test]
fn promotion_resume_point_bounds_each_template() {
    // An internal `promote` ends the unit: the ops before it and the ops
    // in the resume division fuse independently. Both sides must still
    // produce templates when they have multi-instruction runs.
    let src = r#"
        int f(int s, int d) {
            make_static(s);
            int a = d * 3 + s;
            int b = a * 5 + a;
            s = b & 7;
            promote(s);
            int c = d * 9 + s;
            int e = c * 11 + c;
            return e;
        }
    "#;
    let p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let staged = p.staged();
    // At least two distinct divisions must carry a template (the entry
    // division and the promotion resume division).
    let divisions_with_templates: usize = staged
        .ge
        .funcs
        .iter()
        .flatten()
        .flat_map(|f| f.divisions.iter())
        .filter(|d| d.ops.iter().any(|op| matches!(op, GeOp::EmitTemplate(_))))
        .count();
    assert!(
        divisions_with_templates >= 2,
        "expected templates on both sides of the promotion, found them in \
         {divisions_with_templates} division(s)"
    );

    let (fused, unfused) = differential(src, "f", &[Value::I(1), Value::I(6)]);
    assert!(fused.template_instrs > 0);
    assert!(fused.dyncomp_cycles < unfused.dyncomp_cycles);
}

#[test]
fn branch_fixup_may_target_template_emitted_code() {
    // A dynamic conditional: the branch emitted for `if (d > 0)` is
    // fixed up to the join block, whose instructions are bulk-copied
    // from a template. The fixup must resolve to the right offset inside
    // the copied span, and both arms must execute correctly.
    let src = r#"
        int f(int s, int d) {
            make_static(s);
            int r = 0;
            if (d > 0) { r = d * 3 + s; } else { r = d * 5 - s; }
            int t = r * 9 + r;
            int u = t * 13 + t;
            return u + s;
        }
    "#;
    let fused_p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    assert!(
        count_templates(&all_ops(&fused_p)) > 0,
        "join block should have fused"
    );
    let unfused_p = Compiler::with_config(OptConfig::all().without("template_fusion").unwrap())
        .compile(src)
        .unwrap();
    let mut fused = fused_p.dynamic_session();
    let mut unfused = unfused_p.dynamic_session();
    // Drive both arms of the branch through the same specialization.
    for d in [7i64, -7] {
        let args = [Value::I(2), Value::I(d)];
        assert_eq!(
            fused.run("f", &args).unwrap(),
            unfused.run("f", &args).unwrap(),
            "d = {d}"
        );
    }
    assert_eq!(fused.rt_stats().unwrap().specializations, 1);
    assert_eq!(
        fused.disassemble_matching(""),
        unfused.disassemble_matching(""),
        "template fusion changed the emitted code"
    );
    let code = fused.disassemble_matching("f$spec");
    assert!(
        code.contains("brz") || code.contains("brnz"),
        "specialized code kept no dynamic branch:\n{code}"
    );
    assert!(fused.rt_stats().unwrap().template_instrs > 0);
}

#[test]
fn steady_state_dispatch_is_allocation_free() {
    // After the first (miss) entry, a cache-hit region entry must not
    // touch the heap: keys and pass-through arguments go through
    // preallocated buffers, and the entry lookup reserves its slot
    // instead of re-hashing on insert.
    let src = r#"
        int f(int s, int d) {
            make_static(s);
            int a = d * 3 + s;
            int b = a * 5 + a;
            return b;
        }
    "#;
    let p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let mut sess = p.dynamic_session();
    for s in 0..4 {
        sess.run("f", &[Value::I(s), Value::I(9)]).unwrap();
    }
    let warm = sess.rt_stats().unwrap().dispatch_allocs;
    for s in 0..4 {
        sess.run("f", &[Value::I(s), Value::I(9)]).unwrap();
    }
    let steady = sess.rt_stats().unwrap().dispatch_allocs;
    assert_eq!(
        steady, warm,
        "cache-hit dispatches allocated ({warm} -> {steady})"
    );
}
