//! Differential test of the native x86-64 backend against the VM oracle.
//!
//! The native backend is a pure *execution* substitution: specialized
//! code is lowered to real machine code and dispatch invokes it
//! directly, but the VM interpreter remains the semantic oracle. On
//! every workload in the suite, a run with `OptConfig::native` must be
//! observably identical to the plain fused-VM run — same region
//! results, same printed output, and the same final heap image,
//! word for word. Only wall-clock time (and the `native_installs` /
//! `native_fallbacks` meters) may differ.
//!
//! On x86-64 Unix hosts the test additionally asserts the native path
//! actually fired (at least one machine-code install per workload);
//! elsewhere the stub backend reports every install as a fallback and
//! the same assertions prove the clean degrade to pure interpretation.

use dyc::{Compiler, OptConfig, Value};
use dyc_workloads::{all, Workload};

struct Observed {
    result: Option<Value>,
    output: Vec<Value>,
    /// Final heap image, one `i64` per memory word.
    memory: Vec<i64>,
    native_installs: u64,
    native_fallbacks: u64,
}

fn run_backend(w: &dyn Workload, cfg: OptConfig) -> Observed {
    let meta = w.meta();
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    let args = w.setup_region(&mut sess);
    let result = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
    assert!(
        w.check_region(result, &mut sess),
        "{}: wrong region result",
        meta.name
    );
    // A second, steady-state invocation: cache hits must route through
    // the same backend as the miss path did.
    w.reset(&mut sess, &args);
    let result = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: steady-state run failed: {e}", meta.name));
    let memory = {
        let len = sess.mem().len();
        (0..len).map(|i| sess.mem().read_int(i as i64)).collect()
    };
    let rt = sess.rt_stats().expect("dynamic session has a runtime");
    Observed {
        result,
        output: sess.output().to_vec(),
        memory,
        native_installs: rt.native_installs,
        native_fallbacks: rt.native_fallbacks,
    }
}

#[test]
fn native_backend_matches_vm_on_every_workload() {
    let vm_cfg = OptConfig::all();
    let native_cfg = OptConfig {
        native: true,
        ..OptConfig::all()
    };
    assert!(!vm_cfg.native && native_cfg.native);

    for w in all() {
        let name = w.meta().name;
        let vm = run_backend(w.as_ref(), vm_cfg);
        let nat = run_backend(w.as_ref(), native_cfg);

        assert_eq!(nat.result, vm.result, "{name}: region results differ");
        assert_eq!(nat.output, vm.output, "{name}: printed output differs");
        assert_eq!(nat.memory, vm.memory, "{name}: final heap images differ");

        // A plain VM run must never touch the native engine.
        assert_eq!(
            (vm.native_installs, vm.native_fallbacks),
            (0, 0),
            "{name}: VM-only run touched the native engine"
        );

        // The native config always *attempts* the lowering; on hosts
        // with the backend it must succeed at least once per workload.
        assert!(
            nat.native_installs + nat.native_fallbacks > 0,
            "{name}: native config never attempted a lowering"
        );
        #[cfg(all(target_arch = "x86_64", unix, not(dyc_no_native)))]
        assert!(
            nat.native_installs > 0,
            "{name}: no specialization was installed natively \
             ({} fallbacks)",
            nat.native_fallbacks
        );
    }
}

/// The result/output/memory identity must also hold when the native run
/// warm-starts from a bundle snapshotted by a VM run — restored code is
/// lowered at restore time, never re-specialized.
#[test]
fn native_backend_matches_vm_after_warm_start() {
    let native_cfg = OptConfig {
        native: true,
        ..OptConfig::all()
    };
    for w in all() {
        let name = w.meta().name;
        let meta = w.meta();

        // Cold VM run, snapshotted.
        let program = Compiler::with_config(native_cfg)
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{name}: compile error: {e}"));
        let mut cold = program.dynamic_session();
        let args = w.setup_region(&mut cold);
        let cold_result = cold
            .run(meta.region_func, &args)
            .unwrap_or_else(|e| panic!("{name}: cold run failed: {e}"));
        let Some(bundle) = cold.cache_bundle() else {
            continue;
        };

        // Warm native run from the bundle.
        let mut warm = program
            .warm_start_from_str(&bundle)
            .unwrap_or_else(|e| panic!("{name}: warm start failed: {e}"));
        let warm_args = w.setup_region(&mut warm);
        let warm_result = warm
            .run(meta.region_func, &warm_args)
            .unwrap_or_else(|e| panic!("{name}: warm run failed: {e}"));

        assert_eq!(warm_result, cold_result, "{name}: warm result differs");
        let rt = warm.rt_stats().expect("dynamic session has a runtime");
        assert!(
            rt.cache_warm_loads > 0,
            "{name}: warm start restored nothing"
        );
        #[cfg(all(target_arch = "x86_64", unix, not(dyc_no_native)))]
        assert!(
            rt.native_installs > 0,
            "{name}: restored code was not lowered natively"
        );
        let _ = rt;
    }
}
