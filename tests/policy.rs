//! Property tests for the adaptive specialization policy.
//!
//! The policy engine only decides *when* a (site, key) pair is worth
//! specializing — never *what* the specialized code computes. Deferral
//! runs the region through the generic continuation, which must be
//! observationally identical to the specialized code, so switching
//! `PolicyMode::Always` to `PolicyMode::Adaptive` may never change a
//! result, a printed value, or a heap word. This file checks that
//! equivalence over every workload in the suite, plus the liveness side
//! of the bargain: a key that keeps getting dispatched past the
//! break-even threshold is eventually specialized, after which the
//! deferral meters stop moving. (Counter exactness under 8-thread
//! contention is covered in-crate by `dyc-rt`'s policy and concurrency
//! unit tests.)

use dyc::{Compiler, OptConfig, PolicyMode, PolicyParams, RtStats, Value};
use dyc_workloads::{all, Workload};

/// One full run of a workload: per-invocation observations, the final
/// heap image, and the final counters.
struct Trace {
    /// `(result, printed output)` for every invocation in order.
    invocations: Vec<(Option<Value>, Vec<Value>)>,
    /// Every word of VM memory after the last invocation.
    heap: Vec<i64>,
    rt: RtStats,
    dispatch_misses: u64,
}

/// Enough repeat invocations that every recurring key crosses the
/// largest threshold the engine will ever predict.
fn reps_past_threshold() -> usize {
    PolicyParams::default().max_threshold as usize + 2
}

fn run_workload(w: &dyn Workload, mode: PolicyMode) -> Trace {
    let meta = w.meta();
    let cfg = OptConfig::all().with_policy(mode);
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    let args = w.setup_region(&mut sess);
    let mut invocations = Vec::new();
    for rep in 0..=reps_past_threshold() {
        if rep > 0 {
            w.reset(&mut sess, &args);
        }
        let result = sess
            .run(meta.region_func, &args)
            .unwrap_or_else(|e| panic!("{}: rep {rep} failed: {e}", meta.name));
        if rep == 0 {
            assert!(
                w.check_region(result, &mut sess),
                "{}: wrong region result",
                meta.name
            );
        }
        invocations.push((result, sess.take_output()));
    }
    let words = sess.mem().len();
    Trace {
        invocations,
        heap: sess.mem().read_ints(0, words),
        rt: sess
            .rt_stats()
            .expect("dynamic session has a runtime")
            .clone(),
        dispatch_misses: sess.stats().dispatch_misses,
    }
}

/// Deferral is invisible: on every workload, every invocation of the
/// adaptive path returns the same result and prints the same output as
/// the always-specialize path, and the final heap images are
/// word-identical.
#[test]
fn adaptive_policy_never_changes_observable_behavior() {
    let suite = all();
    assert_eq!(suite.len(), 11, "workload suite grew: revisit this test");
    for w in &suite {
        let name = w.meta().name;
        let always = run_workload(w.as_ref(), PolicyMode::Always);
        let adaptive = run_workload(w.as_ref(), PolicyMode::Adaptive);
        assert_eq!(
            always.invocations.len(),
            adaptive.invocations.len(),
            "{name}: invocation counts diverged"
        );
        for (rep, (a, b)) in always
            .invocations
            .iter()
            .zip(&adaptive.invocations)
            .enumerate()
        {
            assert_eq!(a.0, b.0, "{name}: rep {rep} result diverged");
            assert_eq!(a.1, b.1, "{name}: rep {rep} output diverged");
        }
        assert_eq!(
            always.heap, adaptive.heap,
            "{name}: final heap images diverged"
        );
        // The always path must never consult the policy engine.
        assert_eq!(
            (
                always.rt.policy_defers,
                always.rt.policy_promotes,
                always.rt.policy_throttled
            ),
            (0, 0, 0),
            "{name}: policy meters moved in always mode"
        );
    }
}

/// Every dispatch miss in adaptive mode is resolved one of exactly three
/// ways — specialize, defer, or throttle — so the three meters must
/// partition the VM's miss count on every workload.
#[test]
fn adaptive_meters_partition_the_dispatch_misses() {
    for w in &all() {
        let name = w.meta().name;
        let t = run_workload(w.as_ref(), PolicyMode::Adaptive);
        assert_eq!(
            t.rt.specializations + t.rt.policy_defers + t.rt.policy_throttled,
            t.dispatch_misses,
            "{name}: specializations + defers + throttles != dispatch misses"
        );
    }
}

/// Liveness: a key dispatched at least `threshold` times is eventually
/// specialized. After enough repeat invocations every recurring key has
/// crossed the largest possible threshold, so (a) whatever the always
/// path specialized, the adaptive path has specialized *something* too,
/// and (b) a further steady-state invocation moves neither the deferral
/// meter nor the specialization counter.
#[test]
fn hot_keys_are_eventually_specialized() {
    for w in &all() {
        let meta = w.meta();
        let name = meta.name;
        let always = run_workload(w.as_ref(), PolicyMode::Always);

        let cfg = OptConfig::all().with_policy(PolicyMode::Adaptive);
        let program = Compiler::with_config(cfg).compile(&w.source()).unwrap();
        let mut sess = program.dynamic_session();
        let args = w.setup_region(&mut sess);
        sess.run(meta.region_func, &args)
            .unwrap_or_else(|e| panic!("{name}: first run failed: {e}"));
        for _ in 0..reps_past_threshold() {
            w.reset(&mut sess, &args);
            sess.run(meta.region_func, &args).unwrap();
        }
        let warm = sess.rt_stats().unwrap().clone();
        if always.rt.specializations > 0 {
            assert!(
                warm.specializations > 0,
                "{name}: recurring keys were never promoted"
            );
            assert!(
                warm.policy_promotes > 0,
                "{name}: specializations happened without a promote decision"
            );
        }

        // Steady state: everything recurring is promoted and cached, so
        // one more invocation defers nothing and specializes nothing.
        w.reset(&mut sess, &args);
        sess.run(meta.region_func, &args).unwrap();
        let steady = sess.rt_stats().unwrap().clone();
        assert_eq!(
            steady.policy_defers, warm.policy_defers,
            "{name}: steady-state invocation still deferred"
        );
        assert_eq!(
            steady.specializations, warm.specializations,
            "{name}: steady-state invocation re-specialized"
        );
    }
}

/// The single-key shape of the liveness property, stated exactly: with
/// the default parameters a fresh key defers on its first
/// `initial_threshold - 1` dispatches (executing generically), promotes
/// on the dispatch that reaches the threshold, and hits the cache from
/// then on.
#[test]
fn a_key_promotes_exactly_at_the_initial_threshold() {
    let src = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
    "#;
    let params = PolicyParams::default();
    let cfg = OptConfig::all().with_policy(PolicyMode::Adaptive);
    let program = Compiler::with_config(cfg).compile(src).unwrap();
    let mut sess = program.dynamic_session();
    for i in 1..=(params.initial_threshold as u64 + 2) {
        let r = sess.run("power", &[Value::I(3), Value::I(4)]).unwrap();
        assert_eq!(r, Some(Value::I(81)), "dispatch {i} computed wrong value");
        let rt = sess.rt_stats().unwrap();
        if i < params.initial_threshold as u64 {
            assert_eq!((rt.specializations, rt.policy_defers), (0, i));
        } else {
            // Promoted exactly once the count reached the threshold;
            // later dispatches are cache hits and move nothing.
            assert_eq!(
                (rt.specializations, rt.policy_defers, rt.policy_promotes),
                (1, params.initial_threshold as u64 - 1, 1),
                "after dispatch {i}"
            );
        }
    }
}
