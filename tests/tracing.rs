//! Tracing is free of observer effects: enabling the per-thread event
//! recorder must not change results, printed output, cached code bytes,
//! or a single [`dyc::RtStats`] counter — and the warm dispatch path
//! must stay allocation-free while recording.

use dyc::obs::{Category, EventKind};
use dyc::{CodeFunc, Compiler, OptConfig, Value};
use dyc_workloads::all;

fn traced_config() -> OptConfig {
    let mut cfg = OptConfig::all();
    cfg.trace = true;
    cfg
}

/// Strip module-local naming/address detail so code bodies compare
/// byte-for-byte across sessions.
fn normalize(mut entries: Vec<(u32, Vec<u64>, CodeFunc)>) -> Vec<(u32, Vec<u64>, String)> {
    entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    entries
        .into_iter()
        .map(|(s, k, f)| {
            (
                s,
                k,
                format!("params={} regs={} code={:?}", f.n_params, f.n_regs, f.code),
            )
        })
        .collect()
}

#[test]
fn tracing_changes_nothing_observable_on_all_workloads() {
    for w in all() {
        let meta = w.meta();
        let src = w.source();
        let plain = Compiler::new().compile(&src).unwrap();
        let traced = Compiler::with_config(traced_config())
            .compile(&src)
            .unwrap();

        let mut off = plain.dynamic_session();
        let mut on = traced.dynamic_session();
        let (args_off, args_on) = (w.setup_region(&mut off), w.setup_region(&mut on));
        assert_eq!(args_off, args_on, "{}: deterministic setup", meta.name);
        off.set_step_limit(200_000_000);
        on.set_step_limit(200_000_000);

        for rep in 0..4 {
            let a = off.run(meta.region_func, &args_off).unwrap();
            let b = on.run(meta.region_func, &args_on).unwrap();
            assert_eq!(a, b, "{} rep {rep}: traced result diverged", meta.name);
            w.reset(&mut off, &args_off);
            w.reset(&mut on, &args_on);
        }

        assert_eq!(off.take_output(), on.take_output(), "{}: output", meta.name);
        assert_eq!(
            off.rt_stats(),
            on.rt_stats(),
            "{}: tracing perturbed RtStats",
            meta.name
        );
        assert_eq!(
            normalize(off.cached_code()),
            normalize(on.cached_code()),
            "{}: tracing changed emitted code bytes",
            meta.name
        );
        assert!(
            off.trace_events().is_empty(),
            "{}: untraced session recorded events",
            meta.name
        );
        assert!(
            !on.trace_events().is_empty(),
            "{}: traced session recorded nothing",
            meta.name
        );
    }
}

/// The same observer-effect identity with the native x86-64 backend
/// switched on: the recorder must not perturb results, output, the
/// native install/fallback meters, or the cached (VM) code bytes — and
/// every native install/fallback must show up as an event.
#[test]
fn tracing_changes_nothing_observable_with_native_backend() {
    let native_cfg = OptConfig {
        native: true,
        ..OptConfig::all()
    };
    let native_traced_cfg = OptConfig {
        trace: true,
        ..native_cfg
    };
    for w in all() {
        let meta = w.meta();
        let src = w.source();
        let plain = Compiler::with_config(native_cfg).compile(&src).unwrap();
        let traced = Compiler::with_config(native_traced_cfg)
            .compile(&src)
            .unwrap();

        let mut off = plain.dynamic_session();
        let mut on = traced.dynamic_session();
        let (args_off, args_on) = (w.setup_region(&mut off), w.setup_region(&mut on));
        off.set_step_limit(200_000_000);
        on.set_step_limit(200_000_000);

        for rep in 0..4 {
            let a = off.run(meta.region_func, &args_off).unwrap();
            let b = on.run(meta.region_func, &args_on).unwrap();
            assert_eq!(
                a, b,
                "{} rep {rep}: traced native result diverged",
                meta.name
            );
            w.reset(&mut off, &args_off);
            w.reset(&mut on, &args_on);
        }

        assert_eq!(off.take_output(), on.take_output(), "{}: output", meta.name);
        assert_eq!(
            off.rt_stats(),
            on.rt_stats(),
            "{}: tracing perturbed RtStats under the native backend",
            meta.name
        );
        assert_eq!(
            normalize(off.cached_code()),
            normalize(on.cached_code()),
            "{}: tracing changed emitted code bytes under the native backend",
            meta.name
        );

        // Every lowering attempt is an event: installs and fallbacks in
        // the meters must match the recorded event stream one for one.
        let rt = on.rt_stats().expect("dynamic session");
        let events = on.trace_events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(
            count(EventKind::NativeInstall),
            rt.native_installs,
            "{}: install events out of step with the meter",
            meta.name
        );
        assert_eq!(
            count(EventKind::NativeFallback),
            rt.native_fallbacks,
            "{}: fallback events out of step with the meter",
            meta.name
        );
        assert!(
            rt.native_installs + rt.native_fallbacks > 0,
            "{}: native config never attempted a lowering",
            meta.name
        );
        // Install events carry the published code size.
        assert!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::NativeInstall)
                .all(|e| e.a > 0),
            "{}: a native install published zero bytes",
            meta.name
        );
    }
}

#[test]
fn traced_session_records_the_staged_pipeline() {
    const SRC: &str = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
    "#;
    let p = Compiler::with_config(traced_config()).compile(SRC).unwrap();
    let mut d = p.dynamic_session();
    d.run("power", &[Value::I(3), Value::I(4)]).unwrap();
    d.run("power", &[Value::I(5), Value::I(4)]).unwrap(); // hit
    d.run("power", &[Value::I(5), Value::I(6)]).unwrap(); // miss

    let events = d.trace_events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert_eq!(count(EventKind::DispatchMiss), 2);
    assert_eq!(count(EventKind::GeExecBegin), 2);
    assert_eq!(count(EventKind::GeExecEnd), 2);
    assert!(count(EventKind::DispatchHit) + count(EventKind::DispatchUnchecked) >= 1);

    // Begin/end pair up and carry the dyncomp cycles actually charged.
    let spent: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::GeExecEnd)
        .map(|e| e.a)
        .sum();
    assert_eq!(spent, d.rt_stats().unwrap().dyncomp_cycles);

    // Per-site aggregation sees the same story.
    let profiles = dyc::obs::site_profiles(&events);
    assert_eq!(profiles.len(), 1);
    let prof = &profiles[0];
    assert_eq!(prof.specializations, 2);
    assert_eq!(prof.misses, 2);
    assert!(prof.break_even(10.0).is_some());
}

#[test]
fn warm_traced_dispatch_does_not_allocate() {
    const SRC: &str = r#"
        int scale(int x, int k) {
            make_static(k);
            return x * k;
        }
    "#;
    let p = Compiler::with_config(traced_config()).compile(SRC).unwrap();
    let mut d = p.dynamic_session();
    for x in 0..4 {
        d.run("scale", &[Value::I(x), Value::I(9)]).unwrap();
    }
    let before = d.rt_stats().unwrap().clone();
    let events_before = d.trace_events().len();
    for x in 0..64 {
        d.run("scale", &[Value::I(x), Value::I(9)]).unwrap();
    }
    let warm = d.rt_stats().unwrap().delta(&before);
    assert_eq!(warm.dispatch_allocs, 0, "traced warm dispatch allocated");
    assert_eq!(warm.specializations, 0, "warm phase must be all hits");
    // Recording kept happening the whole time, into the fixed ring.
    assert!(d.trace_events().len() > events_before);
    assert!(d
        .trace_events()
        .iter()
        .any(|e| e.kind.category() == Category::Dispatch));
}
