//! Additional property-based tests:
//!
//! * the independent AST reference interpreter agrees with the compiled
//!   builds (a third oracle that does not share the IR/VM code paths);
//! * the lexer never panics on arbitrary input;
//! * the pretty printer round-trips generated programs;
//! * the double-hash dynamic-code cache behaves like a map.

use dyc::{Compiler, Value};
use dyc_lang::{parse_program, pretty, EvalValue, Evaluator};
use dyc_rt::DoubleHashCache;
use dyc_vm::FuncId;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reuses the structured generator idea from `tests/equivalence.rs`, but
/// produces programs through string templates (kept local: the two suites
/// evolve independently).
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-9i64..9).prop_map(|v| v.to_string()),
        Just("p0".to_string()),
        Just("p1".to_string()),
        Just("x".to_string()),
        Just("a[iabs(x) % 4]".to_string()),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![Just("+"), Just("-"), Just("*")])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone(), 1i64..5).prop_map(|(l, r)| format!("({l} % {r})")),
            (inner.clone(), inner, prop_oneof![Just("<"), Just("==")])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
        ]
    })
    .boxed()
}

fn stmt() -> BoxedStrategy<String> {
    let simple = prop_oneof![
        expr(2).prop_map(|e| format!("x = {e};")),
        (0i64..4, expr(2)).prop_map(|(i, e)| format!("a[{i}] = {e};")),
        expr(1).prop_map(|e| format!("print_int({e});")),
    ];
    simple
        .prop_recursive(2, 10, 3, |inner| {
            prop_oneof![
                (expr(1), inner.clone(), inner.clone())
                    .prop_map(|(c, t, f)| format!("if ({c}) {{ {t} }} else {{ {f} }}")),
                (1i64..4, inner.clone()).prop_map(|(n, b)| format!(
                    "{{ int t = 0; while (t < {n}) {{ {b} t = t + 1; }} }}"
                )),
                (inner.clone(), inner).prop_map(|(a, b)| format!("{a} {b}")),
            ]
        })
        .boxed()
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(), 1..4).prop_map(|stmts| {
        format!(
            r#"
            int f(int p0, int p1, int a[4]) {{
                int x = 0;
                make_static(p0);
                {}
                return x + a[0] - a[3];
            }}
            "#,
            stmts.join("\n                ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Three-way oracle: AST interpreter vs static build vs dynamic build.
    #[test]
    fn reference_interpreter_agrees_with_both_builds(
        src in program(),
        p0 in -5i64..5,
        p1 in -20i64..20,
        mem in proptest::collection::vec(-9i64..9, 4),
    ) {
        // Reference semantics.
        let ast = parse_program(&src).unwrap();
        let mut ev = Evaluator::new(&ast, 4);
        ev.set_step_limit(1_000_000);
        ev.write_ints(0, &mem);
        let reference = ev.call("f", &[EvalValue::I(p0), EvalValue::I(p1), EvalValue::I(0)]);

        let compiled = Compiler::new().compile(&src).unwrap();
        for dynamic in [false, true] {
            let mut sess =
                if dynamic { compiled.dynamic_session() } else { compiled.static_session() };
            sess.set_step_limit(2_000_000);
            let a = sess.alloc(4);
            sess.mem().write_ints(a, &mem);
            let got = sess.run("f", &[Value::I(p0), Value::I(p1), Value::I(a)]);
            match (&reference, &got) {
                (Ok(Some(EvalValue::I(r))), Ok(Some(Value::I(g)))) => {
                    prop_assert_eq!(r, g, "build dynamic={} of:\n{}", dynamic, src);
                    // Printed output and memory must match too.
                    let ref_out: Vec<i64> = ev.output.iter().map(|v| match v {
                        EvalValue::I(i) => *i,
                        EvalValue::F(f) => *f as i64,
                    }).collect();
                    let got_out: Vec<i64> =
                        sess.output().iter().map(|v| v.as_i()).collect();
                    prop_assert_eq!(&ref_out, &got_out, "output of:\n{}", src);
                    prop_assert_eq!(
                        ev.read_ints(0, 4),
                        sess.mem().read_ints(a, 4),
                        "memory of:\n{}", src
                    );
                }
                (Err(_), Err(_)) => {}
                (r, g) => prop_assert!(false, "ref {:?} vs compiled {:?}\n{}", r, g, src),
            }
        }
    }

    /// The lexer is total: arbitrary bytes never panic it.
    #[test]
    fn lexer_never_panics(input in "\\PC*") {
        let _ = dyc_lang::lex(&input);
    }

    /// Pretty-printing a generated program re-parses to the same AST.
    #[test]
    fn pretty_round_trip(src in program()) {
        let ast1 = parse_program(&src).unwrap();
        let printed = pretty::program_to_string(&ast1);
        let ast2 = parse_program(&printed).unwrap();
        prop_assert_eq!(ast1, ast2, "printed:\n{}", printed);
    }

    /// The double-hash code cache behaves exactly like a map from key
    /// vectors to function ids.
    #[test]
    fn code_cache_is_a_map(
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u64..32, 1..3), 0u32..64), 1..200
        )
    ) {
        let mut cache = DoubleHashCache::new();
        let mut model: HashMap<Vec<u64>, u32> = HashMap::new();
        for (key, fid) in &ops {
            // Interleave lookups and inserts.
            let expected = model.get(key).map(|v| FuncId(*v));
            prop_assert_eq!(cache.lookup(key).value, expected);
            cache.insert(key.clone(), FuncId(*fid));
            model.insert(key.clone(), *fid);
        }
        for (key, fid) in &model {
            prop_assert_eq!(cache.lookup(key).value, Some(FuncId(*fid)));
        }
        prop_assert_eq!(cache.len(), model.len());
    }
}
