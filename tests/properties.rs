//! Additional generative tests (fixed-seed SplitMix64 streams, so every
//! run tests the same corpus):
//!
//! * the independent AST reference interpreter agrees with the compiled
//!   builds (a third oracle that does not share the IR/VM code paths);
//! * the lexer never panics on arbitrary input;
//! * the pretty printer round-trips generated programs;
//! * the double-hash dynamic-code cache behaves like a map.

use dyc::{Compiler, Value};
use dyc_lang::{parse_program, pretty, EvalValue, Evaluator};
use dyc_rt::DoubleHashCache;
use dyc_vm::FuncId;
use dyc_workloads::rng::SplitMix64;
use std::collections::HashMap;

/// Reuses the structured generator idea from `tests/equivalence.rs`, but
/// with a smaller variable universe (kept local: the two suites evolve
/// independently).
fn expr(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.gen_range(0i64..3) == 0 {
        return match rng.gen_range(0i64..5) {
            0 => rng.gen_range(-9i64..9).to_string(),
            1 => "p0".to_string(),
            2 => "p1".to_string(),
            3 => "x".to_string(),
            _ => "a[iabs(x) % 4]".to_string(),
        };
    }
    match rng.gen_range(0i64..3) {
        0 => {
            let op = ["+", "-", "*"][rng.gen_range(0i64..3) as usize];
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("({l} {op} {r})")
        }
        1 => format!("({} % {})", expr(rng, depth - 1), rng.gen_range(1i64..5)),
        _ => {
            let op = if rng.gen_range(0i64..2) == 0 {
                "<"
            } else {
                "=="
            };
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("({l} {op} {r})")
        }
    }
}

fn stmt(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.gen_range(0i64..3) == 0 {
        return match rng.gen_range(0i64..3) {
            0 => format!("x = {};", expr(rng, 2)),
            1 => format!("a[{}] = {};", rng.gen_range(0i64..4), expr(rng, 2)),
            _ => format!("print_int({});", expr(rng, 1)),
        };
    }
    match rng.gen_range(0i64..3) {
        0 => {
            let c = expr(rng, 1);
            let t = stmt(rng, depth - 1);
            let f = stmt(rng, depth - 1);
            format!("if ({c}) {{ {t} }} else {{ {f} }}")
        }
        1 => {
            let n = rng.gen_range(1i64..4);
            let b = stmt(rng, depth - 1);
            format!("{{ int t = 0; while (t < {n}) {{ {b} t = t + 1; }} }}")
        }
        _ => {
            let a = stmt(rng, depth - 1);
            let b = stmt(rng, depth - 1);
            format!("{a} {b}")
        }
    }
}

fn program(rng: &mut SplitMix64) -> String {
    let n = rng.gen_range(1i64..4);
    let stmts: Vec<String> = (0..n).map(|_| stmt(rng, 2)).collect();
    format!(
        r#"
        int f(int p0, int p1, int a[4]) {{
            int x = 0;
            make_static(p0);
            {}
            return x + a[0] - a[3];
        }}
        "#,
        stmts.join("\n                ")
    )
}

/// Three-way oracle: AST interpreter vs static build vs dynamic build.
#[test]
fn reference_interpreter_agrees_with_both_builds() {
    let mut rng = SplitMix64::seed_from_u64(0x0A_AC1E);
    for case in 0..48 {
        let src = program(&mut rng);
        let p0 = rng.gen_range(-5i64..5);
        let p1 = rng.gen_range(-20i64..20);
        let mem: Vec<i64> = (0..4).map(|_| rng.gen_range(-9i64..9)).collect();

        // Reference semantics.
        let ast = parse_program(&src).unwrap();
        let mut ev = Evaluator::new(&ast, 4);
        ev.set_step_limit(1_000_000);
        ev.write_ints(0, &mem);
        let reference = ev.call("f", &[EvalValue::I(p0), EvalValue::I(p1), EvalValue::I(0)]);

        let compiled = Compiler::new().compile(&src).unwrap();
        for dynamic in [false, true] {
            let mut sess = if dynamic {
                compiled.dynamic_session()
            } else {
                compiled.static_session()
            };
            sess.set_step_limit(2_000_000);
            let a = sess.alloc(4);
            sess.mem().write_ints(a, &mem);
            let got = sess.run("f", &[Value::I(p0), Value::I(p1), Value::I(a)]);
            match (&reference, &got) {
                (Ok(Some(EvalValue::I(r))), Ok(Some(Value::I(g)))) => {
                    assert_eq!(r, g, "case {case}: build dynamic={dynamic} of:\n{src}");
                    // Printed output and memory must match too.
                    let ref_out: Vec<i64> = ev
                        .output
                        .iter()
                        .map(|v| match v {
                            EvalValue::I(i) => *i,
                            EvalValue::F(f) => *f as i64,
                        })
                        .collect();
                    let got_out: Vec<i64> = sess.output().iter().map(|v| v.as_i()).collect();
                    assert_eq!(ref_out, got_out, "case {case}: output of:\n{src}");
                    assert_eq!(
                        ev.read_ints(0, 4),
                        sess.mem().read_ints(a, 4),
                        "case {case}: memory of:\n{src}"
                    );
                }
                (Err(_), Err(_)) => {}
                (r, g) => panic!("case {case}: ref {r:?} vs compiled {g:?}\n{src}"),
            }
        }
    }
}

/// The lexer is total: arbitrary bytes never panic it.
#[test]
fn lexer_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(0x0BAD_1EE7);
    for _ in 0..256 {
        let len = rng.gen_range(0i64..120) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        // Both raw-ish ASCII and arbitrary (lossily decoded) bytes.
        let _ = dyc_lang::lex(&String::from_utf8_lossy(&bytes));
        let ascii: String = bytes.iter().map(|b| (b % 0x60 + 0x20) as char).collect();
        let _ = dyc_lang::lex(&ascii);
    }
}

/// Pretty-printing a generated program re-parses to the same AST.
#[test]
fn pretty_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x0091_8777);
    for case in 0..48 {
        let src = program(&mut rng);
        let ast1 = parse_program(&src).unwrap();
        let printed = pretty::program_to_string(&ast1);
        let ast2 = parse_program(&printed).unwrap();
        assert_eq!(ast1, ast2, "case {case}: printed:\n{printed}");
    }
}

/// The double-hash code cache behaves exactly like a map from key
/// vectors to function ids.
#[test]
fn code_cache_is_a_map() {
    let mut rng = SplitMix64::seed_from_u64(0xCAC4E);
    for _ in 0..32 {
        let n_ops = rng.gen_range(1i64..200);
        let ops: Vec<(Vec<u64>, u32)> = (0..n_ops)
            .map(|_| {
                let klen = rng.gen_range(1i64..3);
                let key: Vec<u64> = (0..klen).map(|_| rng.gen_range(0i64..32) as u64).collect();
                (key, rng.gen_range(0i64..64) as u32)
            })
            .collect();
        let mut cache = DoubleHashCache::new();
        let mut model: HashMap<Vec<u64>, u32> = HashMap::new();
        for (key, fid) in &ops {
            // Interleave lookups and inserts.
            let expected = model.get(key).map(|v| FuncId(*v));
            assert_eq!(cache.lookup(key).value, expected);
            cache.insert(key.clone(), FuncId(*fid));
            model.insert(key.clone(), *fid);
        }
        for (key, fid) in &model {
            assert_eq!(cache.lookup(key).value, Some(FuncId(*fid)));
        }
        assert_eq!(cache.len(), model.len());
    }
}
