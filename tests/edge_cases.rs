//! Edge cases of the specialization machinery: recursion through dynamic
//! regions, float-valued keys, repeated promotion, mid-region
//! `make_dynamic`, and the one documented semantics deviation (the
//! NaN/zero-propagation interaction DyC shares).

use dyc::{Compiler, OptConfig, Value};

#[test]
fn recursive_dynamic_region_specializes_per_depth() {
    // The recursive call goes through the driver stub, so each exponent
    // value gets its own specialization, built lazily as recursion
    // descends — a chain of cache misses the first time, all hits after.
    let src = r#"
        int rpow(int b, int e) {
            make_static(e);
            if (e == 0) { return 1; }
            return b * rpow(b, e - 1);
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    assert_eq!(
        d.run("rpow", &[Value::I(3), Value::I(5)]).unwrap(),
        Some(Value::I(243))
    );
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 6, "e = 5, 4, 3, 2, 1, 0");
    // Second call: every level hits the cache.
    assert_eq!(
        d.run("rpow", &[Value::I(2), Value::I(5)]).unwrap(),
        Some(Value::I(32))
    );
    assert_eq!(d.rt_stats().unwrap().specializations, 6);
}

#[test]
fn float_valued_specialization_keys() {
    let src = r#"
        float area(float r, float h) {
            make_static(r);
            return 3.14159265358979 * r * r + h;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    let a1 = d
        .run("area", &[Value::F(2.0), Value::F(1.0)])
        .unwrap()
        .unwrap()
        .as_f();
    let a2 = d
        .run("area", &[Value::F(2.0), Value::F(5.0)])
        .unwrap()
        .unwrap()
        .as_f();
    let a3 = d
        .run("area", &[Value::F(3.0), Value::F(1.0)])
        .unwrap()
        .unwrap()
        .as_f();
    assert!((a1 - (std::f64::consts::PI * 4.0 + 1.0)).abs() < 1e-3);
    assert!((a2 - a1 - 4.0).abs() < 1e-12);
    assert!(a3 > a1);
    // r == 2.0 twice (one version), r == 3.0 once (another).
    assert_eq!(d.rt_stats().unwrap().specializations, 2);
    // pi * r * r folds completely: no run-time multiplies for the r part.
    let code = d.disassemble_matching("area$spec");
    assert!(!code.contains("fmul"), "{code}");
}

#[test]
fn negative_and_extreme_keys() {
    let src = "int f(int k, int d) { make_static(k); return k * d; }";
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    for k in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
        let out = d.run("f", &[Value::I(k), Value::I(3)]).unwrap();
        assert_eq!(out, Some(Value::I(k.wrapping_mul(3))), "k = {k}");
    }
    assert_eq!(d.rt_stats().unwrap().specializations, 5);
}

#[test]
fn promote_the_same_variable_repeatedly() {
    // Each promotion re-keys on the current value; the second promote of
    // an already-static variable is a no-op.
    let src = r#"
        int f(int a, int b, int d) {
            int x = 0;
            make_static(d);
            x = a;
            promote(x);
            int first = x * d;
            x = b;
            promote(x);
            return first + x * d;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut s = p.static_session();
    let mut dd = p.dynamic_session();
    for (a, b) in [(2i64, 3i64), (5, 7), (2, 7)] {
        let sv = s
            .run("f", &[Value::I(a), Value::I(b), Value::I(10)])
            .unwrap();
        let dv = dd
            .run("f", &[Value::I(a), Value::I(b), Value::I(10)])
            .unwrap();
        assert_eq!(sv, dv);
        assert_eq!(sv, Some(Value::I(a * 10 + b * 10)));
    }
    assert!(dd.rt_stats().unwrap().internal_promotions >= 2);
}

#[test]
fn make_dynamic_inside_a_loop_body() {
    // The static value crosses into run time on every unrolled iteration.
    let src = r#"
        int f(int n, int d) {
            make_static(n);
            int acc = 0;
            int i = 0;
            while (i < n) {
                int copy = n;
                make_dynamic(copy);
                acc = acc + copy * d;
                i = i + 1;
            }
            return acc;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut s = p.static_session();
    let mut d = p.dynamic_session();
    for n in [0i64, 1, 4] {
        let sv = s.run("f", &[Value::I(n), Value::I(7)]).unwrap();
        let dv = d.run("f", &[Value::I(n), Value::I(7)]).unwrap();
        assert_eq!(sv, dv, "n = {n}");
        assert_eq!(sv, Some(Value::I(n * n * 7)));
    }
}

#[test]
fn empty_region_and_annotation_of_unused_variable() {
    let src = "int f(int k, int d) { make_static(k); return d; }";
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    assert_eq!(
        d.run("f", &[Value::I(1), Value::I(9)]).unwrap(),
        Some(Value::I(9))
    );
    assert_eq!(
        d.run("f", &[Value::I(2), Value::I(9)]).unwrap(),
        Some(Value::I(9))
    );
    // k is dead, so the dispatch key is empty after the live-variable
    // restriction ("only hash on the subset of live static variables",
    // §4.4.3)… but the cache still keys on the promoted values, so both
    // calls are correct either way.
    assert!(d.rt_stats().unwrap().specializations <= 2);
}

/// The documented deviation DyC shares (§2.2.7): dynamic *zero*
/// propagation folds `x * 0.0` to `0.0`, which differs from IEEE when `x`
/// is NaN or infinite. The static build preserves the NaN; the dynamic
/// build folds it away.
#[test]
fn zero_propagation_nan_deviation_is_as_documented() {
    let src = r#"
        float f(float k, float x) {
            make_static(k);
            return x * k;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut s = p.static_session();
    let mut d = p.dynamic_session();
    let nan = f64::NAN;
    let sv = s
        .run("f", &[Value::F(0.0), Value::F(nan)])
        .unwrap()
        .unwrap()
        .as_f();
    let dv = d
        .run("f", &[Value::F(0.0), Value::F(nan)])
        .unwrap()
        .unwrap()
        .as_f();
    assert!(sv.is_nan(), "IEEE: NaN * 0.0 is NaN");
    assert_eq!(
        dv, 0.0,
        "zero propagation assumes finite operands, as in DyC"
    );
    // Strength reduction also clears multiplies by 0.0 ("the multiply can
    // be replaced with a clear instruction", §2.2.7); with *both*
    // value-dependent optimizations disabled, the builds agree bit for bit.
    let cfg = OptConfig::all()
        .without("zero_copy_propagation")
        .unwrap()
        .without("strength_reduction")
        .unwrap();
    let p2 = Compiler::with_config(cfg).compile(src).unwrap();
    let mut d2 = p2.dynamic_session();
    let dv2 = d2
        .run("f", &[Value::F(0.0), Value::F(nan)])
        .unwrap()
        .unwrap()
        .as_f();
    assert!(dv2.is_nan());
}

#[test]
fn dispatch_keys_distinguish_float_bit_patterns() {
    let src = "float f(float k, float x) { make_static(k); return x + k; }";
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    d.run("f", &[Value::F(0.0), Value::F(1.0)]).unwrap();
    d.run("f", &[Value::F(-0.0), Value::F(1.0)]).unwrap();
    // 0.0 and -0.0 are distinct keys (distinct bit patterns) — two cached
    // versions, both correct.
    assert_eq!(d.rt_stats().unwrap().specializations, 2);
}

#[test]
fn deep_static_call_chains_execute_at_compile_time() {
    let src = r#"
        static int twice(int x) { return x * 2; }
        static int quad(int x) { return twice(twice(x)); }
        int f(int n, int d) {
            make_static(n);
            return quad(n) + d;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    assert_eq!(
        d.run("f", &[Value::I(5), Value::I(1)]).unwrap(),
        Some(Value::I(21))
    );
    // Only the outer call is a static call from the region's perspective;
    // the nested ones run inside it on the VM.
    assert_eq!(d.rt_stats().unwrap().static_calls, 1);
    let code = d.disassemble_matching("f$spec");
    assert!(!code.contains("call"), "no residual calls:\n{code}");
}

#[test]
fn region_faults_surface_as_dispatch_errors() {
    // A static division by zero happens at specialization time.
    let src = "int f(int k, int d) { make_static(k); return d / (100 / k); }";
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    // k = 200 makes 100 / k == 0 at *run* time (dynamic divide), but
    // 100 / k itself is static: it executes during specialization and is
    // fine (== 0); the residual d / 0 faults at run time.
    let err = d.run("f", &[Value::I(200), Value::I(5)]).unwrap_err();
    assert_eq!(err, dyc::VmError::DivideByZero);
    // k = 0 faults inside the specializer (static 100 / 0).
    let err = d.run("f", &[Value::I(0), Value::I(5)]).unwrap_err();
    assert!(matches!(err, dyc::VmError::Dispatch(_)), "{err:?}");
}
