//! Conditional specialization (§2.2.5): "rather than unconditionally
//! executing an annotation, the programmer guards the annotation with an
//! arbitrary test of whether specialization is desirable. Polyvariant
//! division will then automatically duplicate the code following the test
//! statement, one copy being specialized and the other not."
//!
//! The paper describes but does not evaluate this capability; here it is
//! exercised directly: specialization is limited (a) to values amenable to
//! optimization, and (b) to loops that, when completely unrolled, fit in
//! the L1 instruction cache — the paper's own two motivating examples.

use dyc::{Compiler, Value};

/// A dot-product that only specializes on short vectors — the "unrolled
/// code must fit in the I-cache" guard of §2.2.5.
const GUARDED: &str = r#"
    int dotp(int a[n], int b[n], int n, int limit) {
        if (n <= limit) {
            make_static(a, n);
        }
        int sum = 0;
        int i = 0;
        while (i < n) {
            sum = sum + a[i] * b[i];
            i = i + 1;
        }
        return sum;
    }
"#;

fn run_dotp(sess: &mut dyc::Session, n: i64, limit: i64) -> i64 {
    let a = sess.alloc(n as usize);
    let b = sess.alloc(n as usize);
    for i in 0..n {
        sess.mem().write_int(a + i, i % 4);
        sess.mem().write_int(b + i, 10 + i);
    }
    sess.run(
        "dotp",
        &[Value::I(a), Value::I(b), Value::I(n), Value::I(limit)],
    )
    .unwrap()
    .unwrap()
    .as_i()
}

fn expected(n: i64) -> i64 {
    (0..n).map(|i| (i % 4) * (10 + i)).sum()
}

#[test]
fn guarded_annotation_specializes_only_small_inputs() {
    let p = Compiler::new().compile(GUARDED).unwrap();
    let mut d = p.dynamic_session();

    // Small vector: under the guard, the region specializes and unrolls.
    assert_eq!(run_dotp(&mut d, 8, 16), expected(8));
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 1);
    assert!(rt.loops_unrolled >= 1, "small input unrolls");

    // Large vector: the guard fails, the general path runs, and no new
    // specialization happens.
    assert_eq!(run_dotp(&mut d, 64, 16), expected(64));
    let rt = d.rt_stats().unwrap();
    assert_eq!(
        rt.specializations, 1,
        "guarded-off path must not specialize"
    );
}

#[test]
fn both_divisions_compute_the_same_results() {
    let p = Compiler::new().compile(GUARDED).unwrap();
    for n in [1i64, 4, 16, 17, 40] {
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        assert_eq!(run_dotp(&mut s, n, 16), expected(n), "static n={n}");
        assert_eq!(run_dotp(&mut d, n, 16), expected(n), "dynamic n={n}");
    }
}

/// §2.2.5's other example: specialize only "values that are particularly
/// amenable to optimization" — here, only power-of-two strides benefit
/// from strength reduction, so only they are specialized.
#[test]
fn value_dependent_guard() {
    let src = r#"
        int scale_sum(int a[n], int n, int stride) {
            int p2 = stride & (stride - 1);
            if (p2 == 0) {
                make_static(stride);
            }
            int sum = 0;
            int i = 0;
            while (i < n) {
                sum = sum + a[i] * stride;
                i = i + 1;
            }
            return sum;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut d = p.dynamic_session();
    let a = d.alloc(8);
    d.mem().write_ints(a, &[1, 2, 3, 4, 5, 6, 7, 8]);

    // Power-of-two stride: specialized, multiply strength-reduced.
    let out = d
        .run("scale_sum", &[Value::I(a), Value::I(8), Value::I(8)])
        .unwrap();
    assert_eq!(out, Some(Value::I(36 * 8)));
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 1);
    assert!(rt.strength_reductions >= 1);
    let code = d.disassemble_matching("scale_sum$spec");
    assert!(code.contains("shl"), "stride 8 becomes a shift:\n{code}");

    // Non-power-of-two stride: general path, no new specialization.
    let out = d
        .run("scale_sum", &[Value::I(a), Value::I(8), Value::I(7)])
        .unwrap();
    assert_eq!(out, Some(Value::I(36 * 7)));
    assert_eq!(d.rt_stats().unwrap().specializations, 1);
}
