//! Differential test of the two specialization paths.
//!
//! The staged generating-extension executor must be a *pure* staging of
//! the online specializer: on every benchmark it has to emit
//! byte-identical specialized code and produce identical observable
//! behavior — only the dynamic-compilation cycle meter (and the run-time
//! analysis counter it retires) may move. This drives every workload in
//! the suite through both paths and compares:
//!
//! * the full disassembled module after specialization (stubs + every
//!   generated `$spec` function) — byte equality;
//! * region results and printed output;
//! * the run-time statistics, which must agree exactly on everything
//!   except the cycle split and `runtime_bta_calls`;
//! * `runtime_bta_calls` itself: **exactly zero** on the staged path
//!   (no binding-time classification, liveness query, or loop analysis
//!   survives to run time), strictly positive online;
//! * dynamic-compilation overhead: strictly lower staged than online.

use dyc::{Compiler, OptConfig, RtStats, Value};
use dyc_workloads::{all, Workload};

struct PathRun {
    module_disasm: String,
    result: Option<Value>,
    output: Vec<Value>,
    rt: RtStats,
}

fn run_path(w: &dyn Workload, cfg: OptConfig) -> PathRun {
    let meta = w.meta();
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    let args = w.setup_region(&mut sess);
    let result = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
    assert!(
        w.check_region(result, &mut sess),
        "{}: wrong region result",
        meta.name
    );
    // A second, steady-state invocation: everything must come from the
    // code cache on both paths.
    w.reset(&mut sess, &args);
    sess.run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: steady-state run failed: {e}", meta.name));
    PathRun {
        module_disasm: sess.disassemble_matching(""),
        result,
        output: sess.output().to_vec(),
        rt: sess
            .rt_stats()
            .expect("dynamic session has a runtime")
            .clone(),
    }
}

/// Copy of the stats with the fields staging is *allowed* to change
/// zeroed out, so the rest can be compared exactly.
fn normalized(rt: &RtStats) -> RtStats {
    RtStats {
        dyncomp_cycles: 0,
        ge_exec_cycles: 0,
        emit_cycles: 0,
        runtime_bta_calls: 0,
        ..rt.clone()
    }
}

#[test]
fn staged_ge_is_byte_identical_and_strictly_cheaper_on_every_benchmark() {
    let staged_cfg = OptConfig::all();
    let online_cfg = OptConfig::all().without("staged_ge").unwrap();
    assert!(staged_cfg.staged_ge && !online_cfg.staged_ge);

    for w in all() {
        let name = w.meta().name;
        let staged = run_path(w.as_ref(), staged_cfg);
        let online = run_path(w.as_ref(), online_cfg);

        // Identical observable behavior.
        assert_eq!(
            staged.result, online.result,
            "{name}: region results differ"
        );
        assert_eq!(
            staged.output, online.output,
            "{name}: printed output differs"
        );

        // Byte-identical code: the whole module, stubs and every
        // dynamically generated function included.
        assert_eq!(
            staged.module_disasm, online.module_disasm,
            "{name}: staged and online paths emitted different code"
        );

        // The staged path performs zero run-time analysis; the online
        // path cannot avoid it.
        assert_eq!(
            staged.rt.runtime_bta_calls, 0,
            "{name}: staged path performed run-time BTA/liveness work"
        );
        assert!(
            online.rt.runtime_bta_calls > 0,
            "{name}: online path reported no run-time analysis (counter broken?)"
        );

        // Every other statistic agrees exactly: same units, same folds,
        // same DAE removals, same promotions, same dispatch behavior.
        assert_eq!(
            normalized(&staged.rt),
            normalized(&online.rt),
            "{name}: specialization statistics diverged"
        );

        // And staging is the cheaper way to run the generating extension.
        assert!(
            staged.rt.dyncomp_cycles < online.rt.dyncomp_cycles,
            "{name}: staged overhead {} !< online overhead {}",
            staged.rt.dyncomp_cycles,
            online.rt.dyncomp_cycles
        );
        assert_eq!(
            staged.rt.instrs_generated, online.rt.instrs_generated,
            "{name}: generated instruction counts differ"
        );
    }
}

#[test]
fn staged_ge_overhead_split_accounts_for_all_cycles() {
    // The exec/emit split must tile the region's pre-dispatch overhead:
    // dyncomp = ge_exec + emit + per-site install charges.
    for w in all() {
        let name = w.meta().name;
        let run = run_path(w.as_ref(), OptConfig::all());
        let install_charges = run.rt.dyncomp_cycles - run.rt.ge_exec_cycles - run.rt.emit_cycles;
        assert!(
            install_charges > 0,
            "{name}: install cycles should be positive, split: {} + {} vs total {}",
            run.rt.ge_exec_cycles,
            run.rt.emit_cycles,
            run.rt.dyncomp_cycles
        );
    }
}
