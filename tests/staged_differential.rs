//! Differential test of the three specialization paths.
//!
//! The staged generating-extension executor must be a *pure* staging of
//! the online specializer, and template fusion must be a *pure* batching
//! of the staged executor: on every benchmark all three paths have to
//! emit byte-identical specialized code and produce identical observable
//! behavior — only the dynamic-compilation cycle meter (and the counters
//! that explain it) may move. This drives every workload in the suite
//! through all three paths and compares:
//!
//! * the full disassembled module after specialization (stubs + every
//!   generated `$spec` function) — byte equality, three ways;
//! * region results and printed output;
//! * the run-time statistics, which must agree exactly on everything
//!   except the cycle split, `runtime_bta_calls`, and the template
//!   counters (zero off the template path by definition);
//! * `runtime_bta_calls` itself: **exactly zero** on both staged paths
//!   (no binding-time classification, liveness query, or loop analysis
//!   survives to run time), strictly positive online;
//! * dynamic-compilation overhead, strictly ordered: templates < staged
//!   unfused < online — fusing emit runs must pay on every benchmark;
//! * the copy-and-patch meters: the fused path emits through templates
//!   (`template_instrs > 0`) and the unfused path never does.

use dyc::{Compiler, OptConfig, RtStats, Value};
use dyc_workloads::{all, Workload};

struct PathRun {
    module_disasm: String,
    result: Option<Value>,
    output: Vec<Value>,
    rt: RtStats,
}

fn run_path(w: &dyn Workload, cfg: OptConfig) -> PathRun {
    let meta = w.meta();
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    let args = w.setup_region(&mut sess);
    let result = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
    assert!(
        w.check_region(result, &mut sess),
        "{}: wrong region result",
        meta.name
    );
    // A second, steady-state invocation: everything must come from the
    // code cache on both paths.
    w.reset(&mut sess, &args);
    sess.run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: steady-state run failed: {e}", meta.name));
    PathRun {
        module_disasm: sess.disassemble_matching(""),
        result,
        output: sess.output().to_vec(),
        rt: sess
            .rt_stats()
            .expect("dynamic session has a runtime")
            .clone(),
    }
}

/// Copy of the stats with the fields the paths are *allowed* to differ on
/// zeroed out, so the rest can be compared exactly: the cycle meters, the
/// run-time-analysis counter, and the copy-and-patch counters (templates
/// exist only on the fused path).
fn normalized(rt: &RtStats) -> RtStats {
    RtStats {
        dyncomp_cycles: 0,
        ge_exec_cycles: 0,
        emit_cycles: 0,
        runtime_bta_calls: 0,
        template_instrs: 0,
        holes_patched: 0,
        template_copy_cycles: 0,
        hole_patch_cycles: 0,
        template_fallbacks: 0,
        ..rt.clone()
    }
}

#[test]
fn staged_ge_is_byte_identical_and_strictly_cheaper_on_every_benchmark() {
    let fused_cfg = OptConfig::all();
    let unfused_cfg = OptConfig::all().without("template_fusion").unwrap();
    let online_cfg = OptConfig::all().without("staged_ge").unwrap();
    assert!(fused_cfg.staged_ge && fused_cfg.template_fusion);
    assert!(unfused_cfg.staged_ge && !unfused_cfg.template_fusion);
    assert!(!online_cfg.staged_ge);

    let mut template_free: Vec<&str> = Vec::new();
    for w in all() {
        let name = w.meta().name;
        let fused = run_path(w.as_ref(), fused_cfg);
        let unfused = run_path(w.as_ref(), unfused_cfg);
        let online = run_path(w.as_ref(), online_cfg);

        // Identical observable behavior, three ways.
        assert_eq!(fused.result, online.result, "{name}: region results differ");
        assert_eq!(
            unfused.result, online.result,
            "{name}: region results differ (unfused)"
        );
        assert_eq!(
            fused.output, online.output,
            "{name}: printed output differs"
        );
        assert_eq!(
            unfused.output, online.output,
            "{name}: printed output differs (unfused)"
        );

        // Byte-identical code: the whole module, stubs and every
        // dynamically generated function included.
        assert_eq!(
            unfused.module_disasm, online.module_disasm,
            "{name}: staged and online paths emitted different code"
        );
        assert_eq!(
            fused.module_disasm, online.module_disasm,
            "{name}: template fusion changed the emitted code"
        );

        // The staged paths perform zero run-time analysis; the online
        // path cannot avoid it.
        assert_eq!(
            fused.rt.runtime_bta_calls, 0,
            "{name}: fused path performed run-time BTA/liveness work"
        );
        assert_eq!(
            unfused.rt.runtime_bta_calls, 0,
            "{name}: unfused staged path performed run-time BTA/liveness work"
        );
        assert!(
            online.rt.runtime_bta_calls > 0,
            "{name}: online path reported no run-time analysis (counter broken?)"
        );

        // Every other statistic agrees exactly: same units, same folds,
        // same DAE removals, same promotions, same dispatch behavior.
        assert_eq!(
            normalized(&unfused.rt),
            normalized(&online.rt),
            "{name}: specialization statistics diverged (unfused vs online)"
        );
        assert_eq!(
            normalized(&fused.rt),
            normalized(&unfused.rt),
            "{name}: specialization statistics diverged (fused vs unfused)"
        );

        // Templates exist only on the fused path. A benchmark whose
        // emit runs are all singletons (m88ksim: complete unrolling
        // leaves one dynamic compare per unit) legitimately has none —
        // a lone emit is cheaper left as a plain hole.
        assert_eq!(
            unfused.rt.template_instrs, 0,
            "{name}: unfused path reported template instructions"
        );
        if fused.rt.template_instrs == 0 {
            template_free.push(name);
        } else {
            assert!(
                fused.rt.template_copy_cycles > 0,
                "{name}: templates used but no copy cycles metered"
            );
            // Strict overhead ordering wherever templates fire:
            // copy-and-patch beats per-instruction staged emission.
            assert!(
                fused.rt.dyncomp_cycles < unfused.rt.dyncomp_cycles,
                "{name}: fused overhead {} !< unfused overhead {}",
                fused.rt.dyncomp_cycles,
                unfused.rt.dyncomp_cycles
            );
        }
        assert!(
            fused.rt.dyncomp_cycles <= unfused.rt.dyncomp_cycles,
            "{name}: template fusion made dynamic compilation dearer: {} > {}",
            fused.rt.dyncomp_cycles,
            unfused.rt.dyncomp_cycles
        );
        assert!(
            unfused.rt.dyncomp_cycles < online.rt.dyncomp_cycles,
            "{name}: staged overhead {} !< online overhead {}",
            unfused.rt.dyncomp_cycles,
            online.rt.dyncomp_cycles
        );
        assert_eq!(
            fused.rt.instrs_generated, online.rt.instrs_generated,
            "{name}: generated instruction counts differ"
        );
    }

    // The suite as a whole must exercise the copy-and-patch path hard.
    // Exactly two benchmarks are structurally template-free: m88ksim
    // (complete unrolling leaves a single dynamic compare per division)
    // and binary (two singleton emits in separate divisions). Everything
    // else must fuse at least one run.
    assert!(
        template_free.len() <= 2,
        "template fusion missed too many benchmarks: {template_free:?}"
    );
}

#[test]
fn staged_ge_overhead_split_accounts_for_all_cycles() {
    // The exec/emit split must tile the region's pre-dispatch overhead:
    // dyncomp = ge_exec + emit + per-site install charges. And the
    // template sub-split must stay inside the emit meter.
    for w in all() {
        let name = w.meta().name;
        let run = run_path(w.as_ref(), OptConfig::all());
        let install_charges = run.rt.dyncomp_cycles - run.rt.ge_exec_cycles - run.rt.emit_cycles;
        assert!(
            install_charges > 0,
            "{name}: install cycles should be positive, split: {} + {} vs total {}",
            run.rt.ge_exec_cycles,
            run.rt.emit_cycles,
            run.rt.dyncomp_cycles
        );
        assert!(
            run.rt.template_copy_cycles + run.rt.hole_patch_cycles <= run.rt.emit_cycles,
            "{name}: template cycles {} + {} exceed the emit meter {}",
            run.rt.template_copy_cycles,
            run.rt.hole_patch_cycles,
            run.rt.emit_cycles
        );
    }
}
