//! Third-oracle validation over the *real* benchmarks: the independent
//! AST reference interpreter (`dyc_lang::Evaluator`) must agree with the
//! statically compiled build on the paper's workloads — catching any bug
//! the static and dynamic builds share (lowering, traditional
//! optimizations, codegen), on real programs rather than random ones.

use dyc::{Compiler, Value};
use dyc_lang::{parse_program, EvalValue, Evaluator};
use dyc_workloads::{by_name, Workload};

/// Run a workload's region through the AST interpreter and the static
/// build with identical memory images, and compare results + memory.
fn oracle_check(name: &str) {
    let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let meta = w.meta();
    let program = Compiler::new().compile(&w.source()).unwrap();

    // Static build run.
    let mut sess = program.static_session();
    sess.set_step_limit(200_000_000);
    let args = w.setup_region(&mut sess);
    let compiled_out = sess.run(meta.region_func, &args).unwrap();

    // Reference interpreter run with the same memory image. Sessions
    // allocate deterministically, so rebuilding via setup_region on a
    // scratch session reproduces the exact layout.
    let ast = parse_program(&w.source()).unwrap();
    let mut scratch = program.static_session();
    let scratch_args = w.setup_region(&mut scratch);
    assert_eq!(args, scratch_args, "{name}: setup must be deterministic");
    let mem_len = scratch.mem().len();
    let image = scratch.mem().read_ints(0, mem_len);

    let mut ev = Evaluator::new(&ast, mem_len);
    ev.set_step_limit(200_000_000);
    for (i, w64) in image.iter().enumerate() {
        ev.mem[i] = *w64 as u64;
    }
    let ev_args: Vec<EvalValue> = args
        .iter()
        .map(|v| match v {
            Value::I(i) => EvalValue::I(*i),
            Value::F(f) => EvalValue::F(*f),
        })
        .collect();
    let ref_out = ev.call(meta.region_func, &ev_args).unwrap();

    // Results agree (bitwise for floats).
    match (compiled_out, ref_out) {
        (Some(Value::I(a)), Some(EvalValue::I(b))) => assert_eq!(a, b, "{name}: result"),
        (Some(Value::F(a)), Some(EvalValue::F(b))) => {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: result {a} vs {b}")
        }
        (None, None) => {}
        (a, b) => panic!("{name}: result kinds differ: {a:?} vs {b:?}"),
    }
    // Final memory agrees word for word.
    let compiled_mem = sess.mem().read_ints(0, mem_len);
    let ref_mem: Vec<i64> = (0..mem_len).map(|i| ev.mem[i] as i64).collect();
    assert_eq!(compiled_mem, ref_mem, "{name}: memory");
}

#[test]
fn oracle_agrees_on_the_kernels() {
    for name in [
        "binary",
        "chebyshev",
        "dotproduct",
        "query",
        "romberg",
        "unrle",
    ] {
        oracle_check(name);
    }
}

#[test]
fn oracle_agrees_on_dinero() {
    oracle_check("dinero");
}

#[test]
fn oracle_agrees_on_m88ksim() {
    oracle_check("m88ksim");
}

#[test]
fn oracle_agrees_on_mipsi() {
    oracle_check("mipsi");
}

#[test]
fn oracle_agrees_on_viewperf() {
    oracle_check("viewperf:project");
    oracle_check("viewperf:shade");
}

#[test]
fn oracle_agrees_on_pnmconvol() {
    // The full 45×45 matrix is slow under the AST interpreter; the tiny
    // configuration exercises the same code paths.
    let w = dyc_workloads::pnmconvol::Pnmconvol::tiny();
    let meta = w.meta();
    let program = Compiler::new().compile(&w.source()).unwrap();
    let mut sess = program.static_session();
    let args = w.setup_region(&mut sess);
    sess.run(meta.region_func, &args).unwrap();

    let ast = parse_program(&w.source()).unwrap();
    let mut scratch = program.static_session();
    let _ = w.setup_region(&mut scratch);
    let mem_len = scratch.mem().len();
    let image = scratch.mem().read_ints(0, mem_len);
    let mut ev = Evaluator::new(&ast, mem_len);
    for (i, w64) in image.iter().enumerate() {
        ev.mem[i] = *w64 as u64;
    }
    let ev_args: Vec<EvalValue> = args
        .iter()
        .map(|v| match v {
            Value::I(i) => EvalValue::I(*i),
            Value::F(f) => EvalValue::F(*f),
        })
        .collect();
    ev.call(meta.region_func, &ev_args).unwrap();
    let compiled_mem = sess.mem().read_ints(0, mem_len);
    let ref_mem: Vec<i64> = (0..mem_len).map(|i| ev.mem[i] as i64).collect();
    assert_eq!(compiled_mem, ref_mem, "pnmconvol memory");
}
