//! Cross-crate integration: the full pipeline (parse → lower → optimize →
//! stage → dispatch → specialize → execute) driven through the public API,
//! plus structural checks that span crates.

use dyc::{Compiler, OptConfig, Value};
use dyc_lang::{parse_program, pretty};
use dyc_workloads::{all, Workload};

#[test]
fn every_workload_region_is_correct_in_both_builds() {
    for w in all() {
        let m = w.meta();
        let program = Compiler::new()
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        for (label, mut sess) in [
            ("static", program.static_session()),
            ("dynamic", program.dynamic_session()),
        ] {
            sess.set_step_limit(200_000_000);
            let args = w.setup_region(&mut sess);
            let out = sess
                .run(m.region_func, &args)
                .unwrap_or_else(|e| panic!("{} ({label}): {e}", m.name));
            assert!(
                w.check_region(out, &mut sess),
                "{} ({label}): wrong result {out:?}",
                m.name
            );
        }
    }
}

#[test]
fn workload_sources_round_trip_through_the_pretty_printer() {
    for w in all() {
        let m = w.meta();
        let ast1 = parse_program(&w.source()).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let printed = pretty::program_to_string(&ast1);
        let ast2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}\n{printed}", m.name));
        assert_eq!(ast1, ast2, "{}: round trip changed the AST", m.name);
    }
}

#[test]
fn sessions_are_isolated() {
    let src = r#"
        int bump(int k, int d) {
            make_static(k);
            return k + d;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut a = p.dynamic_session();
    let mut b = p.dynamic_session();
    a.run("bump", &[Value::I(1), Value::I(0)]).unwrap();
    a.run("bump", &[Value::I(2), Value::I(0)]).unwrap();
    // Session b has its own cache: its first call must specialize afresh.
    b.run("bump", &[Value::I(1), Value::I(0)]).unwrap();
    assert_eq!(a.rt_stats().unwrap().specializations, 2);
    assert_eq!(b.rt_stats().unwrap().specializations, 1);
}

#[test]
fn dynamic_module_grows_as_specializations_accumulate() {
    let src = "int f(int k, int d) { make_static(k); return k * d; }";
    let p = Compiler::new().compile(src).unwrap();
    let mut s = p.dynamic_session();
    let base = s.module_len();
    for k in 0..5 {
        s.run("f", &[Value::I(k), Value::I(2)]).unwrap();
    }
    assert_eq!(s.module_len(), base + 5);
    assert_eq!(s.generated_functions().len(), 5);
}

#[test]
fn mutually_calling_regions_specialize_independently() {
    let src = r#"
        int inner(int n, int d) {
            make_static(n);
            int s = 0;
            int i = 0;
            while (i < n) { s = s + d; i = i + 1; }
            return s;
        }
        int outer(int m, int d) {
            make_static(m);
            int acc = 0;
            int j = 0;
            while (j < m) { acc = acc + inner(j, d); j = j + 1; }
            return acc;
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut s = p.static_session();
    let mut d = p.dynamic_session();
    let sv = s.run("outer", &[Value::I(5), Value::I(3)]).unwrap();
    let dv = d.run("outer", &[Value::I(5), Value::I(3)]).unwrap();
    assert_eq!(sv, dv);
    // outer(5) with inner(j) for j=0..4: note inner's calls happen from
    // *specialized* outer code, and each distinct j gets its own version.
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 6, "outer + inner for j in 0..5");
    // A second call with the same m reuses everything.
    d.run("outer", &[Value::I(5), Value::I(9)]).unwrap();
    assert_eq!(d.rt_stats().unwrap().specializations, 6);
}

#[test]
fn ablations_change_code_shape_but_not_results() {
    let w = dyc_workloads::pnmconvol::Pnmconvol::tiny();
    let mut generated = Vec::new();
    for feature in OptConfig::feature_names() {
        let cfg = OptConfig::all().without(feature).unwrap();
        let p = Compiler::with_config(cfg).compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("do_convol", &args).unwrap();
        assert!(
            w.check_region(None, &mut d),
            "feature '{feature}' broke the result"
        );
        generated.push((feature, d.rt_stats().unwrap().instrs_generated));
    }
    // Disabling DAE must generate more code than disabling, say, static
    // calls (which pnmconvol does not use).
    let get = |f: &str| generated.iter().find(|(n, _)| *n == &f).unwrap().1;
    assert!(get("dead_assignment_elimination") > get("static_calls"));
    // Disabling unrolling generates far less code (no unrolled bodies).
    assert!(get("complete_loop_unrolling") < get("static_calls"));
}

#[test]
fn the_paper_example_matches_figure_four_shape() {
    // 3×3 alternating matrix, zeroes in the corners (paper Figures 2–4).
    let p = Compiler::new()
        .compile(dyc_workloads::pnmconvol::SOURCE)
        .unwrap();
    let mut d = p.dynamic_session();
    let buf = d.alloc(200);
    for i in 0..200 {
        d.mem().write_float(buf + i, 0.125 * (i % 5) as f64);
    }
    let image = buf + 7; // 6 columns, half = 1
    let cm = d.alloc(9);
    d.mem()
        .write_floats(cm, &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    let out = d.alloc(36);
    d.run(
        "do_convol",
        &[
            Value::I(image),
            Value::I(6),
            Value::I(6),
            Value::I(cm),
            Value::I(3),
            Value::I(3),
            Value::I(out),
        ],
    )
    .unwrap();
    let name = d.generated_functions()[0].clone();
    let code = d.disassemble(&name).unwrap();
    // Figure 4: only the four unit weights survive — four loads and four
    // adds per pixel, no multiplies at all.
    assert_eq!(code.matches("fmul").count(), 0, "{code}");
    assert_eq!(code.matches("ldf").count(), 4, "{code}");
    let rt = d.rt_stats().unwrap();
    assert!(rt.dae_removed >= 5, "the five zero-weight loads die");
}
