//! Observational equivalence: for randomly generated annotated programs
//! and inputs, the dynamically specialized build must produce exactly the
//! same results, printed output, and memory effects as the statically
//! compiled build — under the full configuration *and* under every
//! single-optimization ablation.
//!
//! This is the core soundness property of the whole system: staging,
//! specialization, unrolling, zero/copy propagation, dead-assignment
//! elimination, strength reduction, promotion and the code caches may
//! change *when* things are computed, never *what*.

use dyc::{Compiler, OptConfig, Value};
use proptest::prelude::*;

/// A small random program: three int parameters (p0 is promoted to static
/// via `make_static`), an int array, nested bounded loops, conditionals,
/// arithmetic, and optional internal promotion.
#[derive(Debug, Clone)]
struct Prog {
    src: String,
}

/// Random integer expression over the variables in scope.
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|v| v.to_string()),
        Just("p0".to_string()),
        Just("p1".to_string()),
        Just("p2".to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("i".to_string()),
        Just("a[iabs(x) % 8]".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"),
            ])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone(), inner.clone(), prop_oneof![
                Just("<"), Just("=="), Just(">"),
            ])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            // Division guarded against zero; shifts kept small.
            (inner.clone(), 1i64..7).prop_map(|(l, r)| format!("({l} / {r})")),
            (inner.clone(), 1i64..7).prop_map(|(l, r)| format!("({l} % {r})")),
            inner.clone().prop_map(|e| format!("(0 - {e})")),
        ]
    })
    .boxed()
}

/// Random statement (assignments, stores, prints, conditionals, loops).
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let simple = prop_oneof![
        (prop_oneof![Just("x"), Just("y")], expr(2))
            .prop_map(|(v, e)| format!("{v} = {e};")),
        (0i64..8, expr(2)).prop_map(|(i, e)| format!("a[{i}] = {e};")),
        expr(1).prop_map(|e| format!("print_int({e});")),
    ];
    simple
        .prop_recursive(depth, 16, 4, |inner| {
            prop_oneof![
                // if / else
                (expr(1), inner.clone(), inner.clone())
                    .prop_map(|(c, t, f)| format!("if ({c}) {{ {t} }} else {{ {f} }}")),
                // Bounded counted loop; the counter is declared in its own
                // scope (shadowing makes nested loops independent).
                (1i64..5, inner.clone()).prop_map(|(n, body)| {
                    format!(
                        "{{ int t = 0; while (t < {n}) {{ i = t; {body} t = t + 1; }} }}"
                    )
                }),
                // Internal promotion of x after a dynamic assignment.
                (expr(1), inner.clone())
                    .prop_map(|(e, b)| format!("x = {e}; promote(x); {b}")),
                (inner.clone(), inner).prop_map(|(a, b)| format!("{a} {b}")),
            ]
        })
        .boxed()
}

fn program() -> impl Strategy<Value = Prog> {
    (proptest::collection::vec(stmt(2), 1..5), any::<bool>()).prop_map(|(stmts, unroll_loop)| {
        let body = stmts.join("\n            ");
        let tail = if unroll_loop {
            // A loop over the annotated parameter: unrolls when positive.
            "int k = 0; int q = p0 % 5; while (k < q) { y = y + x + k; k = k + 1; }"
        } else {
            ""
        };
        let src = format!(
            r#"
        int f(int p0, int p1, int p2, int a[8]) {{
            int x = 0;
            int y = 0;
            int i = 0;
            make_static(p0);
            {body}
            {tail}
            return x * 31 + y + a[0] + i;
        }}
        "#
        );
        Prog { src }
    })
}

/// Observable behavior of one run: result, printed output, final memory.
type Observation = (Option<Value>, Vec<Value>, Vec<i64>);

/// Run one build and collect its observable behavior.
fn run_build(
    program: &dyc::Program,
    dynamic: bool,
    args: &[i64],
    mem_init: &[i64],
) -> Result<Observation, dyc::VmError> {
    let mut sess = if dynamic { program.dynamic_session() } else { program.static_session() };
    sess.set_step_limit(4_000_000);
    let a = sess.alloc(8);
    sess.mem().write_ints(a, mem_init);
    let vals: Vec<Value> =
        args.iter().map(|v| Value::I(*v)).chain([Value::I(a)]).collect();
    let out = sess.run("f", &vals)?;
    let printed = sess.output().to_vec();
    let mem = sess.mem().read_ints(a, 8);
    Ok((out, printed, mem))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn static_and_dynamic_builds_agree(
        prog in program(),
        p0 in -6i64..6,
        p1 in -50i64..50,
        p2 in -50i64..50,
        mem in proptest::collection::vec(-9i64..9, 8),
    ) {
        let compiled = match Compiler::new().compile(&prog.src) {
            Ok(c) => c,
            Err(e) => panic!("generated program failed to compile: {e}\n{}", prog.src),
        };
        let stat = run_build(&compiled, false, &[p0, p1, p2], &mem);
        let dynm = run_build(&compiled, true, &[p0, p1, p2], &mem);
        match (stat, dynm) {
            (Ok(s), Ok(d)) => prop_assert_eq!(s, d, "program:\n{}", prog.src),
            (Err(se), Err(de)) => {
                // Both fault (e.g. division by zero): the *kind* must
                // match, modulo faults surfacing at specialization time as
                // dispatch errors.
                let same = std::mem::discriminant(&se) == std::mem::discriminant(&de)
                    || matches!(de, dyc::VmError::Dispatch(_));
                prop_assert!(same, "static err {:?} vs dynamic err {:?}\n{}", se, de, prog.src);
            }
            (s, d) => prop_assert!(false, "one build faulted: {s:?} vs {d:?}\n{}", prog.src),
        }
    }

    #[test]
    fn every_ablation_preserves_semantics(
        prog in program(),
        p0 in -6i64..6,
        p1 in -50i64..50,
        mem in proptest::collection::vec(-9i64..9, 8),
    ) {
        let reference = {
            let compiled = Compiler::new().compile(&prog.src).unwrap();
            run_build(&compiled, false, &[p0, p1, 3], &mem).ok()
        };
        for feature in OptConfig::feature_names() {
            let cfg = OptConfig::all().without(feature).unwrap();
            let compiled = Compiler::with_config(cfg).compile(&prog.src).unwrap();
            let got = run_build(&compiled, true, &[p0, p1, 3], &mem).ok();
            prop_assert_eq!(
                &reference, &got,
                "ablation '{}' changed behavior of:\n{}", feature, prog.src
            );
        }
    }
}
