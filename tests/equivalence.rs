//! Observational equivalence: for randomly generated annotated programs
//! and inputs, the dynamically specialized build must produce exactly the
//! same results, printed output, and memory effects as the statically
//! compiled build — under the full configuration *and* under every
//! single-optimization ablation.
//!
//! This is the core soundness property of the whole system: staging,
//! specialization, unrolling, zero/copy propagation, dead-assignment
//! elimination, strength reduction, promotion and the code caches may
//! change *when* things are computed, never *what*.
//!
//! The programs are drawn from a fixed-seed SplitMix64 stream, so every
//! run tests the same corpus — a failure reproduces by its case index.

use dyc::{Compiler, OptConfig, Value};
use dyc_workloads::rng::SplitMix64;

/// Random integer expression over the variables in scope.
fn expr(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.gen_range(0i64..3) == 0 {
        return match rng.gen_range(0i64..8) {
            0 => rng.gen_range(-20i64..20).to_string(),
            1 => "p0".to_string(),
            2 => "p1".to_string(),
            3 => "p2".to_string(),
            4 => "x".to_string(),
            5 => "y".to_string(),
            6 => "i".to_string(),
            _ => "a[iabs(x) % 8]".to_string(),
        };
    }
    match rng.gen_range(0i64..5) {
        0 => {
            let op = ["+", "-", "*"][rng.gen_range(0i64..3) as usize];
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("({l} {op} {r})")
        }
        1 => {
            let op = ["<", "==", ">"][rng.gen_range(0i64..3) as usize];
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("({l} {op} {r})")
        }
        // Division guarded against zero; shifts kept small.
        2 => format!("({} / {})", expr(rng, depth - 1), rng.gen_range(1i64..7)),
        3 => format!("({} % {})", expr(rng, depth - 1), rng.gen_range(1i64..7)),
        _ => format!("(0 - {})", expr(rng, depth - 1)),
    }
}

/// Random statement (assignments, stores, prints, conditionals, loops).
fn stmt(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.gen_range(0i64..3) == 0 {
        return match rng.gen_range(0i64..3) {
            0 => {
                let v = if rng.gen_range(0i64..2) == 0 {
                    "x"
                } else {
                    "y"
                };
                format!("{v} = {};", expr(rng, 2))
            }
            1 => format!("a[{}] = {};", rng.gen_range(0i64..8), expr(rng, 2)),
            _ => format!("print_int({});", expr(rng, 1)),
        };
    }
    match rng.gen_range(0i64..4) {
        // if / else
        0 => {
            let c = expr(rng, 1);
            let t = stmt(rng, depth - 1);
            let f = stmt(rng, depth - 1);
            format!("if ({c}) {{ {t} }} else {{ {f} }}")
        }
        // Bounded counted loop; the counter is declared in its own
        // scope (shadowing makes nested loops independent).
        1 => {
            let n = rng.gen_range(1i64..5);
            let body = stmt(rng, depth - 1);
            format!("{{ int t = 0; while (t < {n}) {{ i = t; {body} t = t + 1; }} }}")
        }
        // Internal promotion of x after a dynamic assignment.
        2 => {
            let e = expr(rng, 1);
            let b = stmt(rng, depth - 1);
            format!("x = {e}; promote(x); {b}")
        }
        _ => {
            let a = stmt(rng, depth - 1);
            let b = stmt(rng, depth - 1);
            format!("{a} {b}")
        }
    }
}

/// A small random program: three int parameters (p0 is promoted to static
/// via `make_static`), an int array, nested bounded loops, conditionals,
/// arithmetic, and optional internal promotion.
fn program(rng: &mut SplitMix64) -> String {
    let n = rng.gen_range(1i64..5);
    let stmts: Vec<String> = (0..n).map(|_| stmt(rng, 2)).collect();
    let body = stmts.join("\n            ");
    let tail = if rng.gen_range(0i64..2) == 0 {
        // A loop over the annotated parameter: unrolls when positive.
        "int k = 0; int q = p0 % 5; while (k < q) { y = y + x + k; k = k + 1; }"
    } else {
        ""
    };
    format!(
        r#"
        int f(int p0, int p1, int p2, int a[8]) {{
            int x = 0;
            int y = 0;
            int i = 0;
            make_static(p0);
            {body}
            {tail}
            return x * 31 + y + a[0] + i;
        }}
        "#
    )
}

/// Observable behavior of one run: result, printed output, final memory.
type Observation = (Option<Value>, Vec<Value>, Vec<i64>);

/// Run one build and collect its observable behavior.
fn run_build(
    program: &dyc::Program,
    dynamic: bool,
    args: &[i64],
    mem_init: &[i64],
) -> Result<Observation, dyc::VmError> {
    let mut sess = if dynamic {
        program.dynamic_session()
    } else {
        program.static_session()
    };
    sess.set_step_limit(4_000_000);
    let a = sess.alloc(8);
    sess.mem().write_ints(a, mem_init);
    let vals: Vec<Value> = args
        .iter()
        .map(|v| Value::I(*v))
        .chain([Value::I(a)])
        .collect();
    let out = sess.run("f", &vals)?;
    let printed = sess.output().to_vec();
    let mem = sess.mem().read_ints(a, 8);
    Ok((out, printed, mem))
}

fn case_inputs(rng: &mut SplitMix64) -> (i64, i64, i64, Vec<i64>) {
    let p0 = rng.gen_range(-6i64..6);
    let p1 = rng.gen_range(-50i64..50);
    let p2 = rng.gen_range(-50i64..50);
    let mem: Vec<i64> = (0..8).map(|_| rng.gen_range(-9i64..9)).collect();
    (p0, p1, p2, mem)
}

#[test]
fn static_and_dynamic_builds_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xE0_0001);
    for case in 0..48 {
        let src = program(&mut rng);
        let (p0, p1, p2, mem) = case_inputs(&mut rng);
        let compiled = match Compiler::new().compile(&src) {
            Ok(c) => c,
            Err(e) => panic!("case {case}: generated program failed to compile: {e}\n{src}"),
        };
        let stat = run_build(&compiled, false, &[p0, p1, p2], &mem);
        let dynm = run_build(&compiled, true, &[p0, p1, p2], &mem);
        match (stat, dynm) {
            (Ok(s), Ok(d)) => assert_eq!(s, d, "case {case}: program:\n{src}"),
            (Err(se), Err(de)) => {
                // Both fault (e.g. division by zero): the *kind* must
                // match, modulo faults surfacing at specialization time as
                // dispatch errors.
                let same = std::mem::discriminant(&se) == std::mem::discriminant(&de)
                    || matches!(de, dyc::VmError::Dispatch(_));
                assert!(
                    same,
                    "case {case}: static err {se:?} vs dynamic err {de:?}\n{src}"
                );
            }
            (s, d) => panic!("case {case}: one build faulted: {s:?} vs {d:?}\n{src}"),
        }
    }
}

#[test]
fn every_ablation_preserves_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0xE0_0002);
    for case in 0..24 {
        let src = program(&mut rng);
        let (p0, p1, _, mem) = case_inputs(&mut rng);
        let reference = {
            let compiled = Compiler::new().compile(&src).unwrap();
            run_build(&compiled, false, &[p0, p1, 3], &mem).ok()
        };
        for feature in OptConfig::feature_names() {
            let cfg = OptConfig::all().without(feature).unwrap();
            let compiled = Compiler::with_config(cfg).compile(&src).unwrap();
            let got = run_build(&compiled, true, &[p0, p1, 3], &mem).ok();
            assert_eq!(
                reference, got,
                "case {case}: ablation '{feature}' changed behavior of:\n{src}"
            );
        }
    }
}
