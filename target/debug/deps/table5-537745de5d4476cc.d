/root/repo/target/debug/deps/table5-537745de5d4476cc.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-537745de5d4476cc: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
