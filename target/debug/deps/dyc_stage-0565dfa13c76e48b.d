/root/repo/target/debug/deps/dyc_stage-0565dfa13c76e48b.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_stage-0565dfa13c76e48b.rmeta: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs Cargo.toml

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
