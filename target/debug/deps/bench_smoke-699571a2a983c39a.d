/root/repo/target/debug/deps/bench_smoke-699571a2a983c39a.d: crates/bench/src/bin/bench_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smoke-699571a2a983c39a.rmeta: crates/bench/src/bin/bench_smoke.rs Cargo.toml

crates/bench/src/bin/bench_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
