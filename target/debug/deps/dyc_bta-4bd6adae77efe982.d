/root/repo/target/debug/deps/dyc_bta-4bd6adae77efe982.d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_bta-4bd6adae77efe982.rmeta: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs Cargo.toml

crates/bta/src/lib.rs:
crates/bta/src/analysis.rs:
crates/bta/src/config.rs:
crates/bta/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
