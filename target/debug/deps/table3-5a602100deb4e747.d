/root/repo/target/debug/deps/table3-5a602100deb4e747.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-5a602100deb4e747: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
