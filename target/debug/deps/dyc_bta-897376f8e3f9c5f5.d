/root/repo/target/debug/deps/dyc_bta-897376f8e3f9c5f5.d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/debug/deps/dyc_bta-897376f8e3f9c5f5: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

crates/bta/src/lib.rs:
crates/bta/src/analysis.rs:
crates/bta/src/config.rs:
crates/bta/src/transfer.rs:
