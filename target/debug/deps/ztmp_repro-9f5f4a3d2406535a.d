/root/repo/target/debug/deps/ztmp_repro-9f5f4a3d2406535a.d: tests/ztmp_repro.rs

/root/repo/target/debug/deps/ztmp_repro-9f5f4a3d2406535a: tests/ztmp_repro.rs

tests/ztmp_repro.rs:
