/root/repo/target/debug/deps/dispatch_cost-c29b528ef0a316bb.d: crates/bench/src/bin/dispatch_cost.rs

/root/repo/target/debug/deps/dispatch_cost-c29b528ef0a316bb: crates/bench/src/bin/dispatch_cost.rs

crates/bench/src/bin/dispatch_cost.rs:
