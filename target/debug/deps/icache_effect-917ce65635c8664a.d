/root/repo/target/debug/deps/icache_effect-917ce65635c8664a.d: crates/bench/src/bin/icache_effect.rs Cargo.toml

/root/repo/target/debug/deps/libicache_effect-917ce65635c8664a.rmeta: crates/bench/src/bin/icache_effect.rs Cargo.toml

crates/bench/src/bin/icache_effect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
