/root/repo/target/debug/deps/dyc_lang-9246439821a97657.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdyc_lang-9246439821a97657.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdyc_lang-9246439821a97657.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/eval.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/token.rs:
