/root/repo/target/debug/deps/dbg3-c028924300671eb3.d: crates/bench/src/bin/dbg3.rs

/root/repo/target/debug/deps/dbg3-c028924300671eb3: crates/bench/src/bin/dbg3.rs

crates/bench/src/bin/dbg3.rs:
