/root/repo/target/debug/deps/table3-4a0390e92b1ce40e.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-4a0390e92b1ce40e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
