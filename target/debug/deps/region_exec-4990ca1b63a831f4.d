/root/repo/target/debug/deps/region_exec-4990ca1b63a831f4.d: crates/bench/benches/region_exec.rs Cargo.toml

/root/repo/target/debug/deps/libregion_exec-4990ca1b63a831f4.rmeta: crates/bench/benches/region_exec.rs Cargo.toml

crates/bench/benches/region_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
