/root/repo/target/debug/deps/staged_differential-6b9a60be8d209dc2.d: tests/staged_differential.rs Cargo.toml

/root/repo/target/debug/deps/libstaged_differential-6b9a60be8d209dc2.rmeta: tests/staged_differential.rs Cargo.toml

tests/staged_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
