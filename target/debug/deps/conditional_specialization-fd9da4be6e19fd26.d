/root/repo/target/debug/deps/conditional_specialization-fd9da4be6e19fd26.d: tests/conditional_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libconditional_specialization-fd9da4be6e19fd26.rmeta: tests/conditional_specialization.rs Cargo.toml

tests/conditional_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
