/root/repo/target/debug/deps/dyc_stage-965040ac8bc8917a.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/debug/deps/libdyc_stage-965040ac8bc8917a.rlib: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/debug/deps/libdyc_stage-965040ac8bc8917a.rmeta: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
