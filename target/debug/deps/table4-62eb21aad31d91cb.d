/root/repo/target/debug/deps/table4-62eb21aad31d91cb.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-62eb21aad31d91cb: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
