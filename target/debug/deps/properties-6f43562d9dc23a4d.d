/root/repo/target/debug/deps/properties-6f43562d9dc23a4d.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6f43562d9dc23a4d.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
