/root/repo/target/debug/deps/dyc_workloads-b33f38fb93ca9292.d: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

/root/repo/target/debug/deps/libdyc_workloads-b33f38fb93ca9292.rlib: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

/root/repo/target/debug/deps/libdyc_workloads-b33f38fb93ca9292.rmeta: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/binary.rs:
crates/workloads/src/chebyshev.rs:
crates/workloads/src/dinero.rs:
crates/workloads/src/dotproduct.rs:
crates/workloads/src/m88ksim.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/mipsi.rs:
crates/workloads/src/pnmconvol.rs:
crates/workloads/src/query.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/romberg.rs:
crates/workloads/src/unrle.rs:
crates/workloads/src/viewperf.rs:
