/root/repo/target/debug/deps/icache_effect-a9402c73d304f8d1.d: crates/bench/src/bin/icache_effect.rs Cargo.toml

/root/repo/target/debug/deps/libicache_effect-a9402c73d304f8d1.rmeta: crates/bench/src/bin/icache_effect.rs Cargo.toml

crates/bench/src/bin/icache_effect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
