/root/repo/target/debug/deps/table5-73ae2669f03824f7.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-73ae2669f03824f7.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
