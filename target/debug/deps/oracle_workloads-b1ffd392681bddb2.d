/root/repo/target/debug/deps/oracle_workloads-b1ffd392681bddb2.d: tests/oracle_workloads.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_workloads-b1ffd392681bddb2.rmeta: tests/oracle_workloads.rs Cargo.toml

tests/oracle_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
