/root/repo/target/debug/deps/edge_cases-1e18871e23e5ee1f.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-1e18871e23e5ee1f: tests/edge_cases.rs

tests/edge_cases.rs:
