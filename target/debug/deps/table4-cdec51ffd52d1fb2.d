/root/repo/target/debug/deps/table4-cdec51ffd52d1fb2.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-cdec51ffd52d1fb2.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
