/root/repo/target/debug/deps/dyc_vm-bf3ccf4d97026d38.d: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_vm-bf3ccf4d97026d38.rmeta: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/cost.rs:
crates/vm/src/host.rs:
crates/vm/src/icache.rs:
crates/vm/src/interp.rs:
crates/vm/src/isa.rs:
crates/vm/src/mem.rs:
crates/vm/src/module.rs:
crates/vm/src/pretty.rs:
crates/vm/src/stats.rs:
crates/vm/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
