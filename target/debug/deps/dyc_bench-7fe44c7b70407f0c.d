/root/repo/target/debug/deps/dyc_bench-7fe44c7b70407f0c.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_bench-7fe44c7b70407f0c.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
