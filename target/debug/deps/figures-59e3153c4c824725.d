/root/repo/target/debug/deps/figures-59e3153c4c824725.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-59e3153c4c824725.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
