/root/repo/target/debug/deps/dyc_suite-cec608fb828a951d.d: src/lib.rs

/root/repo/target/debug/deps/dyc_suite-cec608fb828a951d: src/lib.rs

src/lib.rs:
