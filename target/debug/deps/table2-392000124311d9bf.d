/root/repo/target/debug/deps/table2-392000124311d9bf.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-392000124311d9bf: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
