/root/repo/target/debug/deps/dispatch_cost-2687651d23b34f1c.d: crates/bench/src/bin/dispatch_cost.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch_cost-2687651d23b34f1c.rmeta: crates/bench/src/bin/dispatch_cost.rs Cargo.toml

crates/bench/src/bin/dispatch_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
