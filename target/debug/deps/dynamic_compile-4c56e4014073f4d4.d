/root/repo/target/debug/deps/dynamic_compile-4c56e4014073f4d4.d: crates/bench/benches/dynamic_compile.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_compile-4c56e4014073f4d4.rmeta: crates/bench/benches/dynamic_compile.rs Cargo.toml

crates/bench/benches/dynamic_compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
