/root/repo/target/debug/deps/dispatch-5921f2ec364e2165.d: crates/bench/benches/dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch-5921f2ec364e2165.rmeta: crates/bench/benches/dispatch.rs Cargo.toml

crates/bench/benches/dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
