/root/repo/target/debug/deps/density_sweep-a024c53d6c68e294.d: crates/bench/src/bin/density_sweep.rs

/root/repo/target/debug/deps/density_sweep-a024c53d6c68e294: crates/bench/src/bin/density_sweep.rs

crates/bench/src/bin/density_sweep.rs:
