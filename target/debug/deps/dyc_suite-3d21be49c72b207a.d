/root/repo/target/debug/deps/dyc_suite-3d21be49c72b207a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_suite-3d21be49c72b207a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
