/root/repo/target/debug/deps/figures-97298f22dfa84b3c.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-97298f22dfa84b3c.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
