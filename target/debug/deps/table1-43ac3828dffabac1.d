/root/repo/target/debug/deps/table1-43ac3828dffabac1.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-43ac3828dffabac1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
