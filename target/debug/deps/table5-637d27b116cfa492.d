/root/repo/target/debug/deps/table5-637d27b116cfa492.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-637d27b116cfa492: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
