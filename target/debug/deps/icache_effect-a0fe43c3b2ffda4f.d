/root/repo/target/debug/deps/icache_effect-a0fe43c3b2ffda4f.d: crates/bench/src/bin/icache_effect.rs

/root/repo/target/debug/deps/icache_effect-a0fe43c3b2ffda4f: crates/bench/src/bin/icache_effect.rs

crates/bench/src/bin/icache_effect.rs:
