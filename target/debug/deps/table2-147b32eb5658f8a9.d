/root/repo/target/debug/deps/table2-147b32eb5658f8a9.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-147b32eb5658f8a9.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
