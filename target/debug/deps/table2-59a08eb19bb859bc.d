/root/repo/target/debug/deps/table2-59a08eb19bb859bc.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-59a08eb19bb859bc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
