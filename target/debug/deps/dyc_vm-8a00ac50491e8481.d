/root/repo/target/debug/deps/dyc_vm-8a00ac50491e8481.d: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libdyc_vm-8a00ac50491e8481.rlib: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libdyc_vm-8a00ac50491e8481.rmeta: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/cost.rs:
crates/vm/src/host.rs:
crates/vm/src/icache.rs:
crates/vm/src/interp.rs:
crates/vm/src/isa.rs:
crates/vm/src/mem.rs:
crates/vm/src/module.rs:
crates/vm/src/pretty.rs:
crates/vm/src/stats.rs:
crates/vm/src/value.rs:
