/root/repo/target/debug/deps/properties-c9d629f337ca5915.d: tests/properties.rs

/root/repo/target/debug/deps/properties-c9d629f337ca5915: tests/properties.rs

tests/properties.rs:
