/root/repo/target/debug/deps/table1-70f88e100ed5dcd8.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-70f88e100ed5dcd8.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
