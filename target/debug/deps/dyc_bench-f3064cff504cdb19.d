/root/repo/target/debug/deps/dyc_bench-f3064cff504cdb19.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/dyc_bench-f3064cff504cdb19: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
