/root/repo/target/debug/deps/table4-fd8a6d816a6e216b.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-fd8a6d816a6e216b.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
