/root/repo/target/debug/deps/dyc_bench-0ccea7b17fdfe48a.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libdyc_bench-0ccea7b17fdfe48a.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libdyc_bench-0ccea7b17fdfe48a.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
