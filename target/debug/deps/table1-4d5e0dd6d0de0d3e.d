/root/repo/target/debug/deps/table1-4d5e0dd6d0de0d3e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4d5e0dd6d0de0d3e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
