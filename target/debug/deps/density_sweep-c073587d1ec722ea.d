/root/repo/target/debug/deps/density_sweep-c073587d1ec722ea.d: crates/bench/src/bin/density_sweep.rs

/root/repo/target/debug/deps/density_sweep-c073587d1ec722ea: crates/bench/src/bin/density_sweep.rs

crates/bench/src/bin/density_sweep.rs:
