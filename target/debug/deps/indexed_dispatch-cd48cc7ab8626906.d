/root/repo/target/debug/deps/indexed_dispatch-cd48cc7ab8626906.d: crates/bench/src/bin/indexed_dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libindexed_dispatch-cd48cc7ab8626906.rmeta: crates/bench/src/bin/indexed_dispatch.rs Cargo.toml

crates/bench/src/bin/indexed_dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
