/root/repo/target/debug/deps/figures-2ccc666f7fdd8b2f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2ccc666f7fdd8b2f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
