/root/repo/target/debug/deps/dyc_suite-f219ab024c0d8705.d: src/lib.rs

/root/repo/target/debug/deps/libdyc_suite-f219ab024c0d8705.rlib: src/lib.rs

/root/repo/target/debug/deps/libdyc_suite-f219ab024c0d8705.rmeta: src/lib.rs

src/lib.rs:
