/root/repo/target/debug/deps/template_fusion-a6e6a14efbd9a1ec.d: tests/template_fusion.rs

/root/repo/target/debug/deps/template_fusion-a6e6a14efbd9a1ec: tests/template_fusion.rs

tests/template_fusion.rs:
