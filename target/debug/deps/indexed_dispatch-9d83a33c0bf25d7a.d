/root/repo/target/debug/deps/indexed_dispatch-9d83a33c0bf25d7a.d: crates/bench/src/bin/indexed_dispatch.rs

/root/repo/target/debug/deps/indexed_dispatch-9d83a33c0bf25d7a: crates/bench/src/bin/indexed_dispatch.rs

crates/bench/src/bin/indexed_dispatch.rs:
