/root/repo/target/debug/deps/ztmp_dump2-c9f3b5783f9f9616.d: tests/ztmp_dump2.rs

/root/repo/target/debug/deps/ztmp_dump2-c9f3b5783f9f9616: tests/ztmp_dump2.rs

tests/ztmp_dump2.rs:
