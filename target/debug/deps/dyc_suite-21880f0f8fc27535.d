/root/repo/target/debug/deps/dyc_suite-21880f0f8fc27535.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_suite-21880f0f8fc27535.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
