/root/repo/target/debug/deps/equivalence-c35793f72a49dea0.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-c35793f72a49dea0.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
