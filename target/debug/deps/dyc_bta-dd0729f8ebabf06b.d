/root/repo/target/debug/deps/dyc_bta-dd0729f8ebabf06b.d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/debug/deps/libdyc_bta-dd0729f8ebabf06b.rlib: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/debug/deps/libdyc_bta-dd0729f8ebabf06b.rmeta: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

crates/bta/src/lib.rs:
crates/bta/src/analysis.rs:
crates/bta/src/config.rs:
crates/bta/src/transfer.rs:
