/root/repo/target/debug/deps/dyc-ecdda0c12e17d80f.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/debug/deps/dyc-ecdda0c12e17d80f: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/program.rs:
crates/core/src/session.rs:
