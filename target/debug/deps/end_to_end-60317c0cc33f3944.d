/root/repo/target/debug/deps/end_to_end-60317c0cc33f3944.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-60317c0cc33f3944: tests/end_to_end.rs

tests/end_to_end.rs:
