/root/repo/target/debug/deps/conditional_specialization-a4982ede1ebec6ca.d: tests/conditional_specialization.rs

/root/repo/target/debug/deps/conditional_specialization-a4982ede1ebec6ca: tests/conditional_specialization.rs

tests/conditional_specialization.rs:
