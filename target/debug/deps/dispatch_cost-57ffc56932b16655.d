/root/repo/target/debug/deps/dispatch_cost-57ffc56932b16655.d: crates/bench/src/bin/dispatch_cost.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch_cost-57ffc56932b16655.rmeta: crates/bench/src/bin/dispatch_cost.rs Cargo.toml

crates/bench/src/bin/dispatch_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
