/root/repo/target/debug/deps/optimizations-93bfc15eaf5b0da6.d: crates/core/tests/optimizations.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizations-93bfc15eaf5b0da6.rmeta: crates/core/tests/optimizations.rs Cargo.toml

crates/core/tests/optimizations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
