/root/repo/target/debug/deps/dyc_bench-f17b37e0dd619901.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_bench-f17b37e0dd619901.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
