/root/repo/target/debug/deps/icache_effect-7b05ca2175f506a1.d: crates/bench/src/bin/icache_effect.rs

/root/repo/target/debug/deps/icache_effect-7b05ca2175f506a1: crates/bench/src/bin/icache_effect.rs

crates/bench/src/bin/icache_effect.rs:
