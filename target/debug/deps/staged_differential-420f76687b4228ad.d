/root/repo/target/debug/deps/staged_differential-420f76687b4228ad.d: tests/staged_differential.rs

/root/repo/target/debug/deps/staged_differential-420f76687b4228ad: tests/staged_differential.rs

tests/staged_differential.rs:
