/root/repo/target/debug/deps/bench_smoke-ed51959e426f1681.d: crates/bench/src/bin/bench_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smoke-ed51959e426f1681.rmeta: crates/bench/src/bin/bench_smoke.rs Cargo.toml

crates/bench/src/bin/bench_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
