/root/repo/target/debug/deps/dyc_lang-e272afea8bac8f35.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/dyc_lang-e272afea8bac8f35: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/eval.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/token.rs:
