/root/repo/target/debug/deps/indexed_dispatch-55f24327878c12b2.d: crates/bench/src/bin/indexed_dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libindexed_dispatch-55f24327878c12b2.rmeta: crates/bench/src/bin/indexed_dispatch.rs Cargo.toml

crates/bench/src/bin/indexed_dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
