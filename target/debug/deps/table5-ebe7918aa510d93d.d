/root/repo/target/debug/deps/table5-ebe7918aa510d93d.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-ebe7918aa510d93d.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
