/root/repo/target/debug/deps/dyc-35f7dd5b68d46330.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libdyc-35f7dd5b68d46330.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libdyc-35f7dd5b68d46330.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/program.rs:
crates/core/src/session.rs:
