/root/repo/target/debug/deps/dyc_stage-b721ca820bea99ca.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/debug/deps/dyc_stage-b721ca820bea99ca: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
