/root/repo/target/debug/deps/dyc_lang-d9969d71b6dfbf84.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_lang-d9969d71b6dfbf84.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/eval.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
