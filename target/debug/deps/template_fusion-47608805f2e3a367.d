/root/repo/target/debug/deps/template_fusion-47608805f2e3a367.d: tests/template_fusion.rs Cargo.toml

/root/repo/target/debug/deps/libtemplate_fusion-47608805f2e3a367.rmeta: tests/template_fusion.rs Cargo.toml

tests/template_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
