/root/repo/target/debug/deps/det_check-589fe725c5f11d6d.d: crates/bench/src/bin/det_check.rs

/root/repo/target/debug/deps/det_check-589fe725c5f11d6d: crates/bench/src/bin/det_check.rs

crates/bench/src/bin/det_check.rs:
