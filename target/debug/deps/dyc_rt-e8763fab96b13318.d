/root/repo/target/debug/deps/dyc_rt-e8763fab96b13318.d: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/debug/deps/libdyc_rt-e8763fab96b13318.rlib: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/debug/deps/libdyc_rt-e8763fab96b13318.rmeta: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

crates/rt/src/lib.rs:
crates/rt/src/cache.rs:
crates/rt/src/costs.rs:
crates/rt/src/emitter.rs:
crates/rt/src/ge_exec.rs:
crates/rt/src/runtime.rs:
crates/rt/src/specializer.rs:
crates/rt/src/stats.rs:
