/root/repo/target/debug/deps/dispatch_cost-0b816e5619121dd9.d: crates/bench/src/bin/dispatch_cost.rs

/root/repo/target/debug/deps/dispatch_cost-0b816e5619121dd9: crates/bench/src/bin/dispatch_cost.rs

crates/bench/src/bin/dispatch_cost.rs:
