/root/repo/target/debug/deps/density_sweep-a1e525f47cd1f7cc.d: crates/bench/src/bin/density_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdensity_sweep-a1e525f47cd1f7cc.rmeta: crates/bench/src/bin/density_sweep.rs Cargo.toml

crates/bench/src/bin/density_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
