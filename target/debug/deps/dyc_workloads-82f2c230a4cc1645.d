/root/repo/target/debug/deps/dyc_workloads-82f2c230a4cc1645.d: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

/root/repo/target/debug/deps/dyc_workloads-82f2c230a4cc1645: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/binary.rs:
crates/workloads/src/chebyshev.rs:
crates/workloads/src/dinero.rs:
crates/workloads/src/dotproduct.rs:
crates/workloads/src/m88ksim.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/mipsi.rs:
crates/workloads/src/pnmconvol.rs:
crates/workloads/src/query.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/romberg.rs:
crates/workloads/src/unrle.rs:
crates/workloads/src/viewperf.rs:
