/root/repo/target/debug/deps/dyc_rt-b78f46129cc4a387.d: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/debug/deps/dyc_rt-b78f46129cc4a387: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

crates/rt/src/lib.rs:
crates/rt/src/cache.rs:
crates/rt/src/costs.rs:
crates/rt/src/emitter.rs:
crates/rt/src/ge_exec.rs:
crates/rt/src/runtime.rs:
crates/rt/src/specializer.rs:
crates/rt/src/stats.rs:
