/root/repo/target/debug/deps/table3-72cfc183423c5ff8.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-72cfc183423c5ff8.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
