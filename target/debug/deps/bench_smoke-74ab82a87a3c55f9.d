/root/repo/target/debug/deps/bench_smoke-74ab82a87a3c55f9.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/debug/deps/bench_smoke-74ab82a87a3c55f9: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
