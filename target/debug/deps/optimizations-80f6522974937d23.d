/root/repo/target/debug/deps/optimizations-80f6522974937d23.d: crates/core/tests/optimizations.rs

/root/repo/target/debug/deps/optimizations-80f6522974937d23: crates/core/tests/optimizations.rs

crates/core/tests/optimizations.rs:
