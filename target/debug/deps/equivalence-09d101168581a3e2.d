/root/repo/target/debug/deps/equivalence-09d101168581a3e2.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-09d101168581a3e2: tests/equivalence.rs

tests/equivalence.rs:
