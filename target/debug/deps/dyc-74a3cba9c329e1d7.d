/root/repo/target/debug/deps/dyc-74a3cba9c329e1d7.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libdyc-74a3cba9c329e1d7.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/program.rs:
crates/core/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
