/root/repo/target/debug/deps/indexed_dispatch-48394c4f93ef668b.d: crates/bench/src/bin/indexed_dispatch.rs

/root/repo/target/debug/deps/indexed_dispatch-48394c4f93ef668b: crates/bench/src/bin/indexed_dispatch.rs

crates/bench/src/bin/indexed_dispatch.rs:
