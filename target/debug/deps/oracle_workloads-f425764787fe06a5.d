/root/repo/target/debug/deps/oracle_workloads-f425764787fe06a5.d: tests/oracle_workloads.rs

/root/repo/target/debug/deps/oracle_workloads-f425764787fe06a5: tests/oracle_workloads.rs

tests/oracle_workloads.rs:
