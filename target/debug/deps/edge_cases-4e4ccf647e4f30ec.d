/root/repo/target/debug/deps/edge_cases-4e4ccf647e4f30ec.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-4e4ccf647e4f30ec.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
