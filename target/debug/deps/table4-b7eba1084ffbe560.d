/root/repo/target/debug/deps/table4-b7eba1084ffbe560.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-b7eba1084ffbe560: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
