/root/repo/target/debug/deps/density_sweep-5949224f66eade81.d: crates/bench/src/bin/density_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdensity_sweep-5949224f66eade81.rmeta: crates/bench/src/bin/density_sweep.rs Cargo.toml

crates/bench/src/bin/density_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
