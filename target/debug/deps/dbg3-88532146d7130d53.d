/root/repo/target/debug/deps/dbg3-88532146d7130d53.d: crates/bench/src/bin/dbg3.rs

/root/repo/target/debug/deps/dbg3-88532146d7130d53: crates/bench/src/bin/dbg3.rs

crates/bench/src/bin/dbg3.rs:
