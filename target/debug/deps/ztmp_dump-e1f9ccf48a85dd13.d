/root/repo/target/debug/deps/ztmp_dump-e1f9ccf48a85dd13.d: tests/ztmp_dump.rs

/root/repo/target/debug/deps/ztmp_dump-e1f9ccf48a85dd13: tests/ztmp_dump.rs

tests/ztmp_dump.rs:
