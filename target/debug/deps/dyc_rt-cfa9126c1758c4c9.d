/root/repo/target/debug/deps/dyc_rt-cfa9126c1758c4c9.d: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_rt-cfa9126c1758c4c9.rmeta: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/cache.rs:
crates/rt/src/costs.rs:
crates/rt/src/emitter.rs:
crates/rt/src/ge_exec.rs:
crates/rt/src/runtime.rs:
crates/rt/src/specializer.rs:
crates/rt/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
