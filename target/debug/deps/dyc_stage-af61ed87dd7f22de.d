/root/repo/target/debug/deps/dyc_stage-af61ed87dd7f22de.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libdyc_stage-af61ed87dd7f22de.rmeta: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs Cargo.toml

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
