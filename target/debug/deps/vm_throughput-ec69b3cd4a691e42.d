/root/repo/target/debug/deps/vm_throughput-ec69b3cd4a691e42.d: crates/bench/benches/vm_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libvm_throughput-ec69b3cd4a691e42.rmeta: crates/bench/benches/vm_throughput.rs Cargo.toml

crates/bench/benches/vm_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
