/root/repo/target/debug/deps/figures-a5a5d45911762c0f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-a5a5d45911762c0f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
