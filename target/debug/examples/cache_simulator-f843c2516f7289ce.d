/root/repo/target/debug/examples/cache_simulator-f843c2516f7289ce.d: examples/cache_simulator.rs Cargo.toml

/root/repo/target/debug/examples/libcache_simulator-f843c2516f7289ce.rmeta: examples/cache_simulator.rs Cargo.toml

examples/cache_simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
