/root/repo/target/debug/examples/convolution-ee20841afac07acd.d: examples/convolution.rs

/root/repo/target/debug/examples/convolution-ee20841afac07acd: examples/convolution.rs

examples/convolution.rs:
