/root/repo/target/debug/examples/quickstart-50a12d066c7024df.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-50a12d066c7024df.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
