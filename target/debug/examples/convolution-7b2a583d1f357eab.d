/root/repo/target/debug/examples/convolution-7b2a583d1f357eab.d: examples/convolution.rs Cargo.toml

/root/repo/target/debug/examples/libconvolution-7b2a583d1f357eab.rmeta: examples/convolution.rs Cargo.toml

examples/convolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
