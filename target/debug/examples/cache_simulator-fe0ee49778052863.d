/root/repo/target/debug/examples/cache_simulator-fe0ee49778052863.d: examples/cache_simulator.rs

/root/repo/target/debug/examples/cache_simulator-fe0ee49778052863: examples/cache_simulator.rs

examples/cache_simulator.rs:
