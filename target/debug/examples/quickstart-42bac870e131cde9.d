/root/repo/target/debug/examples/quickstart-42bac870e131cde9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-42bac870e131cde9: examples/quickstart.rs

examples/quickstart.rs:
