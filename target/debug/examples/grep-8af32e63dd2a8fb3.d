/root/repo/target/debug/examples/grep-8af32e63dd2a8fb3.d: examples/grep.rs Cargo.toml

/root/repo/target/debug/examples/libgrep-8af32e63dd2a8fb3.rmeta: examples/grep.rs Cargo.toml

examples/grep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
