/root/repo/target/debug/examples/interpreter_specialization-c902c4207a27698c.d: examples/interpreter_specialization.rs Cargo.toml

/root/repo/target/debug/examples/libinterpreter_specialization-c902c4207a27698c.rmeta: examples/interpreter_specialization.rs Cargo.toml

examples/interpreter_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
