/root/repo/target/debug/examples/grep-9417db7cfe2b54b8.d: examples/grep.rs

/root/repo/target/debug/examples/grep-9417db7cfe2b54b8: examples/grep.rs

examples/grep.rs:
