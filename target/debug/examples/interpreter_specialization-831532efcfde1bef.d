/root/repo/target/debug/examples/interpreter_specialization-831532efcfde1bef.d: examples/interpreter_specialization.rs

/root/repo/target/debug/examples/interpreter_specialization-831532efcfde1bef: examples/interpreter_specialization.rs

examples/interpreter_specialization.rs:
