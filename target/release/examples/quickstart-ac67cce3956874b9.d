/root/repo/target/release/examples/quickstart-ac67cce3956874b9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ac67cce3956874b9: examples/quickstart.rs

examples/quickstart.rs:
