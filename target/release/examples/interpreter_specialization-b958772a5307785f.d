/root/repo/target/release/examples/interpreter_specialization-b958772a5307785f.d: examples/interpreter_specialization.rs

/root/repo/target/release/examples/interpreter_specialization-b958772a5307785f: examples/interpreter_specialization.rs

examples/interpreter_specialization.rs:
