/root/repo/target/release/examples/grep-52967570b331bfd1.d: examples/grep.rs

/root/repo/target/release/examples/grep-52967570b331bfd1: examples/grep.rs

examples/grep.rs:
