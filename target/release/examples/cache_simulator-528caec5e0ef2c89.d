/root/repo/target/release/examples/cache_simulator-528caec5e0ef2c89.d: examples/cache_simulator.rs

/root/repo/target/release/examples/cache_simulator-528caec5e0ef2c89: examples/cache_simulator.rs

examples/cache_simulator.rs:
