/root/repo/target/release/examples/convolution-0710a91fa7295774.d: examples/convolution.rs

/root/repo/target/release/examples/convolution-0710a91fa7295774: examples/convolution.rs

examples/convolution.rs:
