/root/repo/target/release/deps/table3-8df37366386255e3.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-8df37366386255e3: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
