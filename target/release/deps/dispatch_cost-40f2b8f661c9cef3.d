/root/repo/target/release/deps/dispatch_cost-40f2b8f661c9cef3.d: crates/bench/src/bin/dispatch_cost.rs

/root/repo/target/release/deps/dispatch_cost-40f2b8f661c9cef3: crates/bench/src/bin/dispatch_cost.rs

crates/bench/src/bin/dispatch_cost.rs:
