/root/repo/target/release/deps/dyc_rt-d0249cc8892e873f.d: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/release/deps/dyc_rt-d0249cc8892e873f: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

crates/rt/src/lib.rs:
crates/rt/src/cache.rs:
crates/rt/src/costs.rs:
crates/rt/src/emitter.rs:
crates/rt/src/ge_exec.rs:
crates/rt/src/runtime.rs:
crates/rt/src/specializer.rs:
crates/rt/src/stats.rs:
