/root/repo/target/release/deps/dyc_bta-963ef3f9fba83b3d.d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/release/deps/dyc_bta-963ef3f9fba83b3d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

crates/bta/src/lib.rs:
crates/bta/src/analysis.rs:
crates/bta/src/config.rs:
crates/bta/src/transfer.rs:
