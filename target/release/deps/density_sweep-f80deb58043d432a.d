/root/repo/target/release/deps/density_sweep-f80deb58043d432a.d: crates/bench/src/bin/density_sweep.rs

/root/repo/target/release/deps/density_sweep-f80deb58043d432a: crates/bench/src/bin/density_sweep.rs

crates/bench/src/bin/density_sweep.rs:
