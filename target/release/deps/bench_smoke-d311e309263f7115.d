/root/repo/target/release/deps/bench_smoke-d311e309263f7115.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-d311e309263f7115: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
