/root/repo/target/release/deps/staged_differential-10dbf0c09a3be286.d: tests/staged_differential.rs

/root/repo/target/release/deps/staged_differential-10dbf0c09a3be286: tests/staged_differential.rs

tests/staged_differential.rs:
