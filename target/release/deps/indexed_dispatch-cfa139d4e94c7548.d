/root/repo/target/release/deps/indexed_dispatch-cfa139d4e94c7548.d: crates/bench/src/bin/indexed_dispatch.rs

/root/repo/target/release/deps/indexed_dispatch-cfa139d4e94c7548: crates/bench/src/bin/indexed_dispatch.rs

crates/bench/src/bin/indexed_dispatch.rs:
