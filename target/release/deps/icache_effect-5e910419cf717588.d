/root/repo/target/release/deps/icache_effect-5e910419cf717588.d: crates/bench/src/bin/icache_effect.rs

/root/repo/target/release/deps/icache_effect-5e910419cf717588: crates/bench/src/bin/icache_effect.rs

crates/bench/src/bin/icache_effect.rs:
