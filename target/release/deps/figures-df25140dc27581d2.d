/root/repo/target/release/deps/figures-df25140dc27581d2.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-df25140dc27581d2: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
