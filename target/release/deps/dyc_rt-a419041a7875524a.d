/root/repo/target/release/deps/dyc_rt-a419041a7875524a.d: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/release/deps/libdyc_rt-a419041a7875524a.rlib: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

/root/repo/target/release/deps/libdyc_rt-a419041a7875524a.rmeta: crates/rt/src/lib.rs crates/rt/src/cache.rs crates/rt/src/costs.rs crates/rt/src/emitter.rs crates/rt/src/ge_exec.rs crates/rt/src/runtime.rs crates/rt/src/specializer.rs crates/rt/src/stats.rs

crates/rt/src/lib.rs:
crates/rt/src/cache.rs:
crates/rt/src/costs.rs:
crates/rt/src/emitter.rs:
crates/rt/src/ge_exec.rs:
crates/rt/src/runtime.rs:
crates/rt/src/specializer.rs:
crates/rt/src/stats.rs:
