/root/repo/target/release/deps/template_fusion-e2e68bc857450aed.d: tests/template_fusion.rs

/root/repo/target/release/deps/template_fusion-e2e68bc857450aed: tests/template_fusion.rs

tests/template_fusion.rs:
