/root/repo/target/release/deps/table5-d90fcb3a60c709c3.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d90fcb3a60c709c3: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
