/root/repo/target/release/deps/table3-6550dd1dd0b2484a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-6550dd1dd0b2484a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
