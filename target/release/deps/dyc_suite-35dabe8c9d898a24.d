/root/repo/target/release/deps/dyc_suite-35dabe8c9d898a24.d: src/lib.rs

/root/repo/target/release/deps/dyc_suite-35dabe8c9d898a24: src/lib.rs

src/lib.rs:
