/root/repo/target/release/deps/table1-31ddcd23d53c6a1b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-31ddcd23d53c6a1b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
