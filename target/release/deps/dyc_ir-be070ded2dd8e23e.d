/root/repo/target/release/deps/dyc_ir-be070ded2dd8e23e.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/codegen.rs crates/ir/src/func.rs crates/ir/src/ids.rs crates/ir/src/inst.rs crates/ir/src/lower.rs crates/ir/src/opt/mod.rs crates/ir/src/opt/constfold.rs crates/ir/src/opt/cse.rs crates/ir/src/opt/dce.rs crates/ir/src/opt/licm.rs crates/ir/src/opt/simplify_cfg.rs crates/ir/src/pretty.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/dyc_ir-be070ded2dd8e23e: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/codegen.rs crates/ir/src/func.rs crates/ir/src/ids.rs crates/ir/src/inst.rs crates/ir/src/lower.rs crates/ir/src/opt/mod.rs crates/ir/src/opt/constfold.rs crates/ir/src/opt/cse.rs crates/ir/src/opt/dce.rs crates/ir/src/opt/licm.rs crates/ir/src/opt/simplify_cfg.rs crates/ir/src/pretty.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/codegen.rs:
crates/ir/src/func.rs:
crates/ir/src/ids.rs:
crates/ir/src/inst.rs:
crates/ir/src/lower.rs:
crates/ir/src/opt/mod.rs:
crates/ir/src/opt/constfold.rs:
crates/ir/src/opt/cse.rs:
crates/ir/src/opt/dce.rs:
crates/ir/src/opt/licm.rs:
crates/ir/src/opt/simplify_cfg.rs:
crates/ir/src/pretty.rs:
crates/ir/src/verify.rs:
