/root/repo/target/release/deps/figures-1916286dc2db20b4.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-1916286dc2db20b4: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
