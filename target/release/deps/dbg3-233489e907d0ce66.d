/root/repo/target/release/deps/dbg3-233489e907d0ce66.d: crates/bench/src/bin/dbg3.rs

/root/repo/target/release/deps/dbg3-233489e907d0ce66: crates/bench/src/bin/dbg3.rs

crates/bench/src/bin/dbg3.rs:
