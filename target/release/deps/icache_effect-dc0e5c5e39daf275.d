/root/repo/target/release/deps/icache_effect-dc0e5c5e39daf275.d: crates/bench/src/bin/icache_effect.rs

/root/repo/target/release/deps/icache_effect-dc0e5c5e39daf275: crates/bench/src/bin/icache_effect.rs

crates/bench/src/bin/icache_effect.rs:
