/root/repo/target/release/deps/dyc_stage-ec2b80b928a79833.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/release/deps/libdyc_stage-ec2b80b928a79833.rlib: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/release/deps/libdyc_stage-ec2b80b928a79833.rmeta: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
