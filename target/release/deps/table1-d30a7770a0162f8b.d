/root/repo/target/release/deps/table1-d30a7770a0162f8b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d30a7770a0162f8b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
