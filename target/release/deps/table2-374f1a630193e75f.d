/root/repo/target/release/deps/table2-374f1a630193e75f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-374f1a630193e75f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
