/root/repo/target/release/deps/table2-1338d132be6dd5e5.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-1338d132be6dd5e5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
