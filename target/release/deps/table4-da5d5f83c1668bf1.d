/root/repo/target/release/deps/table4-da5d5f83c1668bf1.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-da5d5f83c1668bf1: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
