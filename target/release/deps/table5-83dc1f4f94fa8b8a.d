/root/repo/target/release/deps/table5-83dc1f4f94fa8b8a.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-83dc1f4f94fa8b8a: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
