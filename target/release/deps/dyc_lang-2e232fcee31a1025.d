/root/repo/target/release/deps/dyc_lang-2e232fcee31a1025.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/release/deps/libdyc_lang-2e232fcee31a1025.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/release/deps/libdyc_lang-2e232fcee31a1025.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/eval.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/token.rs:
