/root/repo/target/release/deps/conditional_specialization-677fc300916ecd96.d: tests/conditional_specialization.rs

/root/repo/target/release/deps/conditional_specialization-677fc300916ecd96: tests/conditional_specialization.rs

tests/conditional_specialization.rs:
