/root/repo/target/release/deps/dispatch_cost-e95f7bc743a35d9d.d: crates/bench/src/bin/dispatch_cost.rs

/root/repo/target/release/deps/dispatch_cost-e95f7bc743a35d9d: crates/bench/src/bin/dispatch_cost.rs

crates/bench/src/bin/dispatch_cost.rs:
