/root/repo/target/release/deps/properties-06cf49f64672d739.d: tests/properties.rs

/root/repo/target/release/deps/properties-06cf49f64672d739: tests/properties.rs

tests/properties.rs:
