/root/repo/target/release/deps/dyc_bench-3ddccc9af63b96ce.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libdyc_bench-3ddccc9af63b96ce.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libdyc_bench-3ddccc9af63b96ce.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
