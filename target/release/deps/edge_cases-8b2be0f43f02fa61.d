/root/repo/target/release/deps/edge_cases-8b2be0f43f02fa61.d: tests/edge_cases.rs

/root/repo/target/release/deps/edge_cases-8b2be0f43f02fa61: tests/edge_cases.rs

tests/edge_cases.rs:
