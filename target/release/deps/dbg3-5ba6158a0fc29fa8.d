/root/repo/target/release/deps/dbg3-5ba6158a0fc29fa8.d: crates/bench/src/bin/dbg3.rs

/root/repo/target/release/deps/dbg3-5ba6158a0fc29fa8: crates/bench/src/bin/dbg3.rs

crates/bench/src/bin/dbg3.rs:
