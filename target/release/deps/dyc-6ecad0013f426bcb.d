/root/repo/target/release/deps/dyc-6ecad0013f426bcb.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/release/deps/libdyc-6ecad0013f426bcb.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/release/deps/libdyc-6ecad0013f426bcb.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/program.rs:
crates/core/src/session.rs:
