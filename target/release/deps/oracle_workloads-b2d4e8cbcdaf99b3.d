/root/repo/target/release/deps/oracle_workloads-b2d4e8cbcdaf99b3.d: tests/oracle_workloads.rs

/root/repo/target/release/deps/oracle_workloads-b2d4e8cbcdaf99b3: tests/oracle_workloads.rs

tests/oracle_workloads.rs:
