/root/repo/target/release/deps/equivalence-833b9636e73f0373.d: tests/equivalence.rs

/root/repo/target/release/deps/equivalence-833b9636e73f0373: tests/equivalence.rs

tests/equivalence.rs:
