/root/repo/target/release/deps/dyc_workloads-af3df65ddb4d6c6e.d: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

/root/repo/target/release/deps/dyc_workloads-af3df65ddb4d6c6e: crates/workloads/src/lib.rs crates/workloads/src/binary.rs crates/workloads/src/chebyshev.rs crates/workloads/src/dinero.rs crates/workloads/src/dotproduct.rs crates/workloads/src/m88ksim.rs crates/workloads/src/measure.rs crates/workloads/src/mipsi.rs crates/workloads/src/pnmconvol.rs crates/workloads/src/query.rs crates/workloads/src/rng.rs crates/workloads/src/romberg.rs crates/workloads/src/unrle.rs crates/workloads/src/viewperf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/binary.rs:
crates/workloads/src/chebyshev.rs:
crates/workloads/src/dinero.rs:
crates/workloads/src/dotproduct.rs:
crates/workloads/src/m88ksim.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/mipsi.rs:
crates/workloads/src/pnmconvol.rs:
crates/workloads/src/query.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/romberg.rs:
crates/workloads/src/unrle.rs:
crates/workloads/src/viewperf.rs:
