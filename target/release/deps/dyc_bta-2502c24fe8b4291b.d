/root/repo/target/release/deps/dyc_bta-2502c24fe8b4291b.d: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/release/deps/libdyc_bta-2502c24fe8b4291b.rlib: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

/root/repo/target/release/deps/libdyc_bta-2502c24fe8b4291b.rmeta: crates/bta/src/lib.rs crates/bta/src/analysis.rs crates/bta/src/config.rs crates/bta/src/transfer.rs

crates/bta/src/lib.rs:
crates/bta/src/analysis.rs:
crates/bta/src/config.rs:
crates/bta/src/transfer.rs:
