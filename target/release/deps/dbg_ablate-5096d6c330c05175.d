/root/repo/target/release/deps/dbg_ablate-5096d6c330c05175.d: crates/bench/src/bin/dbg_ablate.rs

/root/repo/target/release/deps/dbg_ablate-5096d6c330c05175: crates/bench/src/bin/dbg_ablate.rs

crates/bench/src/bin/dbg_ablate.rs:
