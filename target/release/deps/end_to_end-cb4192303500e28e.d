/root/repo/target/release/deps/end_to_end-cb4192303500e28e.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-cb4192303500e28e: tests/end_to_end.rs

tests/end_to_end.rs:
