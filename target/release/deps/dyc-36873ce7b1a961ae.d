/root/repo/target/release/deps/dyc-36873ce7b1a961ae.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

/root/repo/target/release/deps/dyc-36873ce7b1a961ae: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/program.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/program.rs:
crates/core/src/session.rs:
