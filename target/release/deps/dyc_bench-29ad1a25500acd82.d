/root/repo/target/release/deps/dyc_bench-29ad1a25500acd82.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/dyc_bench-29ad1a25500acd82: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
