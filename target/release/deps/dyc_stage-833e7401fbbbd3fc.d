/root/repo/target/release/deps/dyc_stage-833e7401fbbbd3fc.d: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

/root/repo/target/release/deps/dyc_stage-833e7401fbbbd3fc: crates/stage/src/lib.rs crates/stage/src/ge.rs crates/stage/src/plan.rs crates/stage/src/template.rs

crates/stage/src/lib.rs:
crates/stage/src/ge.rs:
crates/stage/src/plan.rs:
crates/stage/src/template.rs:
