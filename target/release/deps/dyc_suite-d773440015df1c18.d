/root/repo/target/release/deps/dyc_suite-d773440015df1c18.d: src/lib.rs

/root/repo/target/release/deps/libdyc_suite-d773440015df1c18.rlib: src/lib.rs

/root/repo/target/release/deps/libdyc_suite-d773440015df1c18.rmeta: src/lib.rs

src/lib.rs:
