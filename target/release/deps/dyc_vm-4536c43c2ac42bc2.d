/root/repo/target/release/deps/dyc_vm-4536c43c2ac42bc2.d: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs

/root/repo/target/release/deps/dyc_vm-4536c43c2ac42bc2: crates/vm/src/lib.rs crates/vm/src/cost.rs crates/vm/src/host.rs crates/vm/src/icache.rs crates/vm/src/interp.rs crates/vm/src/isa.rs crates/vm/src/mem.rs crates/vm/src/module.rs crates/vm/src/pretty.rs crates/vm/src/stats.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/cost.rs:
crates/vm/src/host.rs:
crates/vm/src/icache.rs:
crates/vm/src/interp.rs:
crates/vm/src/isa.rs:
crates/vm/src/mem.rs:
crates/vm/src/module.rs:
crates/vm/src/pretty.rs:
crates/vm/src/stats.rs:
crates/vm/src/value.rs:
