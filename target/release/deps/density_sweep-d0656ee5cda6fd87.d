/root/repo/target/release/deps/density_sweep-d0656ee5cda6fd87.d: crates/bench/src/bin/density_sweep.rs

/root/repo/target/release/deps/density_sweep-d0656ee5cda6fd87: crates/bench/src/bin/density_sweep.rs

crates/bench/src/bin/density_sweep.rs:
