/root/repo/target/release/deps/dyc_lang-08baef8f06d04bc8.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

/root/repo/target/release/deps/dyc_lang-08baef8f06d04bc8: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/eval.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/eval.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/token.rs:
