/root/repo/target/release/deps/table4-58b1d5935ef0cb5b.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-58b1d5935ef0cb5b: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
