/root/repo/target/release/deps/optimizations-e68f990e6ef5726f.d: crates/core/tests/optimizations.rs

/root/repo/target/release/deps/optimizations-e68f990e6ef5726f: crates/core/tests/optimizations.rs

crates/core/tests/optimizations.rs:
