/root/repo/target/release/deps/bench_smoke-c3df87733395d001.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-c3df87733395d001: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
