/root/repo/target/release/deps/indexed_dispatch-4ed3dc773cab52ab.d: crates/bench/src/bin/indexed_dispatch.rs

/root/repo/target/release/deps/indexed_dispatch-4ed3dc773cab52ab: crates/bench/src/bin/indexed_dispatch.rs

crates/bench/src/bin/indexed_dispatch.rs:
