//! # dyc-fuzz — generative differential fuzzing of the specialization paths
//!
//! The repo's strongest correctness claim is that the three dynamic
//! compilation paths — online specializer, staged GE executor, fused
//! copy-and-patch templates — are *pure refinements* of each other and of
//! the plain interpreter: same results, same output, byte-identical
//! generated code, same statistics modulo the cycle split. The existing
//! differential test (`tests/staged_differential.rs`) checks this on the
//! eight hand-written benchmarks; this crate checks it on an unbounded
//! stream of machine-generated annotated programs (DESIGN.md §10).
//!
//! * [`gen`] — seeded, deterministic generation of annotated DyCL
//!   programs (arithmetic, branches, bounded loops, switches, memory,
//!   helper calls, `make_static` regions with sampled caching policies,
//!   promotions, static loads) plus their invocation tuples.
//! * [`oracle`] — the 4-way differential oracle, its run-time
//!   invariants, and the traced / threaded / snapshot-warm-start
//!   replays layered on the fused path.
//! * [`shrink`](mod@shrink) — a delta-debugging minimizer that reduces a failing
//!   case while preserving its [`oracle::Violation::kind`].
//!
//! The `dyc-fuzz` binary drives the loop:
//!
//! ```text
//! cargo run --release -p dyc-fuzz -- --seed 1 --iters 500
//! ```
//!
//! Every failure is printed as a self-contained repro (minimized DyCL
//! source, array contents, invocation tuples, and the case seed);
//! re-running with `--case-seed N` reproduces the identical minimized
//! case. Minimized finds get pinned in `tests/fuzz_regressions.rs`.

pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{generate_case, GenConfig, ScalarArg, TestCase, ARRAY_LEN, TARGET};
pub use oracle::{run_case, CaseReport, Coverage, Violation};
pub use shrink::{shrink, violation_key, violation_kind};

use dyc_workloads::rng::SplitMix64;

/// Derive the per-case seed for iteration `iter` of a run with base
/// `seed`. One SplitMix64 step per iteration keeps case seeds stable
/// under `--iters` changes: case `i` is the same whether the run does 10
/// iterations or 10,000.
pub fn case_seed(seed: u64, iter: u64) -> u64 {
    SplitMix64::seed_from_u64(seed.wrapping_add(iter.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .next_u64()
}

/// Rebuild a [`TestCase`] from DyCL source plus inputs — the form pinned
/// regressions are stored in.
///
/// # Errors
///
/// Returns the parse error as a string if `src` is not valid DyCL.
pub fn case_from_source(
    src: &str,
    arr: Option<Vec<i64>>,
    wbuf: Option<Vec<i64>>,
    tuples: Vec<Vec<ScalarArg>>,
) -> Result<TestCase, String> {
    let program = dyc_lang::parse_program(src).map_err(|e| e.to_string())?;
    Ok(TestCase {
        program,
        arr,
        wbuf,
        tuples,
    })
}
