//! Seeded generation of annotated DyCL programs.
//!
//! The generator builds `dyc_lang` ASTs directly (not source strings), so
//! every case also exercises the pretty-printer → parser round trip when
//! the oracle renders it. Programs are valid and terminating *by
//! construction*:
//!
//! * loops use dedicated counters (`i0`, `i1`) that only their own header
//!   and step touch, with loop-invariant bounds (constants or read-only
//!   parameters), so every loop runs a bounded number of iterations;
//! * `continue` is only generated where the innermost loop is a `for`
//!   (whose step block runs on continue); in a `while` it would skip the
//!   counter increment and diverge;
//! * integer division/remainder divisors are nonzero by construction
//!   (nonzero literals, or `e | 1`);
//! * `@`-annotated static loads only read `arr`, which no generated
//!   statement ever stores to — so a load executed at specialization time
//!   observes the same value as one executed at run time;
//! * `cache_one_unchecked` is only sampled for parameters the harness
//!   freezes to one value across all invocation tuples (the policy is
//!   unsound by design when the key actually varies, §2.2.3);
//! * float multiplications always have a literal on one side, drawn from
//!   a small pool, so loop-carried float values cannot overflow to
//!   infinity within the bounded iteration counts (DyC's zero-folds
//!   assume finite floats; the oracle additionally skips any case that
//!   still produces a non-finite observable).

use dyc_lang::ast::*;
use dyc_workloads::rng::SplitMix64;

/// Length of both memory-backed arrays (`arr`, `wbuf`). A power of two so
/// in-bounds indexing is a mask: `e & 7`.
pub const ARRAY_LEN: usize = 8;

/// A scalar argument for one invocation of the target function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarArg {
    /// An integer argument.
    I(i64),
    /// A float argument.
    F(f64),
}

/// One generated differential-test case: a program plus its inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Helper functions (if any) followed by the target `fuzz_target`.
    pub program: Program,
    /// Contents of the read-only array parameter `arr` (static loads may
    /// read it; nothing stores to it), if the target takes one.
    pub arr: Option<Vec<i64>>,
    /// Initial contents of the writable scratch array `wbuf`, if present.
    pub wbuf: Option<Vec<i64>>,
    /// Scalar arguments per invocation, in scalar-parameter order.
    pub tuples: Vec<Vec<ScalarArg>>,
}

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Top-level statement budget for the target body.
    pub max_stmts: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Maximum expression depth.
    pub expr_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 10,
            max_depth: 2,
            expr_depth: 3,
        }
    }
}

/// The name of the generated entry function.
pub const TARGET: &str = "fuzz_target";

/// An enclosing construct `break`/`continue` could bind to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    /// A loop; true for for-loops (whose step runs on `continue`).
    Loop(bool),
    /// A switch case body: `break` here is the parser's case terminator,
    /// so the generator never emits it as a statement.
    Switch,
}

struct Gen {
    rng: SplitMix64,
    cfg: GenConfig,
    /// Readable int-typed names currently in scope.
    int_vars: Vec<String>,
    /// Readable float-typed names currently in scope.
    float_vars: Vec<String>,
    /// Assignable int locals.
    int_locals: Vec<String>,
    /// Assignable float locals.
    float_locals: Vec<String>,
    /// Names the current loop nest depends on (counters and bound
    /// variables) — never assigned while the loop is open.
    frozen: Vec<String>,
    /// Stack of enclosing breakable constructs, innermost last.
    /// `Loop(true)` is a for-loop (continue reaches the step block).
    ctx: Vec<Ctx>,
    /// Variables annotated `make_static` so far (candidates for
    /// `make_dynamic`).
    annotated: Vec<String>,
    /// True once a region entry exists (gates `promote`).
    has_region: bool,
    has_arr: bool,
    has_wbuf: bool,
    has_float: bool,
    helpers: Vec<(String, usize, bool)>, // (name, arity, returns_float)
    /// Remaining nested-loop iteration budget (bounds are drawn so the
    /// product over a nest stays small).
    stmt_budget: usize,
}

impl Gen {
    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_f64() < p
    }

    fn open_loops(&self) -> usize {
        self.ctx
            .iter()
            .filter(|c| matches!(c, Ctx::Loop(_)))
            .count()
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.rng.next_u64() % xs.len() as u64) as usize]
    }

    fn int_const(&mut self) -> i64 {
        *self.pick(&[
            0,
            1,
            2,
            -1,
            3,
            4,
            5,
            7,
            8,
            16,
            32,
            -3,
            63,
            100,
            -17,
            1 << 20,
        ])
    }

    fn float_const(&mut self) -> f64 {
        *self.pick(&[0.0, 1.0, 0.5, 2.0, -1.5, 3.25, -0.25, 100.0, 1.75])
    }

    /// A float literal safe as a multiplication factor (bounded growth).
    fn float_factor(&mut self) -> f64 {
        *self.pick(&[0.5, 2.0, -0.5, 1.5, 0.25, -2.0, 1.0])
    }

    fn int_var(&mut self) -> String {
        self.pick(&self.int_vars.clone()).clone()
    }

    /// An integer literal in parser-canonical form: the parser reads
    /// `-3` as `Neg(IntLit(3))`, so negatives must be generated that way
    /// for the pretty-print → parse round trip to be the identity.
    fn lit(n: i64) -> Expr {
        if n < 0 {
            Expr::Unary(UnaryOp::Neg, Box::new(Expr::IntLit(-n)))
        } else {
            Expr::IntLit(n)
        }
    }

    /// A float literal in parser-canonical form (see [`Gen::lit`]).
    fn flit(f: f64) -> Expr {
        if f < 0.0 {
            Expr::Unary(UnaryOp::Neg, Box::new(Expr::FloatLit(-f)))
        } else {
            Expr::FloatLit(f)
        }
    }

    // ---- expressions ----------------------------------------------------

    fn int_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return self.int_leaf();
        }
        match self.rng.next_u64() % 10 {
            0..=1 => self.int_leaf(),
            2..=4 => {
                let op = *self.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Add,
                    BinOp::BitAnd,
                    BinOp::BitOr,
                    BinOp::BitXor,
                ]);
                Expr::Binary(
                    op,
                    Box::new(self.int_expr(depth - 1)),
                    Box::new(self.int_expr(depth - 1)),
                )
            }
            5 => {
                // Division and remainder with a divisor that cannot be
                // zero: a nonzero literal or `e | 1`.
                let op = *self.pick(&[BinOp::Div, BinOp::Rem]);
                let divisor = if self.chance(0.5) {
                    Gen::lit(*self.pick(&[2, 3, 4, 8, 16, -2, 5, 7]))
                } else {
                    let e = self.int_expr(depth - 1);
                    Expr::Binary(BinOp::BitOr, Box::new(e), Box::new(Expr::IntLit(1)))
                };
                Expr::Binary(op, Box::new(self.int_expr(depth - 1)), Box::new(divisor))
            }
            6 => {
                // Shifts with an in-range amount: literal 0..63 or `e & 63`.
                let op = *self.pick(&[BinOp::Shl, BinOp::Shr]);
                let amt = if self.chance(0.6) {
                    Expr::IntLit((self.rng.next_u64() % 64) as i64)
                } else {
                    let e = self.int_expr(depth - 1);
                    Expr::Binary(BinOp::BitAnd, Box::new(e), Box::new(Expr::IntLit(63)))
                };
                Expr::Binary(op, Box::new(self.int_expr(depth - 1)), Box::new(amt))
            }
            7 => {
                let op = *self.pick(&[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ]);
                Expr::Binary(
                    op,
                    Box::new(self.int_expr(depth - 1)),
                    Box::new(self.int_expr(depth - 1)),
                )
            }
            8 => {
                let op = *self.pick(&[UnaryOp::Neg, UnaryOp::Not, UnaryOp::BitNot]);
                Expr::Unary(op, Box::new(self.int_expr(depth - 1)))
            }
            _ => {
                if self.has_float && self.chance(0.3) {
                    let f = self.float_expr(depth - 1);
                    Expr::Unary(UnaryOp::CastInt, Box::new(f))
                } else if self.chance(0.3) {
                    let a = self.int_expr(depth - 1);
                    Expr::Call {
                        name: "iabs".into(),
                        args: vec![a],
                    }
                } else if !self.helpers.is_empty() && self.chance(0.5) {
                    let (name, arity, is_float) = self.pick(&self.helpers.clone()).clone();
                    let args = (0..arity).map(|_| self.int_expr(1)).collect();
                    let call = Expr::Call { name, args };
                    if is_float {
                        Expr::Unary(UnaryOp::CastInt, Box::new(call))
                    } else {
                        call
                    }
                } else {
                    self.int_leaf()
                }
            }
        }
    }

    fn int_leaf(&mut self) -> Expr {
        match self.rng.next_u64() % 8 {
            0..=2 => Gen::lit(self.int_const()),
            3..=5 => Expr::Var(self.int_var()),
            6 if self.has_arr => {
                let idx = self.masked_index();
                Expr::Index {
                    base: "arr".into(),
                    indices: vec![idx],
                    // Static loads are sound here because nothing ever
                    // stores to `arr`; with a dynamic index BTA simply
                    // demotes the load.
                    is_static: self.chance(0.6),
                }
            }
            7 if self.has_wbuf => {
                let idx = self.masked_index();
                Expr::Index {
                    base: "wbuf".into(),
                    indices: vec![idx],
                    is_static: false,
                }
            }
            _ => Expr::Var(self.int_var()),
        }
    }

    /// An in-bounds array index: `e & (ARRAY_LEN - 1)`.
    fn masked_index(&mut self) -> Expr {
        let e = self.int_expr(1);
        Expr::Binary(
            BinOp::BitAnd,
            Box::new(e),
            Box::new(Expr::IntLit(ARRAY_LEN as i64 - 1)),
        )
    }

    fn float_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || !self.has_float {
            return self.float_leaf();
        }
        match self.rng.next_u64() % 8 {
            0..=1 => self.float_leaf(),
            2..=3 => {
                let op = *self.pick(&[BinOp::Add, BinOp::Sub]);
                Expr::Binary(
                    op,
                    Box::new(self.float_expr(depth - 1)),
                    Box::new(self.float_expr(depth - 1)),
                )
            }
            4 => {
                // Multiplication by a bounded literal factor only.
                let f = self.float_factor();
                Expr::Binary(
                    BinOp::Mul,
                    Box::new(self.float_expr(depth - 1)),
                    Box::new(Gen::flit(f)),
                )
            }
            5 => {
                // Division by a nonzero literal only.
                let d = *self.pick(&[2.0, 4.0, 0.5, -2.0, 8.0]);
                Expr::Binary(
                    BinOp::Div,
                    Box::new(self.float_expr(depth - 1)),
                    Box::new(Gen::flit(d)),
                )
            }
            6 => {
                let name = *self.pick(&["cos", "sin", "fabs", "floor"]);
                let arg = self.float_expr(depth - 1);
                Expr::Call {
                    name: name.into(),
                    args: vec![arg],
                }
            }
            _ => {
                let i = self.int_expr(depth - 1);
                Expr::Unary(UnaryOp::CastFloat, Box::new(i))
            }
        }
    }

    fn float_leaf(&mut self) -> Expr {
        if !self.float_vars.is_empty() && self.chance(0.6) {
            Expr::Var(self.pick(&self.float_vars.clone()).clone())
        } else {
            let f = self.float_const();
            Gen::flit(f)
        }
    }

    // ---- statements -----------------------------------------------------

    fn stmts(&mut self, budget: usize, depth: usize) -> Vec<Stmt> {
        let n = 1 + (self.rng.next_u64() % budget.max(1) as u64) as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            if self.stmt_budget == 0 {
                break;
            }
            self.stmt_budget -= 1;
            out.push(self.stmt(depth));
        }
        out
    }

    fn stmt(&mut self, depth: usize) -> Stmt {
        let roll = self.rng.next_u64() % 100;
        match roll {
            // Assignment to an int local.
            0..=29 => self.assign_stmt(),
            // Conditional.
            30..=44 if depth > 0 => {
                let cond = self.int_expr(self.cfg.expr_depth - 1);
                let then_branch = Stmt::Block(self.stmts(3, depth - 1));
                let else_branch = if self.chance(0.5) {
                    Some(Box::new(Stmt::Block(self.stmts(2, depth - 1))))
                } else {
                    None
                };
                Stmt::If {
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch,
                }
            }
            // Loops.
            45..=59 if depth > 0 && self.open_loops() < 2 => self.loop_stmt(depth),
            // Switch.
            60..=66 if depth > 0 => {
                let scrutinee = self.int_expr(self.cfg.expr_depth - 1);
                let n_cases = 2 + (self.rng.next_u64() % 2) as usize;
                let mut keys: Vec<i64> = vec![0, 1, 2, 3, 7, -1];
                self.rng.shuffle(&mut keys);
                self.ctx.push(Ctx::Switch);
                let cases: Vec<(i64, Vec<Stmt>)> = keys
                    .into_iter()
                    .take(n_cases)
                    .map(|k| (k, self.stmts(2, depth - 1)))
                    .collect();
                let default = if self.chance(0.7) {
                    self.stmts(2, depth - 1)
                } else {
                    Vec::new()
                };
                self.ctx.pop();
                Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                }
            }
            // Observable prints.
            67..=74 => {
                if self.has_float && self.chance(0.35) {
                    let e = self.float_expr(self.cfg.expr_depth - 1);
                    Stmt::Expr(Expr::Call {
                        name: "print_float".into(),
                        args: vec![e],
                    })
                } else {
                    let e = self.int_expr(self.cfg.expr_depth - 1);
                    Stmt::Expr(Expr::Call {
                        name: "print_int".into(),
                        args: vec![e],
                    })
                }
            }
            // Store to the writable scratch array.
            75..=82 if self.has_wbuf => {
                let idx = self.masked_index();
                let rhs = self.int_expr(self.cfg.expr_depth - 1);
                Stmt::Assign {
                    lv: LValue::Elem {
                        base: "wbuf".into(),
                        indices: vec![idx],
                    },
                    op: AssignOp::Set,
                    rhs,
                }
            }
            // Internal dynamic-to-static promotion.
            83..=86 if self.has_region => {
                let v = self.pick(&self.int_locals.clone()).clone();
                Stmt::Promote(v)
            }
            // End specialization on an annotated variable.
            87..=88 if !self.annotated.is_empty() => {
                let v = self.pick(&self.annotated.clone()).clone();
                Stmt::MakeDynamic(vec![v])
            }
            // Mid-region make_static of a local (always checked caching).
            89..=90 => {
                let v = self.pick(&self.int_locals.clone()).clone();
                self.has_region = true;
                self.annotated.push(v.clone());
                Stmt::MakeStatic(vec![(v, Policy::CacheAll)])
            }
            // Break out of a loop or switch.
            91..=92 if matches!(self.ctx.last(), Some(Ctx::Loop(_))) => Stmt::Break,
            // Continue — only when the innermost loop is a `for`.
            93 if matches!(self.ctx.last(), Some(Ctx::Loop(true))) => Stmt::Continue,
            _ => self.assign_stmt(),
        }
    }

    fn assign_stmt(&mut self) -> Stmt {
        if self.has_float && !self.float_locals.is_empty() && self.chance(0.25) {
            let v = self.pick(&self.float_locals.clone()).clone();
            let rhs = self.float_expr(self.cfg.expr_depth);
            return Stmt::Assign {
                lv: LValue::Var(v),
                op: AssignOp::Set,
                rhs,
            };
        }
        let candidates: Vec<String> = self
            .int_locals
            .iter()
            .filter(|v| !self.frozen.contains(v))
            .cloned()
            .collect();
        let v = self.pick(&candidates).clone();
        let op = if self.chance(0.25) {
            *self.pick(&[AssignOp::Add, AssignOp::Sub, AssignOp::Mul])
        } else {
            AssignOp::Set
        };
        let rhs = self.int_expr(self.cfg.expr_depth);
        Stmt::Assign {
            lv: LValue::Var(v),
            op,
            rhs,
        }
    }

    /// A bounded counting loop. The counter and every variable the bound
    /// reads are frozen for the duration of the body, so the trip count is
    /// fixed at loop entry (≤ 12) and nesting multiplies small factors.
    fn loop_stmt(&mut self, depth: usize) -> Stmt {
        let counter = if self.open_loops() == 0 { "i0" } else { "i1" }.to_string();
        // Bound: a literal, or a read-only parameter (possibly masked).
        let (bound, bound_frozen): (Expr, Vec<String>) = match self.rng.next_u64() % 4 {
            0 => (Expr::IntLit(1 + (self.rng.next_u64() % 8) as i64), vec![]),
            // A static parameter: with make_static this unrolls.
            1 => (Expr::Var("s0".into()), vec!["s0".into()]),
            2 => (Expr::Var("s1".into()), vec!["s1".into()]),
            // A dynamic parameter, masked small.
            _ => (
                Expr::Binary(
                    BinOp::BitAnd,
                    Box::new(Expr::Var("d0".into())),
                    Box::new(Expr::IntLit(7)),
                ),
                vec!["d0".into()],
            ),
        };
        let is_for = self.chance(0.5);
        self.frozen.push(counter.clone());
        self.frozen.extend(bound_frozen.iter().cloned());
        self.ctx.push(Ctx::Loop(is_for));
        let body = self.stmts(3, depth - 1);
        self.ctx.pop();
        for _ in 0..=bound_frozen.len() {
            self.frozen.pop();
        }

        let cond = Expr::Binary(
            BinOp::Lt,
            Box::new(Expr::Var(counter.clone())),
            Box::new(bound),
        );
        let incr = Stmt::Assign {
            lv: LValue::Var(counter.clone()),
            op: AssignOp::Set,
            rhs: Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Var(counter.clone())),
                Box::new(Expr::IntLit(1)),
            ),
        };
        let init = Stmt::Assign {
            lv: LValue::Var(counter),
            op: AssignOp::Set,
            rhs: Expr::IntLit(0),
        };
        if is_for {
            Stmt::For {
                init: Some(Box::new(init)),
                cond: Some(cond),
                step: Some(Box::new(incr)),
                body: Box::new(Stmt::Block(body)),
            }
        } else {
            let mut b = body;
            b.push(incr);
            Stmt::Block(vec![
                init,
                Stmt::While {
                    cond,
                    body: Box::new(Stmt::Block(b)),
                },
            ])
        }
    }
}

/// Generate one deterministic test case from a seed.
pub fn generate_case(seed: u64, cfg: GenConfig) -> TestCase {
    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(seed),
        cfg,
        int_vars: Vec::new(),
        float_vars: Vec::new(),
        int_locals: Vec::new(),
        float_locals: Vec::new(),
        frozen: Vec::new(),
        ctx: Vec::new(),
        annotated: Vec::new(),
        has_region: false,
        has_arr: false,
        has_wbuf: false,
        has_float: false,
        helpers: Vec::new(),
        stmt_budget: 0,
    };
    g.has_arr = g.chance(0.5);
    g.has_wbuf = g.chance(0.5);
    g.has_float = g.chance(0.4);

    let mut functions = Vec::new();

    // Helper functions: pure scalar arithmetic, optionally `static` so
    // calls with all-static arguments run at specialization time.
    let n_helpers = (g.rng.next_u64() % 3) as usize;
    let mut all_helpers: Vec<(String, usize, bool)> = Vec::new();
    let mut helper_is_static: Vec<bool> = Vec::new();
    for h in 0..n_helpers {
        let name = format!("helper{h}");
        let arity = 1 + (g.rng.next_u64() % 2) as usize;
        let is_static = g.chance(0.6);
        let params: Vec<Param> = (0..arity)
            .map(|i| Param {
                name: format!("p{i}"),
                ty: Type::Int,
                dims: vec![],
            })
            .collect();
        g.int_vars = params.iter().map(|p| p.name.clone()).collect();
        g.float_vars.clear();
        // Helpers are pure scalar arithmetic: no floats, no memory. The
        // verifier rejects a `static` function that calls a non-static
        // one, so a static helper's callee pool holds only static
        // helpers; a dynamic helper may call any earlier helper.
        let (was_float, was_arr, was_wbuf) = (g.has_float, g.has_arr, g.has_wbuf);
        g.has_float = false;
        g.has_arr = false;
        g.has_wbuf = false;
        g.helpers = all_helpers
            .iter()
            .zip(&helper_is_static)
            .filter(|&(_, &callee_static)| callee_static || !is_static)
            .map(|(hh, _)| hh.clone())
            .collect();
        let body = vec![Stmt::Return(Some(g.int_expr(2)))];
        g.has_float = was_float;
        g.has_arr = was_arr;
        g.has_wbuf = was_wbuf;
        all_helpers.push((name.clone(), arity, false));
        helper_is_static.push(is_static);
        functions.push(Function {
            name,
            is_static,
            ret: Type::Int,
            params,
            body,
        });
    }
    g.helpers = all_helpers;

    // Target signature: scalars first, then the array pairs.
    let mut params = vec![
        Param {
            name: "s0".into(),
            ty: Type::Int,
            dims: vec![],
        },
        Param {
            name: "s1".into(),
            ty: Type::Int,
            dims: vec![],
        },
        Param {
            name: "d0".into(),
            ty: Type::Int,
            dims: vec![],
        },
        Param {
            name: "d1".into(),
            ty: Type::Int,
            dims: vec![],
        },
    ];
    if g.has_float {
        params.push(Param {
            name: "f0".into(),
            ty: Type::Float,
            dims: vec![],
        });
    }
    let n_scalars = params.len();
    if g.has_arr {
        params.push(Param {
            name: "arr".into(),
            ty: Type::Int,
            dims: vec![None],
        });
        params.push(Param {
            name: "an".into(),
            ty: Type::Int,
            dims: vec![],
        });
    }
    if g.has_wbuf {
        params.push(Param {
            name: "wbuf".into(),
            ty: Type::Int,
            dims: vec![None],
        });
        params.push(Param {
            name: "wn".into(),
            ty: Type::Int,
            dims: vec![],
        });
    }

    let mut body: Vec<Stmt> = Vec::new();

    // The region entry: a sampled subset of annotatable parameters.
    let mut frozen_params: Vec<String> = Vec::new();
    let annotate = g.chance(0.9);
    if annotate {
        let mut vars: Vec<(String, Policy)> = Vec::new();
        let mut candidates: Vec<&str> = vec!["s0", "s1"];
        if g.has_arr {
            candidates.push("arr");
        }
        for c in candidates {
            let p = if c == "s0" { 0.85 } else { 0.5 };
            if g.chance(p) {
                let policy = match g.rng.next_u64() % 10 {
                    0..=5 => Policy::CacheAll,
                    6..=7 => Policy::CacheIndexed,
                    _ => Policy::CacheOneUnchecked,
                };
                if policy == Policy::CacheOneUnchecked {
                    frozen_params.push(c.to_string());
                }
                vars.push((c.to_string(), policy));
            }
        }
        if vars.iter().any(|(v, _)| v == "arr") {
            // The array base is only meaningful together with its length.
            vars.push(("an".into(), Policy::CacheOneUnchecked));
        }
        if !vars.is_empty() {
            g.has_region = true;
            g.annotated = vars.iter().map(|(v, _)| v.clone()).collect();
            let entry = Stmt::MakeStatic(vars);
            if g.chance(0.25) {
                // Conditional specialization (§2.2.5): the entry sits
                // under a dynamic test, exercising polyvariant division.
                body.push(Stmt::If {
                    cond: Expr::Binary(
                        BinOp::Gt,
                        Box::new(Expr::Var("d1".into())),
                        Box::new(Expr::IntLit(0)),
                    ),
                    then_branch: Box::new(Stmt::Block(vec![entry])),
                    else_branch: None,
                });
            } else {
                body.push(entry);
            }
        }
    }

    // Locals: loop counters first (so later initializers may read them),
    // then a pool of int scalars, optionally a float.
    let n_locals = 2 + (g.rng.next_u64() % 3) as usize;
    g.int_vars = vec!["s0".into(), "s1".into(), "d0".into(), "d1".into()];
    if g.has_arr {
        g.int_vars.push("an".into());
    }
    if g.has_wbuf {
        g.int_vars.push("wn".into());
    }
    body.push(Stmt::Decl {
        ty: Type::Int,
        inits: vec![("i0".into(), Some(Expr::IntLit(0)))],
    });
    body.push(Stmt::Decl {
        ty: Type::Int,
        inits: vec![("i1".into(), Some(Expr::IntLit(0)))],
    });
    g.int_vars.push("i0".into());
    g.int_vars.push("i1".into());
    for l in 0..n_locals {
        let name = format!("x{l}");
        let init = if g.chance(0.5) {
            Gen::lit(g.int_const())
        } else {
            g.int_expr(1)
        };
        body.push(Stmt::Decl {
            ty: Type::Int,
            inits: vec![(name.clone(), Some(init))],
        });
        g.int_locals.push(name.clone());
        g.int_vars.push(name);
    }
    if g.has_float {
        let init = Gen::flit(g.float_const());
        body.push(Stmt::Decl {
            ty: Type::Float,
            inits: vec![("g0".into(), Some(init))],
        });
        g.float_locals.push("g0".into());
        g.float_vars.push("g0".into());
        g.float_vars.push("f0".into());
    }

    // The body proper.
    g.stmt_budget = g.cfg.max_stmts;
    let depth = g.cfg.max_depth;
    while g.stmt_budget > 0 {
        g.stmt_budget -= 1;
        let s = g.stmt(depth);
        body.push(s);
    }

    // Return an int expression over whatever is in scope.
    let ret = g.int_expr(g.cfg.expr_depth);
    body.push(Stmt::Return(Some(ret)));

    functions.push(Function {
        name: TARGET.into(),
        is_static: false,
        ret: Type::Int,
        params,
        body,
    });

    // Array contents: small, with zeros and powers of two so the staged
    // zero-fold / strength-reduction paths fire on static loads.
    let arr = g.has_arr.then(|| {
        const POOL: [i64; 9] = [0, 1, 2, 4, 8, -1, 3, 16, 0];
        (0..ARRAY_LEN)
            .map(|_| POOL[(g.rng.next_u64() % POOL.len() as u64) as usize])
            .collect()
    });
    let wbuf = g.has_wbuf.then(|| {
        (0..ARRAY_LEN)
            .map(|_| (g.rng.next_u64() % 64) as i64 - 32)
            .collect()
    });

    // Invocation tuples: three bases, then a repeat of the first (the
    // oracle separately re-runs the first tuple for steady-state deltas).
    // Parameters under cache_one_unchecked keep tuple 0's value
    // everywhere — varying them is unsound by design.
    let n_scalar_params = n_scalars;
    let mut tuples: Vec<Vec<ScalarArg>> = Vec::new();
    for t in 0..3 {
        let mut tuple = Vec::with_capacity(n_scalar_params);
        for p in 0..n_scalar_params {
            let name = ["s0", "s1", "d0", "d1", "f0"][p];
            let arg = match name {
                "s0" | "s1" => ScalarArg::I(g.rng.gen_range(-2i64..9)),
                "f0" => ScalarArg::F(g.rng.gen_range(-4.0..4.0)),
                _ => ScalarArg::I(g.rng.gen_range(-40i64..41)),
            };
            let frozen = frozen_params.iter().any(|f| f == name);
            if frozen && t > 0 {
                tuple.push(tuples[0][p]);
            } else {
                tuple.push(arg);
            }
        }
        tuples.push(tuple);
    }
    tuples.push(tuples[0].clone());

    TestCase {
        program: Program { functions },
        arr,
        wbuf,
        tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_lang::pretty::program_to_string;

    #[test]
    fn generation_is_deterministic() {
        for seed in [1u64, 7, 42, 0xdead] {
            let a = generate_case(seed, GenConfig::default());
            let b = generate_case(seed, GenConfig::default());
            assert_eq!(program_to_string(&a.program), program_to_string(&b.program));
            assert_eq!(a.tuples, b.tuples);
            assert_eq!(a.arr, b.arr);
            assert_eq!(a.wbuf, b.wbuf);
        }
    }

    #[test]
    fn generated_programs_parse_back() {
        for seed in 0..50u64 {
            let c = generate_case(seed, GenConfig::default());
            let src = program_to_string(&c.program);
            let reparsed = dyc_lang::parse_program(&src).unwrap_or_else(|e| {
                panic!("seed {seed}: generated source fails to parse: {e}\n{src}")
            });
            assert_eq!(
                reparsed, c.program,
                "seed {seed}: round trip changed the AST"
            );
        }
    }
}
