//! Delta-debugging minimizer for failing cases.
//!
//! Greedy fixpoint over a deterministic candidate enumeration: each
//! candidate is a strictly-smaller variant of the current best case (by a
//! well-founded measure — statement count, expression count, tuple count,
//! constant magnitude, annotation count), and is accepted only if it
//! still fails the oracle with the **same** [`Violation::kind`]. A
//! candidate that no longer compiles simply fails with a different kind
//! ("compile") and is rejected, so the shrinker never needs its own
//! validity checker. The eval budget bounds total oracle runs.

use crate::gen::{ScalarArg, TestCase};
use crate::oracle::{run_case, Violation};
use dyc_lang::ast::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The failure class of a case, if any — panics anywhere in the pipeline
/// count as the "crash" class, like [`Violation::Crash`].
pub fn violation_kind(case: &TestCase) -> Option<&'static str> {
    match catch_unwind(AssertUnwindSafe(|| run_case(case))) {
        Ok(Ok(_)) => None,
        Ok(Err(v)) => Some(v.kind()),
        Err(_) => Some(
            Violation::Crash {
                path: "oracle",
                msg: String::new(),
            }
            .kind(),
        ),
    }
}

/// The shrink-preservation key of a case. Like [`violation_kind`] but
/// compile errors keep their path and message: minimizing a compile
/// failure down to *any other* compile failure (delete the decl, keep
/// the use — still "compile") would destroy the repro, so the key pins
/// the exact diagnostic.
pub fn violation_key(case: &TestCase) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| run_case(case))) {
        Ok(Ok(_)) => None,
        Ok(Err(v)) => Some(match *v {
            Violation::Compile { path, ref msg } => format!("compile:{path}:{msg}"),
            ref other => other.kind().to_string(),
        }),
        Err(_) => Some("crash".to_string()),
    }
}

/// One shrink transformation, addressed by deterministic DFS indices.
#[derive(Debug, Clone)]
enum Candidate {
    /// Remove a helper function (never the target, which is last).
    DropHelper(usize),
    /// Remove an invocation tuple.
    DropTuple(usize),
    /// Delete the k-th statement (pre-order over every statement list).
    DeleteStmt(usize),
    /// Replace the k-th statement with (part of) its body.
    Flatten(usize, FlattenMode),
    /// Shrink the k-th annotation statement.
    ShrinkAnnot(usize, usize, AnnotMode),
    /// Replace the k-th expression with a strictly smaller one.
    SimplifyExpr(usize, ExprMode),
    /// Halve a scalar argument toward zero (floats go straight to 0.0).
    ShrinkScalar(usize, usize),
    /// Zero one element of the read-only array.
    ZeroArr(usize),
    /// Zero one element of the writable array.
    ZeroWbuf(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlattenMode {
    /// `if`/`while`/`for`/`block` → body statements; `switch` → default.
    Body,
    /// `if` → else statements; `switch` → first case statements.
    Alt,
    /// `if` → drop the else branch only.
    DropElse,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AnnotMode {
    /// Remove one variable from a `make_static` / `make_dynamic` list.
    DropVar,
    /// Reset one `make_static` policy to the default `cache_all`.
    DefaultPolicy,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ExprMode {
    /// Binary/unary/call → one child (index into children).
    Child(usize),
    /// Nonzero int literal → halved; nonzero float literal → 0.0.
    ShrinkConst,
}

// ---- statement traversal ------------------------------------------------

/// Pre-order count of statements across every list in the program.
fn count_stmts(p: &Program) -> usize {
    fn in_list(l: &[Stmt]) -> usize {
        l.iter().map(|s| 1 + in_children(s)).sum()
    }
    fn in_children(s: &Stmt) -> usize {
        match s {
            Stmt::Block(b) => in_list(b),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut n = 1 + in_children(then_branch);
                if let Some(e) = else_branch {
                    n += 1 + in_children(e);
                }
                n
            }
            Stmt::While { body, .. } => 1 + in_children(body),
            Stmt::For {
                init, step, body, ..
            } => {
                let mut n = 1 + in_children(body);
                if let Some(i) = init {
                    n += 1 + in_children(i);
                }
                if let Some(s) = step {
                    n += 1 + in_children(s);
                }
                n
            }
            Stmt::Switch { cases, default, .. } => {
                cases.iter().map(|(_, c)| in_list(c)).sum::<usize>() + in_list(default)
            }
            _ => 0,
        }
    }
    p.functions.iter().map(|f| in_list(&f.body)).sum()
}

/// What to do when the walk reaches statement index `k`.
enum StmtOp {
    Delete,
    Flatten(FlattenMode),
    Annot(usize, AnnotMode),
}

/// Walk the program's statement lists in the same pre-order as
/// [`count_stmts`] and apply `op` at index `k`. Returns true on success.
/// Statements in non-list positions (loop bodies, `for` init/step) are
/// visited for their children but can only be rewritten in place
/// (flatten wraps the result in a `Block`).
fn apply_stmt_op(p: &mut Program, mut k: usize, op: &StmtOp) -> bool {
    for f in &mut p.functions {
        if op_in_list(&mut f.body, &mut k, op) {
            return true;
        }
    }
    false
}

/// Sentinel meaning "the target index was reached and the op either ran
/// or turned out not to apply; stop walking either way".
const CONSUMED: usize = usize::MAX;

fn op_in_list(list: &mut Vec<Stmt>, k: &mut usize, op: &StmtOp) -> bool {
    let mut i = 0;
    while i < list.len() {
        if *k == CONSUMED {
            return false;
        }
        if *k == 0 {
            *k = CONSUMED;
            return match op {
                StmtOp::Delete => {
                    list.remove(i);
                    true
                }
                StmtOp::Flatten(mode) => match flatten(&list[i], *mode) {
                    Some(repl) => {
                        list.splice(i..=i, repl);
                        true
                    }
                    None => false,
                },
                StmtOp::Annot(vi, mode) => shrink_annot(&mut list[i], *vi, *mode),
            };
        }
        *k -= 1;
        if op_in_children(&mut list[i], k, op) {
            return true;
        }
        i += 1;
    }
    false
}

fn op_in_boxed(s: &mut Stmt, k: &mut usize, op: &StmtOp) -> bool {
    if *k == CONSUMED {
        return false;
    }
    if *k == 0 {
        *k = CONSUMED;
        return match op {
            StmtOp::Delete => {
                *s = Stmt::Block(Vec::new());
                true
            }
            StmtOp::Flatten(mode) => match flatten(s, *mode) {
                Some(repl) => {
                    *s = Stmt::Block(repl);
                    true
                }
                None => false,
            },
            StmtOp::Annot(vi, mode) => shrink_annot(s, *vi, *mode),
        };
    }
    *k -= 1;
    op_in_children(s, k, op)
}

fn op_in_children(s: &mut Stmt, k: &mut usize, op: &StmtOp) -> bool {
    if *k == CONSUMED {
        return false;
    }
    match s {
        Stmt::Block(b) => op_in_list(b, k, op),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            if op_in_boxed(then_branch, k, op) {
                return true;
            }
            if let Some(e) = else_branch {
                if op_in_boxed(e, k, op) {
                    return true;
                }
            }
            false
        }
        Stmt::While { body, .. } => op_in_boxed(body, k, op),
        Stmt::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                if op_in_boxed(i, k, op) {
                    return true;
                }
            }
            if let Some(st) = step {
                if op_in_boxed(st, k, op) {
                    return true;
                }
            }
            op_in_boxed(body, k, op)
        }
        Stmt::Switch { cases, default, .. } => {
            for (_, c) in cases.iter_mut() {
                if op_in_list(c, k, op) {
                    return true;
                }
            }
            op_in_list(default, k, op)
        }
        _ => false,
    }
}

/// The statements a compound statement flattens to, or None when the
/// mode does not apply. `DropElse` is signalled by an empty marker — it
/// mutates in place instead.
fn flatten(s: &Stmt, mode: FlattenMode) -> Option<Vec<Stmt>> {
    fn body_of(s: &Stmt) -> Vec<Stmt> {
        match s {
            Stmt::Block(b) => b.clone(),
            other => vec![other.clone()],
        }
    }
    match (s, mode) {
        (Stmt::Block(b), FlattenMode::Body) => Some(b.clone()),
        (Stmt::If { then_branch, .. }, FlattenMode::Body) => Some(body_of(then_branch)),
        (
            Stmt::If {
                else_branch: Some(e),
                ..
            },
            FlattenMode::Alt,
        ) => Some(body_of(e)),
        (
            Stmt::If {
                cond,
                then_branch,
                else_branch: Some(_),
            },
            FlattenMode::DropElse,
        ) => Some(vec![Stmt::If {
            cond: cond.clone(),
            then_branch: then_branch.clone(),
            else_branch: None,
        }]),
        (Stmt::While { body, .. }, FlattenMode::Body) => Some(body_of(body)),
        (Stmt::For { body, .. }, FlattenMode::Body) => Some(body_of(body)),
        (Stmt::Switch { default, .. }, FlattenMode::Body) => Some(default.clone()),
        (Stmt::Switch { cases, .. }, FlattenMode::Alt) if !cases.is_empty() => {
            Some(cases[0].1.clone())
        }
        _ => None,
    }
}

fn shrink_annot(s: &mut Stmt, vi: usize, mode: AnnotMode) -> bool {
    match (s, mode) {
        (Stmt::MakeStatic(vars), AnnotMode::DropVar) if vars.len() > 1 && vi < vars.len() => {
            vars.remove(vi);
            true
        }
        (Stmt::MakeStatic(vars), AnnotMode::DefaultPolicy)
            if vi < vars.len() && vars[vi].1 != Policy::CacheAll =>
        {
            vars[vi].1 = Policy::CacheAll;
            true
        }
        (Stmt::MakeDynamic(vars), AnnotMode::DropVar) if vars.len() > 1 && vi < vars.len() => {
            vars.remove(vi);
            true
        }
        _ => false,
    }
}

// ---- expression traversal -----------------------------------------------

fn count_exprs(p: &Program) -> usize {
    let mut n = 0;
    let mut count = |_e: &mut Expr| {
        n += 1;
        false
    };
    // Traversal requires &mut; counting clones once.
    let mut q = p.clone();
    for f in &mut q.functions {
        for s in &mut f.body {
            if visit_stmt_exprs(s, &mut count) {
                break;
            }
        }
    }
    n
}

/// Visit every expression in pre-order; `f` returns true to stop (after
/// mutating its argument).
fn visit_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    match s {
        Stmt::Block(b) => b.iter_mut().any(|s| visit_stmt_exprs(s, f)),
        Stmt::Decl { inits, .. } => inits
            .iter_mut()
            .filter_map(|(_, e)| e.as_mut())
            .any(|e| visit_expr(e, f)),
        Stmt::Assign { lv, rhs, .. } => {
            if let LValue::Elem { indices, .. } = lv {
                if indices.iter_mut().any(|e| visit_expr(e, f)) {
                    return true;
                }
            }
            visit_expr(rhs, f)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            visit_expr(cond, f)
                || visit_stmt_exprs(then_branch, f)
                || else_branch.as_mut().is_some_and(|e| visit_stmt_exprs(e, f))
        }
        Stmt::While { cond, body } => visit_expr(cond, f) || visit_stmt_exprs(body, f),
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_mut().is_some_and(|s| visit_stmt_exprs(s, f))
                || cond.as_mut().is_some_and(|e| visit_expr(e, f))
                || step.as_mut().is_some_and(|s| visit_stmt_exprs(s, f))
                || visit_stmt_exprs(body, f)
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            visit_expr(scrutinee, f)
                || cases
                    .iter_mut()
                    .any(|(_, c)| c.iter_mut().any(|s| visit_stmt_exprs(s, f)))
                || default.iter_mut().any(|s| visit_stmt_exprs(s, f))
        }
        Stmt::Return(Some(e)) | Stmt::Expr(e) => visit_expr(e, f),
        _ => false,
    }
}

fn visit_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Expr::Unary(_, inner) => visit_expr(inner, f),
        Expr::Binary(_, l, r) => visit_expr(l, f) || visit_expr(r, f),
        Expr::Index { indices, .. } => indices.iter_mut().any(|e| visit_expr(e, f)),
        Expr::Call { args, .. } => args.iter_mut().any(|e| visit_expr(e, f)),
        _ => false,
    }
}

fn apply_expr_op(p: &mut Program, k: usize, mode: ExprMode) -> bool {
    let mut idx = 0;
    let mut done = false;
    let mut f = |e: &mut Expr| {
        if idx == k {
            done = simplify(e, mode);
            idx += 1;
            true // stop either way
        } else {
            idx += 1;
            false
        }
    };
    for func in &mut p.functions {
        for s in &mut func.body {
            if visit_stmt_exprs(s, &mut f) {
                return done;
            }
        }
    }
    false
}

fn simplify(e: &mut Expr, mode: ExprMode) -> bool {
    match mode {
        ExprMode::Child(c) => {
            let child = match (&*e, c) {
                (Expr::Unary(_, inner), 0) => Some((**inner).clone()),
                (Expr::Binary(_, l, _), 0) => Some((**l).clone()),
                (Expr::Binary(_, _, r), 1) => Some((**r).clone()),
                (Expr::Call { args, .. }, i) if i < args.len() => Some(args[i].clone()),
                (Expr::Index { indices, .. }, i) if i < indices.len() => Some(indices[i].clone()),
                _ => None,
            };
            match child {
                Some(c) => {
                    *e = c;
                    true
                }
                None => false,
            }
        }
        ExprMode::ShrinkConst => match e {
            Expr::IntLit(n) if *n != 0 => {
                *n /= 2;
                true
            }
            Expr::FloatLit(f) if *f != 0.0 => {
                *f = 0.0;
                true
            }
            _ => false,
        },
    }
}

// ---- candidate application ----------------------------------------------

/// Apply one candidate, returning the transformed case (None if the
/// candidate does not apply to this case).
fn apply(case: &TestCase, cand: &Candidate) -> Option<TestCase> {
    let mut c = case.clone();
    let applied = match cand {
        Candidate::DropHelper(i) => {
            if c.program.functions.len() > 1 && *i < c.program.functions.len() - 1 {
                c.program.functions.remove(*i);
                true
            } else {
                false
            }
        }
        Candidate::DropTuple(i) => {
            if c.tuples.len() > 1 && *i < c.tuples.len() {
                c.tuples.remove(*i);
                true
            } else {
                false
            }
        }
        Candidate::DeleteStmt(k) => apply_stmt_op(&mut c.program, *k, &StmtOp::Delete),
        Candidate::Flatten(k, mode) => apply_stmt_op(&mut c.program, *k, &StmtOp::Flatten(*mode)),
        Candidate::ShrinkAnnot(k, vi, mode) => {
            apply_stmt_op(&mut c.program, *k, &StmtOp::Annot(*vi, *mode))
        }
        Candidate::SimplifyExpr(k, mode) => apply_expr_op(&mut c.program, *k, *mode),
        Candidate::ShrinkScalar(t, p) => {
            let tuple = c.tuples.get_mut(*t)?;
            match tuple.get_mut(*p) {
                Some(ScalarArg::I(v)) if *v != 0 => {
                    *v /= 2;
                    true
                }
                Some(ScalarArg::F(v)) if *v != 0.0 => {
                    *v = 0.0;
                    true
                }
                _ => false,
            }
        }
        Candidate::ZeroArr(i) => match c.arr.as_mut().and_then(|a| a.get_mut(*i)) {
            Some(v) if *v != 0 => {
                *v = 0;
                true
            }
            _ => false,
        },
        Candidate::ZeroWbuf(i) => match c.wbuf.as_mut().and_then(|a| a.get_mut(*i)) {
            Some(v) if *v != 0 => {
                *v = 0;
                true
            }
            _ => false,
        },
    };
    applied.then_some(c)
}

/// Deterministic candidate enumeration for the current case, coarsest
/// reductions first.
fn candidates(case: &TestCase) -> Vec<Candidate> {
    let mut out = Vec::new();
    let n_helpers = case.program.functions.len().saturating_sub(1);
    for i in (0..n_helpers).rev() {
        out.push(Candidate::DropHelper(i));
    }
    for i in (0..case.tuples.len()).rev() {
        if case.tuples.len() > 1 {
            out.push(Candidate::DropTuple(i));
        }
    }
    let n_stmts = count_stmts(&case.program);
    for k in 0..n_stmts {
        out.push(Candidate::DeleteStmt(k));
    }
    for k in 0..n_stmts {
        out.push(Candidate::Flatten(k, FlattenMode::Body));
        out.push(Candidate::Flatten(k, FlattenMode::DropElse));
        out.push(Candidate::Flatten(k, FlattenMode::Alt));
    }
    for k in 0..n_stmts {
        for vi in 0..4 {
            out.push(Candidate::ShrinkAnnot(k, vi, AnnotMode::DropVar));
            out.push(Candidate::ShrinkAnnot(k, vi, AnnotMode::DefaultPolicy));
        }
    }
    let n_exprs = count_exprs(&case.program);
    for k in 0..n_exprs {
        out.push(Candidate::SimplifyExpr(k, ExprMode::Child(0)));
        out.push(Candidate::SimplifyExpr(k, ExprMode::Child(1)));
        out.push(Candidate::SimplifyExpr(k, ExprMode::ShrinkConst));
    }
    for (t, tuple) in case.tuples.iter().enumerate() {
        for p in 0..tuple.len() {
            out.push(Candidate::ShrinkScalar(t, p));
        }
    }
    if let Some(a) = &case.arr {
        for i in 0..a.len() {
            out.push(Candidate::ZeroArr(i));
        }
    }
    if let Some(w) = &case.wbuf {
        for i in 0..w.len() {
            out.push(Candidate::ZeroWbuf(i));
        }
    }
    out
}

/// Shrink a failing case to a (locally) minimal one with the same
/// [`violation_key`], spending at most `budget` oracle evaluations.
/// Deterministic: the same input always minimizes to the same output.
pub fn shrink(case: &TestCase, key: &str, budget: usize) -> TestCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if evals >= budget {
                return best;
            }
            let Some(next) = apply(&best, &cand) else {
                continue;
            };
            if next == best {
                continue; // e.g. flattening a block onto itself
            }
            evals += 1;
            if violation_key(&next).as_deref() == Some(key) {
                best = next;
                continue 'outer; // restart enumeration on the smaller case
            }
        }
        return best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn stmt_count_matches_op_indexing() {
        // Every index below the count must resolve to a deletable
        // statement; the first index past it must not.
        for seed in 0..10u64 {
            let case = generate_case(seed, GenConfig::default());
            let n = count_stmts(&case.program);
            assert!(n > 0);
            for k in 0..n {
                let mut p = case.program.clone();
                assert!(
                    apply_stmt_op(&mut p, k, &StmtOp::Delete),
                    "seed {seed}: index {k} < count {n} but Delete failed"
                );
                // Deleting a list element shrinks the count; deleting a
                // boxed child rewrites it to an empty block (same count
                // when the child was already empty).
                assert!(
                    count_stmts(&p) <= n,
                    "seed {seed}: deleting statement {k} grew the program"
                );
            }
            let mut p = case.program.clone();
            assert!(
                !apply_stmt_op(&mut p, n, &StmtOp::Delete),
                "seed {seed}: index {n} == count but Delete succeeded"
            );
        }
    }

    #[test]
    fn expr_indexing_is_exhaustive() {
        for seed in 0..10u64 {
            let case = generate_case(seed, GenConfig::default());
            let n = count_exprs(&case.program);
            assert!(n > 0);
            // ShrinkConst may or may not apply per node, but indexing past
            // the end must always be a no-op returning false.
            let mut p = case.program.clone();
            assert!(!apply_expr_op(&mut p, n, ExprMode::ShrinkConst));
            assert_eq!(p, case.program);
        }
    }

    #[test]
    fn shrinking_a_forced_failure_terminates_and_stays_failing() {
        // Manufacture a deterministic failure by lying about the kind we
        // want: a passing case has kind None, so shrink() over a passing
        // case with an impossible kind must return it unchanged after at
        // most `budget` evals.
        let case = generate_case(3, GenConfig::default());
        let shrunk = shrink(&case, "result-mismatch", 40);
        // No candidate reproduces a violation that never happened.
        assert_eq!(
            dyc_lang::pretty::program_to_string(&shrunk.program),
            dyc_lang::pretty::program_to_string(&case.program)
        );
    }
}
