//! The 4-way differential oracle.
//!
//! Every test case runs through four executions of the same DyCL source:
//!
//! | path    | build                                      | specialization   |
//! |---------|--------------------------------------------|------------------|
//! | interp  | `static_session()` (annotations compiled away) | none         |
//! | online  | `OptConfig::all().without("staged_ge")`    | run-time BTA     |
//! | staged  | `OptConfig::all().without("template_fusion")` | GE executor   |
//! | fused   | `OptConfig::all()`                         | copy-and-patch   |
//!
//! and the oracle asserts that the three dynamic paths are *pure*
//! refinements of each other and of the reference interpreter:
//!
//! * identical results, printed output, and final memory, four ways
//!   (floats compared with `==`, so DyC's `x*0.0 → 0.0` fold is allowed
//!   to canonicalize a negative zero; non-finite observables skip the
//!   case — the paper's optimizations assume finite floats);
//! * byte-identical disassembly of the whole specialized module across
//!   the three dynamic paths;
//! * `RtStats` agreement modulo the cycle meters (`normalized`),
//!   `runtime_bta_calls == 0` on both staged paths and `> 0` online
//!   whenever specialization happened, template instructions only on the
//!   fused path, and the overhead ordering fused ≤ unfused ≤ online;
//! * dispatch accounting balances: per-policy dispatch counts sum to the
//!   VM's dispatch count, and specializations equal dispatch misses;
//! * steady state is allocation-free: re-running the first tuple moves
//!   neither `specializations` nor `dispatch_allocs`;
//! * threaded equivalence: four threads over one shared concurrent
//!   runtime (blocking single-flight) reproduce the fused path's
//!   results, output, memory, cached `(site, key, code)` bindings, and
//!   global specialization count exactly;
//! * trace equivalence: a fifth, fused run with the event recorder on
//!   reproduces the fused path's observables, emitted code bytes, and
//!   *every* `RtStats` counter (tracing is observational), while
//!   recording events whenever specialization happened;
//! * snapshot equivalence: a sixth run warm-started from the fused
//!   session's cache bundle restores every cached binding
//!   (`cache_warm_loads` equals the snapshot size, zero rejects),
//!   reproduces the fused observables, re-specializes nothing when the
//!   cold cache saw no evictions or invalidations, and ends with
//!   instruction-identical cached code — while a bundle with one
//!   corrupted entry fingerprint loses exactly that entry (rejected and
//!   metered, never fatal) and still computes exact results;
//! * native equivalence: a seventh, fused run through the native x86-64
//!   backend (`OptConfig::native`) reproduces the fused path's results,
//!   output, and writable-array contents tuple for tuple, and on hosts
//!   with the backend actually installs machine code whenever it
//!   specializes (the suite's specialized ISA is fully lowerable);
//! * policy equivalence: an eighth, fused run under the adaptive
//!   specialization policy (`PolicyMode::Adaptive`) reproduces the
//!   fused path's results, output, and writable-array contents tuple
//!   for tuple — deferral changes *when* code is generated, never what
//!   a dispatch computes — its adaptive accounting balances
//!   (specializations + deferrals + throttles = dispatch misses), and
//!   every binding it did specialize is byte-identical to the
//!   always-specialize path's code for that binding.

use crate::gen::{ScalarArg, TestCase, ARRAY_LEN, TARGET};
use dyc::{
    CacheBundle, CodeFunc, Compiler, OptConfig, PolicyMode, Program, RtStats, Session, Value,
};
use dyc_lang::pretty::program_to_string;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Step budget per invocation — converts a runaway loop (a generator or
/// lowering bug) into a comparable `StepLimit` error instead of a hang.
const STEP_LIMIT: u64 = 10_000_000;

const PATHS: [&str; 4] = ["interp", "online", "staged", "fused"];

/// An oracle violation: the smallest unit the shrinker preserves is the
/// [`Violation::kind`] label, so a shrink step may not turn one failure
/// into a different one.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The rendered program failed to compile on some path.
    Compile { path: &'static str, msg: String },
    /// A path panicked (compiler, runtime, or VM).
    Crash { path: &'static str, msg: String },
    /// Paths disagreed on whether (or how) the run fails.
    ErrorMismatch { tuple: usize, details: String },
    /// Paths returned different values.
    ResultMismatch { tuple: usize, details: String },
    /// Paths printed different output.
    OutputMismatch { tuple: usize, details: String },
    /// Paths left different contents in the writable array.
    MemoryMismatch { tuple: usize, details: String },
    /// The three dynamic paths emitted different specialized code.
    CodeMismatch { details: String },
    /// Normalized `RtStats` diverged between dynamic paths.
    StatsMismatch { details: String },
    /// A runtime invariant failed (dispatch accounting, staged-zero-BTA,
    /// overhead ordering, steady-state allocation-freedom, ...).
    Invariant { details: String },
    /// Threads over a shared concurrent runtime diverged from the fused
    /// single-threaded path (results, memory, cached code, or the
    /// global specialization count).
    ThreadMismatch { details: String },
    /// Enabling event tracing changed an observable: results, output,
    /// memory, emitted code bytes, or any `RtStats` counter — or a
    /// traced run that specialized recorded no events at all.
    TraceMismatch { details: String },
    /// A session warm-started from the fused path's snapshot bundle
    /// diverged: wrong warm-load accounting, different observables,
    /// re-specialization of restored keys, non-identical cached code —
    /// or a corrupted bundle entry that was not rejected per-entry.
    WarmMismatch { details: String },
    /// The native x86-64 backend diverged from the fused VM path:
    /// different results, output, or writable-array contents — or a
    /// host with the backend that specialized without installing any
    /// machine code.
    NativeMismatch { tuple: usize, details: String },
    /// The adaptive specialization policy diverged from the fused
    /// always-specialize path: different results, output, or
    /// writable-array contents, unbalanced adaptive accounting, or a
    /// specialized binding whose code is not byte-identical to the
    /// always path's code for the same binding.
    PolicyMismatch { tuple: usize, details: String },
}

impl Violation {
    /// A stable label naming the failure class; shrinking preserves it.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Compile { .. } => "compile",
            Violation::Crash { .. } => "crash",
            Violation::ErrorMismatch { .. } => "error-mismatch",
            Violation::ResultMismatch { .. } => "result-mismatch",
            Violation::OutputMismatch { .. } => "output-mismatch",
            Violation::MemoryMismatch { .. } => "memory-mismatch",
            Violation::CodeMismatch { .. } => "code-mismatch",
            Violation::StatsMismatch { .. } => "stats-mismatch",
            Violation::Invariant { .. } => "invariant",
            Violation::ThreadMismatch { .. } => "thread-mismatch",
            Violation::TraceMismatch { .. } => "trace-mismatch",
            Violation::WarmMismatch { .. } => "warm-mismatch",
            Violation::NativeMismatch { .. } => "native-mismatch",
            Violation::PolicyMismatch { .. } => "policy-mismatch",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Compile { path, msg } => write!(f, "compile error on {path}: {msg}"),
            Violation::Crash { path, msg } => write!(f, "panic on {path}: {msg}"),
            Violation::ErrorMismatch { tuple, details } => {
                write!(f, "error mismatch on tuple {tuple}: {details}")
            }
            Violation::ResultMismatch { tuple, details } => {
                write!(f, "result mismatch on tuple {tuple}: {details}")
            }
            Violation::OutputMismatch { tuple, details } => {
                write!(f, "output mismatch on tuple {tuple}: {details}")
            }
            Violation::MemoryMismatch { tuple, details } => {
                write!(f, "memory mismatch on tuple {tuple}: {details}")
            }
            Violation::CodeMismatch { details } => write!(f, "code mismatch: {details}"),
            Violation::StatsMismatch { details } => write!(f, "stats mismatch: {details}"),
            Violation::Invariant { details } => write!(f, "invariant violation: {details}"),
            Violation::ThreadMismatch { details } => write!(f, "thread mismatch: {details}"),
            Violation::TraceMismatch { details } => write!(f, "trace mismatch: {details}"),
            Violation::WarmMismatch { details } => write!(f, "warm-start mismatch: {details}"),
            Violation::NativeMismatch { tuple, details } => {
                write!(f, "native mismatch on tuple {tuple}: {details}")
            }
            Violation::PolicyMismatch { tuple, details } => {
                write!(f, "policy mismatch on tuple {tuple}: {details}")
            }
        }
    }
}

/// Optimization features the case actually exercised (from the fused
/// path's counters) — the fuzzer's coverage report aggregates these.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    pub specialized: bool,
    pub unrolled: bool,
    pub promoted: bool,
    pub templated: bool,
    pub indexed_dispatch: bool,
    pub unchecked_dispatch: bool,
    pub polyvariant: bool,
    pub static_loads: bool,
    pub static_calls: bool,
    pub branches_folded: bool,
    pub zero_copy_folds: bool,
}

/// The outcome of a clean (non-violating) case.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Which features fired.
    pub coverage: Coverage,
    /// `Some(reason)` if the case was skipped (non-finite float
    /// observable) rather than fully checked.
    pub skipped: Option<String>,
}

/// Zero the fields the dynamic paths are *allowed* to differ on — the
/// cycle split, the run-time-analysis counter, and the template meters —
/// mirroring `tests/staged_differential.rs`.
fn normalized(rt: &RtStats) -> RtStats {
    RtStats {
        dyncomp_cycles: 0,
        ge_exec_cycles: 0,
        emit_cycles: 0,
        runtime_bta_calls: 0,
        template_instrs: 0,
        holes_patched: 0,
        template_copy_cycles: 0,
        hole_patch_cycles: 0,
        template_fallbacks: 0,
        ..rt.clone()
    }
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I(x), Value::I(y)) => x == y,
        // `==` deliberately: the zero-fold may canonicalize -0.0 to 0.0.
        // NaN observables never reach this point (the case is skipped).
        (Value::F(x), Value::F(y)) => x == y || x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn values_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| value_eq(x, y))
}

fn non_finite(v: &Value) -> bool {
    matches!(v, Value::F(f) if !f.is_finite())
}

fn fmt_vals(vs: &[Value]) -> String {
    let parts: Vec<String> = vs
        .iter()
        .map(|v| match v {
            Value::I(i) => i.to_string(),
            Value::F(f) => format!("{f:?}"),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// One path's per-tuple observation.
struct Obs {
    result: Result<Option<Value>, String>,
    output: Vec<Value>,
    wbuf: Option<Vec<i64>>,
}

struct Path {
    name: &'static str,
    sess: Session,
    arr_base: Option<i64>,
    wbuf_base: Option<i64>,
}

impl Path {
    fn invoke(&mut self, case: &TestCase, tuple: &[ScalarArg]) -> Result<Obs, Violation> {
        // Reset the writable array so every invocation — including the
        // steady-state re-run — sees identical memory, keeping promoted
        // keys repeatable.
        if let (Some(base), Some(init)) = (self.wbuf_base, case.wbuf.as_ref()) {
            self.sess.mem().write_ints(base, init);
        }
        self.sess.take_output();
        let mut args: Vec<Value> = tuple
            .iter()
            .map(|a| match a {
                ScalarArg::I(v) => Value::I(*v),
                ScalarArg::F(v) => Value::F(*v),
            })
            .collect();
        if let Some(base) = self.arr_base {
            args.push(Value::I(base));
            args.push(Value::I(ARRAY_LEN as i64));
        }
        if let Some(base) = self.wbuf_base {
            args.push(Value::I(base));
            args.push(Value::I(ARRAY_LEN as i64));
        }
        let name = self.name;
        let ran = catch_unwind(AssertUnwindSafe(|| self.sess.run(TARGET, &args)));
        let result = match ran {
            Err(payload) => {
                return Err(Violation::Crash {
                    path: name,
                    msg: panic_message(&payload),
                })
            }
            Ok(r) => r.map_err(|e| e.to_string()),
        };
        let output = self.sess.take_output();
        let wbuf = self
            .wbuf_base
            .map(|base| self.sess.mem().read_ints(base, ARRAY_LEN));
        Ok(Obs {
            result,
            output,
            wbuf,
        })
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn build_path(
    name: &'static str,
    case: &TestCase,
    src: &str,
    cfg: OptConfig,
    dynamic: bool,
) -> Result<Path, Violation> {
    let program = catch_unwind(AssertUnwindSafe(|| Compiler::with_config(cfg).compile(src)))
        .map_err(|p| Violation::Crash {
            path: name,
            msg: format!("compiler panic: {}", panic_message(&p)),
        })?
        .map_err(|e| Violation::Compile {
            path: name,
            msg: e.to_string(),
        })?;
    let mut sess = if dynamic {
        program.dynamic_session()
    } else {
        program.static_session()
    };
    sess.set_step_limit(STEP_LIMIT);
    let arr_base = case.arr.as_ref().map(|init| {
        let base = sess.alloc(ARRAY_LEN);
        sess.mem().write_ints(base, init);
        base
    });
    let wbuf_base = case.wbuf.as_ref().map(|_| sess.alloc(ARRAY_LEN));
    Ok(Path {
        name,
        sess,
        arr_base,
        wbuf_base,
    })
}

/// Run one case through all four paths and check every oracle property.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn run_case(case: &TestCase) -> Result<CaseReport, Box<Violation>> {
    let src = program_to_string(&case.program);
    run_case_src(case, &src)
}

fn run_case_src(case: &TestCase, src: &str) -> Result<CaseReport, Box<Violation>> {
    let fused_cfg = OptConfig::all();
    let unfused_cfg = OptConfig::all()
        .without("template_fusion")
        .expect("feature name");
    let online_cfg = OptConfig::all().without("staged_ge").expect("feature name");

    let mut paths = [
        build_path("interp", case, src, fused_cfg, false)?,
        build_path("online", case, src, online_cfg, true)?,
        build_path("staged", case, src, unfused_cfg, true)?,
        build_path("fused", case, src, fused_cfg, true)?,
    ];

    // Data memory layout must agree or address-typed arguments diverge
    // for reasons that have nothing to do with specialization.
    for p in &paths[1..] {
        if p.arr_base != paths[0].arr_base || p.wbuf_base != paths[0].wbuf_base {
            return Err(Box::new(Violation::Invariant {
                details: format!("allocation bases diverged between interp and {}", p.name),
            }));
        }
    }

    let mut report = CaseReport::default();
    let mut tuple0_ok = true;
    let mut fused_obs: Vec<Obs> = Vec::with_capacity(case.tuples.len());
    for (t, tuple) in case.tuples.iter().enumerate() {
        let mut obs: Vec<Obs> = Vec::with_capacity(4);
        for p in paths.iter_mut() {
            obs.push(p.invoke(case, tuple)?);
        }
        let n_err = obs.iter().filter(|o| o.result.is_err()).count();
        if n_err > 0 {
            if t == 0 {
                tuple0_ok = false;
            }
            // All four must fail, and identically: a fault (division by
            // zero, step limit) is an observable like any other.
            let msgs: Vec<&String> = obs.iter().filter_map(|o| o.result.as_ref().err()).collect();
            if n_err < 4 || msgs.windows(2).any(|w| w[0] != w[1]) {
                let details = obs
                    .iter()
                    .enumerate()
                    .map(|(i, o)| format!("{}: {:?}", PATHS[i], o.result))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(Box::new(Violation::ErrorMismatch { tuple: t, details }));
            }
            fused_obs.push(obs.pop().expect("four observations"));
            continue;
        }

        // Skip (not fail) on non-finite observables: every float-folding
        // rule in the paper assumes finite arithmetic.
        let observables_nonfinite = obs.iter().any(|o| {
            o.result
                .as_ref()
                .ok()
                .and_then(|r| r.as_ref())
                .is_some_and(non_finite)
                || o.output.iter().any(non_finite)
        });
        if observables_nonfinite {
            report.skipped = Some(format!("non-finite float observable on tuple {t}"));
            return Ok(report);
        }

        let r0 = obs[0].result.as_ref().ok().unwrap();
        for (i, o) in obs.iter().enumerate().skip(1) {
            let ri = o.result.as_ref().ok().unwrap();
            let same = match (r0, ri) {
                (None, None) => true,
                (Some(a), Some(b)) => value_eq(a, b),
                _ => false,
            };
            if !same {
                return Err(Box::new(Violation::ResultMismatch {
                    tuple: t,
                    details: format!("interp: {r0:?} vs {}: {ri:?}", PATHS[i]),
                }));
            }
            if !values_eq(&obs[0].output, &o.output) {
                return Err(Box::new(Violation::OutputMismatch {
                    tuple: t,
                    details: format!(
                        "interp: {} vs {}: {}",
                        fmt_vals(&obs[0].output),
                        PATHS[i],
                        fmt_vals(&o.output)
                    ),
                }));
            }
            if obs[0].wbuf != o.wbuf {
                return Err(Box::new(Violation::MemoryMismatch {
                    tuple: t,
                    details: format!("interp: {:?} vs {}: {:?}", obs[0].wbuf, PATHS[i], o.wbuf),
                }));
            }
        }
        fused_obs.push(obs.pop().expect("four observations"));
    }

    // Steady state: the first tuple has been run twice already (tuples
    // ends with a repeat); a third run must move neither the
    // specialization counter nor the dispatch allocator.
    if tuple0_ok {
        for p in paths.iter_mut().skip(1) {
            let before = p.sess.rt_stats().expect("dynamic path").clone();
            p.invoke(case, &case.tuples[0])?;
            let after = p.sess.rt_stats().expect("dynamic path");
            if after.specializations != before.specializations {
                return Err(Box::new(Violation::Invariant {
                    details: format!(
                        "{}: steady-state re-run respecialized ({} -> {})",
                        p.name, before.specializations, after.specializations
                    ),
                }));
            }
            if after.dispatch_allocs != before.dispatch_allocs {
                return Err(Box::new(Violation::Invariant {
                    details: format!(
                        "{}: steady-state re-run allocated ({} -> {})",
                        p.name, before.dispatch_allocs, after.dispatch_allocs
                    ),
                }));
            }
        }
    }

    // Byte-identical code across the three dynamic paths: stubs plus
    // every dynamically generated `$spec` function.
    let online_code = paths[1].sess.disassemble_matching("");
    for p in &paths[2..] {
        let code = p.sess.disassemble_matching("");
        if code != online_code {
            return Err(Box::new(Violation::CodeMismatch {
                details: format!("online and {} emitted different code", p.name),
            }));
        }
    }

    // Runtime-statistics invariants.
    let online = paths[1].sess.rt_stats().expect("dynamic path").clone();
    let staged = paths[2].sess.rt_stats().expect("dynamic path").clone();
    let fused = paths[3].sess.rt_stats().expect("dynamic path").clone();

    for p in &paths[1..] {
        let rt = p.sess.rt_stats().expect("dynamic path");
        let vm = p.sess.stats();
        let served = rt.dispatch_unchecked + rt.dispatch_hashed + rt.dispatch_indexed;
        if served != vm.dispatches {
            return Err(Box::new(Violation::Invariant {
                details: format!(
                    "{}: dispatch accounting off: {} + {} + {} != {} dispatches",
                    p.name,
                    rt.dispatch_unchecked,
                    rt.dispatch_hashed,
                    rt.dispatch_indexed,
                    vm.dispatches
                ),
            }));
        }
        if rt.specializations != vm.dispatch_misses {
            return Err(Box::new(Violation::Invariant {
                details: format!(
                    "{}: specializations {} != dispatch misses {}",
                    p.name, rt.specializations, vm.dispatch_misses
                ),
            }));
        }
    }

    for (name, rt) in [("staged", &staged), ("fused", &fused)] {
        if rt.runtime_bta_calls != 0 {
            return Err(Box::new(Violation::Invariant {
                details: format!(
                    "{name}: staged path performed {} run-time BTA calls",
                    rt.runtime_bta_calls
                ),
            }));
        }
        if name == "staged" && rt.template_instrs != 0 {
            return Err(Box::new(Violation::Invariant {
                details: "staged (unfused) path reported template instructions".into(),
            }));
        }
    }
    if online.template_instrs != 0 {
        return Err(Box::new(Violation::Invariant {
            details: "online path reported template instructions".into(),
        }));
    }
    if online.specializations > 0 {
        if online.runtime_bta_calls == 0 {
            return Err(Box::new(Violation::Invariant {
                details: "online path specialized without run-time BTA calls".into(),
            }));
        }
        // Staging never costs more than online specialization; ties
        // happen on regions trivial enough that the run-time analysis
        // contributes no measured cycles.
        if staged.dyncomp_cycles > online.dyncomp_cycles {
            return Err(Box::new(Violation::Invariant {
                details: format!(
                    "staged overhead {} > online overhead {}",
                    staged.dyncomp_cycles, online.dyncomp_cycles
                ),
            }));
        }
    }
    if fused.dyncomp_cycles > staged.dyncomp_cycles {
        return Err(Box::new(Violation::Invariant {
            details: format!(
                "template fusion made dynamic compilation dearer: {} > {}",
                fused.dyncomp_cycles, staged.dyncomp_cycles
            ),
        }));
    }

    let (n_online, n_staged, n_fused) =
        (normalized(&online), normalized(&staged), normalized(&fused));
    if n_staged != n_online {
        return Err(Box::new(Violation::StatsMismatch {
            details: format!("staged vs online:\n{n_staged:#?}\nvs\n{n_online:#?}"),
        }));
    }
    if n_fused != n_staged {
        return Err(Box::new(Violation::StatsMismatch {
            details: format!("fused vs staged:\n{n_fused:#?}\nvs\n{n_staged:#?}"),
        }));
    }

    check_traced(case, src, &fused_obs, &paths[3], tuple0_ok)?;
    check_threaded(case, src, &fused_obs, &paths[3], fused.specializations)?;
    check_warm(case, src, &fused_obs, &paths[3], &fused)?;
    check_native(case, src, &fused_obs, &paths[3])?;
    check_policy(case, src, &fused_obs, &paths[3], &fused)?;

    report.coverage = Coverage {
        specialized: fused.specializations > 0,
        unrolled: fused.loops_unrolled > 0,
        promoted: fused.internal_promotions > 0,
        templated: fused.template_instrs > 0,
        indexed_dispatch: fused.dispatch_indexed > 0,
        unchecked_dispatch: fused.dispatch_unchecked > 0,
        polyvariant: fused.divisions_observed > 0,
        static_loads: fused.static_loads > 0,
        static_calls: fused.static_calls > 0,
        branches_folded: fused.branches_folded > 0,
        zero_copy_folds: fused.zero_copy_folds > 0,
    };
    Ok(report)
}

/// Trace-equivalence check: a fifth execution of the fused configuration
/// with the event recorder on must be indistinguishable from the
/// untraced fused path — same per-tuple observables, byte-identical
/// emitted code, and `RtStats` equal counter for counter (recording
/// writes only to its own ring, never to the meters). A traced run that
/// specialized must also have actually recorded events.
fn check_traced(
    case: &TestCase,
    src: &str,
    fused_obs: &[Obs],
    fused_path: &Path,
    tuple0_ok: bool,
) -> Result<(), Box<Violation>> {
    let mut cfg = OptConfig::all();
    cfg.trace = true;
    let mut p = build_path("traced", case, src, cfg, true)?;
    if p.arr_base != fused_path.arr_base || p.wbuf_base != fused_path.wbuf_base {
        return Err(Box::new(Violation::TraceMismatch {
            details: "allocation bases diverged from the fused path".into(),
        }));
    }
    for (t, tuple) in case.tuples.iter().enumerate() {
        let o = p.invoke(case, tuple)?;
        let want = &fused_obs[t];
        let same = match (&want.result, &o.result) {
            // Same config, same thread: even the error text must match.
            (Err(a), Err(b)) => a == b,
            (Ok(a), Ok(b)) => match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => value_eq(x, y),
                _ => false,
            },
            _ => false,
        };
        if !same {
            return Err(Box::new(Violation::TraceMismatch {
                details: format!(
                    "tuple {t}: fused {:?} vs traced {:?}",
                    want.result, o.result
                ),
            }));
        }
        if want.result.is_err() {
            continue;
        }
        if !values_eq(&want.output, &o.output) {
            return Err(Box::new(Violation::TraceMismatch {
                details: format!(
                    "tuple {t}: fused output {} vs traced {}",
                    fmt_vals(&want.output),
                    fmt_vals(&o.output)
                ),
            }));
        }
        if want.wbuf != o.wbuf {
            return Err(Box::new(Violation::TraceMismatch {
                details: format!(
                    "tuple {t}: fused wbuf {:?} vs traced {:?}",
                    want.wbuf, o.wbuf
                ),
            }));
        }
    }
    // Mirror the fused path's steady-state re-run so the cumulative
    // counters line up tick for tick.
    if tuple0_ok {
        p.invoke(case, &case.tuples[0])?;
    }
    if p.sess.disassemble_matching("") != fused_path.sess.disassemble_matching("") {
        return Err(Box::new(Violation::TraceMismatch {
            details: "tracing changed the emitted code bytes".into(),
        }));
    }
    let fused_rt = fused_path.sess.rt_stats().expect("dynamic path");
    let traced_rt = p.sess.rt_stats().expect("dynamic path");
    if traced_rt != fused_rt {
        return Err(Box::new(Violation::TraceMismatch {
            details: format!("tracing perturbed RtStats:\n{traced_rt:#?}\nvs\n{fused_rt:#?}"),
        }));
    }
    if fused_rt.specializations > 0 && p.sess.trace_events().is_empty() {
        return Err(Box::new(Violation::TraceMismatch {
            details: "traced run specialized but recorded no events".into(),
        }));
    }
    Ok(())
}

/// Threads racing one shared concurrent runtime per case.
const N_THREADS: usize = 4;

/// Cached bindings in comparable form: `(site, key, rendered code)`.
type NormalizedCode = Vec<(u32, Vec<u64>, String)>;

/// Sort cached `(site, key, code)` bindings into a comparable form,
/// dropping the function name and base address (both embed module-local,
/// order-dependent detail that legitimately differs between replicas).
fn normalized_code(mut entries: Vec<(u32, Vec<u64>, CodeFunc)>) -> NormalizedCode {
    entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    entries
        .into_iter()
        .map(|(s, k, f)| {
            (
                s,
                k,
                format!("params={} regs={} code={:?}", f.n_params, f.n_regs, f.code),
            )
        })
        .collect()
}

/// Threaded-equivalence check: [`N_THREADS`] threads over one shared
/// concurrent runtime (blocking single-flight policy), each running the
/// whole tuple sequence, must reproduce the fused path's per-tuple
/// observables, end with the fused path's cached bindings
/// instruction-for-instruction, and perform exactly the fused path's
/// number of specializations globally (single-flight suppresses every
/// duplicate). Error tuples must fail on every thread too, though the
/// message may carry a racer's single-flight wrapping.
fn check_threaded(
    case: &TestCase,
    src: &str,
    fused_obs: &[Obs],
    fused_path: &Path,
    fused_specs: u64,
) -> Result<(), Box<Violation>> {
    let program = catch_unwind(AssertUnwindSafe(|| {
        Compiler::with_config(OptConfig::all()).compile(src)
    }))
    .map_err(|p| Violation::Crash {
        path: "threaded",
        msg: format!("compiler panic: {}", panic_message(&p)),
    })?
    .map_err(|e| Violation::Compile {
        path: "threaded",
        msg: e.to_string(),
    })?;
    let shared = program.shared_runtime();
    let fused_code = normalized_code(fused_path.sess.cached_code());

    // Build every thread's session (and its deterministic data-memory
    // layout) up front; threads only run the tuple sequence.
    let mut thread_paths = Vec::with_capacity(N_THREADS);
    for _ in 0..N_THREADS {
        let mut sess = program.threaded_session(&shared);
        sess.set_step_limit(STEP_LIMIT);
        let arr_base = case.arr.as_ref().map(|init| {
            let base = sess.alloc(ARRAY_LEN);
            sess.mem().write_ints(base, init);
            base
        });
        let wbuf_base = case.wbuf.as_ref().map(|_| sess.alloc(ARRAY_LEN));
        if arr_base != fused_path.arr_base || wbuf_base != fused_path.wbuf_base {
            return Err(Box::new(Violation::ThreadMismatch {
                details: "allocation bases diverged from the fused path".into(),
            }));
        }
        thread_paths.push(Path {
            name: "threaded",
            sess,
            arr_base,
            wbuf_base,
        });
    }

    let snapshots: Vec<Result<NormalizedCode, Violation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = thread_paths
            .into_iter()
            .map(|mut p| {
                scope.spawn(move || {
                    for (t, tuple) in case.tuples.iter().enumerate() {
                        let o = p.invoke(case, tuple)?;
                        let want = &fused_obs[t];
                        let same = match (&want.result, &o.result) {
                            // Racers receive the winner's error via the
                            // single-flight wait, possibly rewrapped:
                            // require failure, not the exact message.
                            (Err(_), Err(_)) => true,
                            (Ok(a), Ok(b)) => match (a, b) {
                                (None, None) => true,
                                (Some(x), Some(y)) => value_eq(x, y),
                                _ => false,
                            },
                            _ => false,
                        };
                        if !same {
                            return Err(Violation::ThreadMismatch {
                                details: format!(
                                    "tuple {t}: fused {:?} vs threaded {:?}",
                                    want.result, o.result
                                ),
                            });
                        }
                        if want.result.is_err() {
                            continue;
                        }
                        if !values_eq(&want.output, &o.output) {
                            return Err(Violation::ThreadMismatch {
                                details: format!(
                                    "tuple {t}: fused output {} vs threaded {}",
                                    fmt_vals(&want.output),
                                    fmt_vals(&o.output)
                                ),
                            });
                        }
                        if want.wbuf != o.wbuf {
                            return Err(Violation::ThreadMismatch {
                                details: format!(
                                    "tuple {t}: fused wbuf {:?} vs threaded {:?}",
                                    want.wbuf, o.wbuf
                                ),
                            });
                        }
                    }
                    Ok(normalized_code(p.sess.cached_code()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|p| {
                    Err(Violation::Crash {
                        path: "threaded",
                        msg: panic_message(&p),
                    })
                })
            })
            .collect()
    });

    for snap in snapshots {
        let code = snap.map_err(Box::new)?;
        if code != fused_code {
            return Err(Box::new(Violation::ThreadMismatch {
                details: format!(
                    "shared cache diverged from fused cache:\n{code:#?}\nvs\n{fused_code:#?}"
                ),
            }));
        }
    }
    let stats = shared.stats();
    if stats.specializations != fused_specs {
        return Err(Box::new(Violation::ThreadMismatch {
            details: format!(
                "global specializations {} != fused {} (single-flight failed to \
                 suppress duplicates)",
                stats.specializations, fused_specs
            ),
        }));
    }
    if stats.single_flight_fallbacks != 0 {
        return Err(Box::new(Violation::ThreadMismatch {
            details: format!(
                "{} fallbacks under the blocking policy",
                stats.single_flight_fallbacks
            ),
        }));
    }
    Ok(())
}

/// Build a warm-started [`Path`] from a snapshot bundle string, with the
/// case's data memory laid out exactly as on the fused path.
fn warm_path(case: &TestCase, program: &Program, bundle: &str) -> Result<Path, Box<Violation>> {
    let mut sess = program
        .warm_start_from_str(bundle)
        .map_err(|e| Violation::WarmMismatch {
            details: format!("warm start rejected the bundle wholesale: {e}"),
        })?;
    sess.set_step_limit(STEP_LIMIT);
    let arr_base = case.arr.as_ref().map(|init| {
        let base = sess.alloc(ARRAY_LEN);
        sess.mem().write_ints(base, init);
        base
    });
    let wbuf_base = case.wbuf.as_ref().map(|_| sess.alloc(ARRAY_LEN));
    Ok(Path {
        name: "warm",
        sess,
        arr_base,
        wbuf_base,
    })
}

/// Re-run the whole tuple sequence on a warm-started path and require
/// the fused path's exact per-tuple observables (same config, same
/// thread: even error text must match).
fn warm_replay(case: &TestCase, p: &mut Path, fused_obs: &[Obs]) -> Result<(), Box<Violation>> {
    for (t, tuple) in case.tuples.iter().enumerate() {
        let o = p.invoke(case, tuple)?;
        let want = &fused_obs[t];
        let same = match (&want.result, &o.result) {
            (Err(a), Err(b)) => a == b,
            (Ok(a), Ok(b)) => match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => value_eq(x, y),
                _ => false,
            },
            _ => false,
        };
        if !same {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!("tuple {t}: fused {:?} vs warm {:?}", want.result, o.result),
            }));
        }
        if want.result.is_err() {
            continue;
        }
        if !values_eq(&want.output, &o.output) {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!(
                    "tuple {t}: fused output {} vs warm {}",
                    fmt_vals(&want.output),
                    fmt_vals(&o.output)
                ),
            }));
        }
        if want.wbuf != o.wbuf {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!("tuple {t}: fused wbuf {:?} vs warm {:?}", want.wbuf, o.wbuf),
            }));
        }
    }
    Ok(())
}

/// Snapshot / warm-start equivalence: serialize the fused session's code
/// cache, warm-start a fresh session from the bundle, and replay the
/// whole tuple sequence. Restored bindings must be counted exactly
/// (`cache_warm_loads` = snapshot size, zero rejects), the observables
/// must match the fused path's tuple for tuple, and — when the cold
/// cache saw neither evictions nor invalidations, so the snapshot is
/// complete — the warm run must perform **zero** specializations and end
/// with instruction-identical cached code. A second warm start from the
/// same bundle with one entry's config fingerprint corrupted must lose
/// exactly that entry (rejected per-entry and metered, never fatal) and
/// still compute exact results, re-specializing only on misses.
fn check_warm(
    case: &TestCase,
    src: &str,
    fused_obs: &[Obs],
    fused_path: &Path,
    fused_rt: &RtStats,
) -> Result<(), Box<Violation>> {
    let Some(bundle) = fused_path.sess.cache_bundle() else {
        return Ok(());
    };
    let program = catch_unwind(AssertUnwindSafe(|| {
        Compiler::with_config(OptConfig::all()).compile(src)
    }))
    .map_err(|p| Violation::Crash {
        path: "warm",
        msg: format!("compiler panic: {}", panic_message(&p)),
    })?
    .map_err(|e| Violation::Compile {
        path: "warm",
        msg: e.to_string(),
    })?;

    // With evictions or invalidations the snapshot is incomplete — some
    // once-specialized keys are no longer cached — so the guarantee
    // weakens from "zero re-specializations" to "no more than cold".
    let complete = fused_rt.cache_evictions == 0 && fused_rt.cache_invalidations == 0;
    let restored = fused_path.sess.cached_code().len() as u64;

    let mut p = warm_path(case, &program, &bundle)?;
    if p.arr_base != fused_path.arr_base || p.wbuf_base != fused_path.wbuf_base {
        return Err(Box::new(Violation::WarmMismatch {
            details: "allocation bases diverged from the fused path".into(),
        }));
    }
    {
        let rt = p.sess.rt_stats().expect("dynamic path");
        if rt.cache_warm_loads != restored || rt.cache_warm_rejects != 0 {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!(
                    "pristine bundle of {restored} entries restored {} with {} rejects",
                    rt.cache_warm_loads, rt.cache_warm_rejects
                ),
            }));
        }
    }
    warm_replay(case, &mut p, fused_obs)?;
    let warm_specs = p.sess.rt_stats().expect("dynamic path").specializations;
    if complete && warm_specs != 0 {
        return Err(Box::new(Violation::WarmMismatch {
            details: format!("warm run re-specialized {warm_specs} complete-snapshot keys"),
        }));
    }
    if warm_specs > fused_rt.specializations {
        return Err(Box::new(Violation::WarmMismatch {
            details: format!(
                "warm run specialized more than cold: {warm_specs} > {}",
                fused_rt.specializations
            ),
        }));
    }
    if complete {
        let warm_code = normalized_code(p.sess.cached_code());
        let fused_code = normalized_code(fused_path.sess.cached_code());
        if warm_code != fused_code {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!(
                    "restored cache diverged from fused cache:\n{warm_code:#?}\nvs\n{fused_code:#?}"
                ),
            }));
        }
    }

    // Corrupted-fingerprint variant: flip one bit in one entry's config
    // hash. Exactly that entry must be rejected (and metered); the
    // session still runs and produces exact results, re-specializing the
    // lost key on its first miss.
    if complete && restored > 0 {
        let mut corrupt = CacheBundle::parse(&bundle).map_err(|e| Violation::WarmMismatch {
            details: format!("own snapshot bundle failed to re-parse: {e}"),
        })?;
        corrupt.entries[0].config_hash ^= 1;
        let mut q = warm_path(case, &program, &corrupt.to_json())?;
        {
            let rt = q.sess.rt_stats().expect("dynamic path");
            if rt.cache_warm_rejects != 1 || rt.cache_warm_loads != restored - 1 {
                return Err(Box::new(Violation::WarmMismatch {
                    details: format!(
                        "one corrupted entry of {restored}: expected 1 reject / {} loads, \
                         got {} / {}",
                        restored - 1,
                        rt.cache_warm_rejects,
                        rt.cache_warm_loads
                    ),
                }));
            }
        }
        warm_replay(case, &mut q, fused_obs)?;
        let specs = q.sess.rt_stats().expect("dynamic path").specializations;
        if specs == 0 {
            return Err(Box::new(Violation::WarmMismatch {
                details: "rejected entry's key never re-specialized".into(),
            }));
        }
        if specs > fused_rt.specializations {
            return Err(Box::new(Violation::WarmMismatch {
                details: format!(
                    "corrupted warm run specialized more than cold: {specs} > {}",
                    fused_rt.specializations
                ),
            }));
        }
    }
    Ok(())
}

/// Fifth dynamic path: the fused configuration with the native x86-64
/// backend switched on (`OptConfig::native`).
///
/// Every tuple whose fused run completed must reproduce the fused
/// observables exactly — result, printed output, and writable-array
/// contents. Tuples whose fused run *failed* are skipped rather than
/// replayed: the dominant failure is the interpreter step limit, which
/// machine code deliberately does not meter, so replaying such a tuple
/// natively could run unboundedly. (Genuine faults — division by zero,
/// out-of-bounds — still surface on the tuples that complete before
/// them, and the workload-level differential test covers fault parity
/// directly.)
///
/// On hosts with the backend compiled in, the path must also have
/// installed machine code for every specialization: the generator's ISA
/// contains no instruction the encoder cannot lower, so a fallback here
/// is a lowering bug, not a coverage gap.
fn check_native(
    case: &TestCase,
    src: &str,
    fused_obs: &[Obs],
    fused_path: &Path,
) -> Result<(), Box<Violation>> {
    let native_cfg = OptConfig {
        native: true,
        ..OptConfig::all()
    };
    let mut p = build_path("native", case, src, native_cfg, true)?;
    if p.arr_base != fused_path.arr_base || p.wbuf_base != fused_path.wbuf_base {
        return Err(Box::new(Violation::NativeMismatch {
            tuple: 0,
            details: "allocation bases diverged from the fused path".into(),
        }));
    }

    for (t, tuple) in case.tuples.iter().enumerate() {
        if fused_obs[t].result.is_err() {
            continue;
        }
        let o = p.invoke(case, tuple)?;
        let f = &fused_obs[t];
        let same = match (&o.result, &f.result) {
            (Ok(None), Ok(None)) => true,
            (Ok(Some(a)), Ok(Some(b))) => value_eq(a, b),
            _ => false,
        };
        if !same {
            return Err(Box::new(Violation::NativeMismatch {
                tuple: t,
                details: format!("fused: {:?} vs native: {:?}", f.result, o.result),
            }));
        }
        if !values_eq(&f.output, &o.output) {
            return Err(Box::new(Violation::NativeMismatch {
                tuple: t,
                details: format!(
                    "output fused: {} vs native: {}",
                    fmt_vals(&f.output),
                    fmt_vals(&o.output)
                ),
            }));
        }
        if f.wbuf != o.wbuf {
            return Err(Box::new(Violation::NativeMismatch {
                tuple: t,
                details: format!("wbuf fused: {:?} vs native: {:?}", f.wbuf, o.wbuf),
            }));
        }
    }

    let rt = p.sess.rt_stats().expect("dynamic path");
    if rt.specializations > 0 && rt.native_installs + rt.native_fallbacks == 0 {
        return Err(Box::new(Violation::NativeMismatch {
            tuple: 0,
            details: format!(
                "specialized {} times but never attempted a native lowering",
                rt.specializations
            ),
        }));
    }
    #[cfg(all(target_arch = "x86_64", unix, not(dyc_no_native)))]
    if rt.specializations > 0 && rt.native_installs == 0 {
        return Err(Box::new(Violation::NativeMismatch {
            tuple: 0,
            details: format!(
                "specialized {} times but installed no machine code ({} fallbacks)",
                rt.specializations, rt.native_fallbacks
            ),
        }));
    }
    Ok(())
}

/// Rendered code with internal dispatch-site operands canonicalized to
/// `#`. Deferral can renumber internal promotion sites (they are
/// numbered in creation order, and the adaptive policy reorders — or
/// suppresses — first specializations), and a parent's specialized code
/// embeds its children's site ids as `Dispatch { point: N }` operands.
/// Those operands are the *only* legitimate byte difference between the
/// adaptive and always paths; everything else must still match exactly,
/// and the children themselves are compared by `(key, code)` membership.
fn canonicalize_internal_points(code: &str, n_entry: u32) -> String {
    let mut out = String::with_capacity(code.len());
    let mut rest = code;
    const PAT: &str = "point: ";
    while let Some(i) = rest.find(PAT) {
        let at = i + PAT.len();
        out.push_str(&rest[..at]);
        rest = &rest[at..];
        let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        match rest[..digits].parse::<u32>() {
            Ok(n) if n >= n_entry => out.push('#'),
            _ => out.push_str(&rest[..digits]),
        }
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

/// Sixth dynamic path: the fused configuration under the adaptive
/// specialization policy (`PolicyMode::Adaptive`).
///
/// Deferral must change only *when* code is generated, never what a
/// dispatch computes: every tuple whose fused run completed must
/// reproduce the fused observables exactly. Tuples whose fused run
/// failed are skipped for the same reason as on the native path — a
/// deferred dispatch runs the generic continuation, which spends more
/// interpreter steps than specialized code, so an error tuple near the
/// step limit could legitimately fail at a different point (the
/// adaptive path also runs with extra step headroom so a deferral can
/// never *introduce* a limit error on a tuple the fused run completed).
///
/// Two structural properties are checked afterwards:
///
/// * adaptive accounting balances: every dispatch miss was either
///   specialized, deferred, or throttled — exactly once;
/// * once the policy does specialize a binding, the code is
///   byte-identical to the always-specialize path's code for that
///   binding. Entry-site ids are static, so entry bindings are matched
///   by `(site, key)`; internal promotion sites can be *numbered*
///   differently when deferral reorders first specializations, so
///   internal bindings are matched by `(key, code)` membership —
///   checked only when the fused cache is complete (no evictions or
///   invalidations), since an evicted binding has no counterpart left
///   to compare against.
fn check_policy(
    case: &TestCase,
    src: &str,
    fused_obs: &[Obs],
    fused_path: &Path,
    fused_rt: &RtStats,
) -> Result<(), Box<Violation>> {
    let cfg = OptConfig::all().with_policy(PolicyMode::Adaptive);
    let mut p = build_path("policy", case, src, cfg, true)?;
    p.sess.set_step_limit(STEP_LIMIT.saturating_mul(8));
    if p.arr_base != fused_path.arr_base || p.wbuf_base != fused_path.wbuf_base {
        return Err(Box::new(Violation::PolicyMismatch {
            tuple: 0,
            details: "allocation bases diverged from the fused path".into(),
        }));
    }

    for (t, tuple) in case.tuples.iter().enumerate() {
        if fused_obs[t].result.is_err() {
            continue;
        }
        let o = p.invoke(case, tuple)?;
        let f = &fused_obs[t];
        let same = match (&o.result, &f.result) {
            (Ok(None), Ok(None)) => true,
            (Ok(Some(a)), Ok(Some(b))) => value_eq(a, b),
            _ => false,
        };
        if !same {
            return Err(Box::new(Violation::PolicyMismatch {
                tuple: t,
                details: format!("fused: {:?} vs adaptive: {:?}", f.result, o.result),
            }));
        }
        if !values_eq(&f.output, &o.output) {
            return Err(Box::new(Violation::PolicyMismatch {
                tuple: t,
                details: format!(
                    "output fused: {} vs adaptive: {}",
                    fmt_vals(&f.output),
                    fmt_vals(&o.output)
                ),
            }));
        }
        if f.wbuf != o.wbuf {
            return Err(Box::new(Violation::PolicyMismatch {
                tuple: t,
                details: format!("wbuf fused: {:?} vs adaptive: {:?}", f.wbuf, o.wbuf),
            }));
        }
    }

    let rt = p.sess.rt_stats().expect("dynamic path").clone();
    let vm = p.sess.stats();
    if rt.specializations + rt.policy_defers + rt.policy_throttled != vm.dispatch_misses {
        return Err(Box::new(Violation::PolicyMismatch {
            tuple: 0,
            details: format!(
                "adaptive accounting off: {} specs + {} defers + {} throttles != {} misses",
                rt.specializations, rt.policy_defers, rt.policy_throttled, vm.dispatch_misses
            ),
        }));
    }

    let n_entry = p.sess.n_entry_sites() as u32;
    let canon = |entries: Vec<(u32, Vec<u64>, String)>| -> Vec<(u32, Vec<u64>, String)> {
        entries
            .into_iter()
            .map(|(s, k, c)| (s, k, canonicalize_internal_points(&c, n_entry)))
            .collect()
    };
    let fused_code = canon(normalized_code(fused_path.sess.cached_code()));
    let policy_code = canon(normalized_code(p.sess.cached_code()));
    let fused_complete = fused_rt.cache_evictions == 0 && fused_rt.cache_invalidations == 0;
    for (site, key, code) in &policy_code {
        if *site < n_entry {
            // The always path specialized every miss, so when both
            // caches still hold a binding the bytes must agree. (An
            // entry the always path later *evicted* has no counterpart
            // to compare — absence is not a violation.)
            if let Some((_, _, want)) = fused_code.iter().find(|(s, k, _)| s == site && k == key) {
                if want != code {
                    return Err(Box::new(Violation::PolicyMismatch {
                        tuple: 0,
                        details: format!(
                            "site {site} key {key:?}: adaptive code diverged from always \
                             path:\n{code}\nvs\n{want}"
                        ),
                    }));
                }
            }
        } else if fused_complete
            && !fused_code
                .iter()
                .any(|(s, k, c)| *s >= n_entry && k == key && c == code)
        {
            return Err(Box::new(Violation::PolicyMismatch {
                tuple: 0,
                details: format!(
                    "internal site {site} key {key:?}: no byte-identical counterpart in \
                     the always path's cache"
                ),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn first_seeds_pass_the_oracle() {
        for seed in 0..25u64 {
            let case = generate_case(seed, GenConfig::default());
            match run_case(&case) {
                Ok(_) => {}
                Err(v) => panic!(
                    "seed {seed} violated the oracle: {v}\n--- source ---\n{}",
                    program_to_string(&case.program)
                ),
            }
        }
    }
}
