//! The fuzzing driver: generate → check → shrink → report.
//!
//! ```text
//! dyc-fuzz --seed 1 --iters 500          # a fuzzing run
//! dyc-fuzz --case-seed 12345678          # replay one case by its seed
//! ```
//!
//! Exit status is 0 iff every case passed the oracle. Each failure
//! prints a self-contained repro block: the minimized DyCL source, the
//! array contents and invocation tuples, the violation, and the
//! `--case-seed` replay command. Everything is deterministic: the same
//! seed always generates, fails, and minimizes identically.

use dyc_fuzz::{
    case_seed, generate_case, run_case, shrink, violation_key, GenConfig, ScalarArg, TestCase,
};
use dyc_lang::pretty::program_to_string;
use std::process::ExitCode;

/// Oracle evaluations the minimizer may spend per failing case.
const SHRINK_BUDGET: usize = 1500;

struct Args {
    seed: u64,
    iters: u64,
    case_seed: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        iters: 500,
        case_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = grab("--seed")?,
            "--iters" => args.iters = grab("--iters")?,
            "--case-seed" => args.case_seed = Some(grab("--case-seed")?),
            "--help" | "-h" => {
                println!(
                    "dyc-fuzz: differential fuzzing of the DyC-RS specialization paths\n\n\
                     USAGE: dyc-fuzz [--seed N] [--iters M] [--case-seed S]\n\n\
                     --seed N       base seed for the run (default 1)\n\
                     --iters M      number of generated cases (default 500)\n\
                     --case-seed S  replay a single case by its printed seed"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn fmt_tuples(tuples: &[Vec<ScalarArg>]) -> String {
    tuples
        .iter()
        .map(|t| {
            let parts: Vec<String> = t
                .iter()
                .map(|a| match a {
                    ScalarArg::I(v) => v.to_string(),
                    ScalarArg::F(v) => format!("{v:?}"),
                })
                .collect();
            format!("  ({})", parts.join(", "))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn report_failure(cs: u64, case: &TestCase, kind: &str, key: &str) {
    let minimized = shrink(case, key, SHRINK_BUDGET);
    // Re-derive the violation from the minimized case for the report.
    let detail = match run_case(&minimized) {
        Err(v) => v.to_string(),
        Ok(_) => "violation did not reproduce on minimized case (flaky?)".to_string(),
    };
    println!("\n================ ORACLE VIOLATION ================");
    println!("case seed : {cs}");
    println!("kind      : {kind}");
    println!("violation : {detail}");
    println!("replay    : cargo run --release -p dyc-fuzz -- --case-seed {cs}");
    println!("--- minimized source ---");
    println!("{}", program_to_string(&minimized.program));
    if let Some(arr) = &minimized.arr {
        println!("--- arr (read-only) ---\n  {arr:?}");
    }
    if let Some(wbuf) = &minimized.wbuf {
        println!("--- wbuf (initial) ---\n  {wbuf:?}");
    }
    println!("--- invocation tuples (scalar args) ---");
    println!("{}", fmt_tuples(&minimized.tuples));
    println!("==================================================");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dyc-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    let cfg = GenConfig::default();
    let case_seeds: Vec<u64> = match args.case_seed {
        Some(cs) => vec![cs],
        None => (0..args.iters).map(|i| case_seed(args.seed, i)).collect(),
    };

    let mut failures = 0u64;
    let mut skipped = 0u64;
    let mut cov_specialized = 0u64;
    let mut cov_unrolled = 0u64;
    let mut cov_promoted = 0u64;
    let mut cov_templated = 0u64;
    let mut cov_indexed = 0u64;
    let mut cov_unchecked = 0u64;
    let mut cov_polyvariant = 0u64;
    let mut cov_static_loads = 0u64;
    let mut cov_static_calls = 0u64;
    let mut cov_folded = 0u64;
    let mut cov_zero_copy = 0u64;

    for (i, cs) in case_seeds.iter().enumerate() {
        let case = generate_case(*cs, cfg);
        match run_case(&case) {
            Ok(report) => {
                if let Some(why) = report.skipped {
                    skipped += 1;
                    if args.case_seed.is_some() {
                        println!("case {cs}: skipped ({why})");
                    }
                } else {
                    let c = report.coverage;
                    cov_specialized += c.specialized as u64;
                    cov_unrolled += c.unrolled as u64;
                    cov_promoted += c.promoted as u64;
                    cov_templated += c.templated as u64;
                    cov_indexed += c.indexed_dispatch as u64;
                    cov_unchecked += c.unchecked_dispatch as u64;
                    cov_polyvariant += c.polyvariant as u64;
                    cov_static_loads += c.static_loads as u64;
                    cov_static_calls += c.static_calls as u64;
                    cov_folded += c.branches_folded as u64;
                    cov_zero_copy += c.zero_copy_folds as u64;
                }
            }
            Err(v) => {
                failures += 1;
                // Shrinking preserves the key, re-deriving it through the
                // panic-catching wrapper in case the violation only shows
                // up as a crash there.
                let key = violation_key(&case).unwrap_or_else(|| v.kind().to_string());
                report_failure(*cs, &case, v.kind(), &key);
            }
        }
        if args.case_seed.is_none() && (i + 1) % 100 == 0 {
            println!("... {}/{} cases", i + 1, case_seeds.len());
        }
    }

    let total = case_seeds.len() as u64;
    println!("\n==== dyc-fuzz summary ====");
    println!("cases     : {total}");
    println!("failures  : {failures}");
    println!("skipped   : {skipped} (non-finite float observables)");
    println!("coverage  : specialized {cov_specialized}, unrolled {cov_unrolled}, promoted {cov_promoted}, templated {cov_templated}");
    println!("            indexed-dispatch {cov_indexed}, unchecked-dispatch {cov_unchecked}, polyvariant {cov_polyvariant}");
    println!("            static-loads {cov_static_loads}, static-calls {cov_static_calls}, branches-folded {cov_folded}, zero/copy-folds {cov_zero_copy}");

    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
