//! Stage-time **copy-and-patch template fusion**.
//!
//! PR 1 turned run-time analysis into a flat GE program, but the executor
//! still walked that program one `EmitHole` at a time, re-running the full
//! optimizing emitter — operand classification, rename-table probes,
//! zero/copy-fold checks — per instruction. This pass finishes the job
//! §2.1 describes ("copy the pre-optimized templates"): each *maximal run*
//! of consecutive `EmitHole` ops whose emission shape is decidable from
//! the division's static-variable **set** alone is fused into one
//! [`Template`] — a prebuilt contiguous instruction vector plus a side
//! table of hole descriptors ([`PatchOp`]). At run time the executor
//! copies the whole block (`extend_from_slice`) and replays the patch
//! list; no per-instruction classification, no rename-map traffic.
//!
//! The fusion pass is an abstract interpretation of the emitter over the
//! division body:
//!
//! * The static-variable *set* is replayed exactly as lowering evolved it
//!   (an `Eval` inserts its destination, an emitted def removes it, a
//!   demotion removes its variables). Set membership decides which
//!   operands are immediate holes filled from the run-time store.
//! * The rename table of dynamic zero/copy propagation is tracked
//!   abstractly ([`AbsAlias`]): an entry aliases another variable's
//!   register, a stage-time literal, or a store value captured at a known
//!   point. Register numbers themselves are *not* baked — register holes
//!   name the vreg and are resolved through the emitter's first-touch
//!   allocator at patch time, in the same order the unfused path would
//!   touch them ([`PatchOp::Touch`]), which is what keeps the template
//!   output byte-identical.
//! * Emit-time special cases whose firing depends on a run-time value
//!   (the §2.2.7 zero/copy folds and strength reductions on an `IAlu`
//!   immediate) become [`Guard`]s: the template preassumes "no special
//!   case", the executor checks the guards up front, and a failing guard
//!   falls back to the exact pre-fusion per-instruction path.
//! * Anything whose shape stays value-dependent (scratch-register
//!   materialization of unknown constants, run-time constant folding,
//!   strength-reduced expansions) simply stays an unfused `EmitHole`,
//!   splitting the run. When a value-dependent *fold* may or may not
//!   insert a rename entry, only the destination vreg becomes
//!   `AbsVal::Unknown`: downstream ops reading it stay unfused, while
//!   runs over unrelated vregs keep fusing.
//!
//! Runs of fewer than two templatable emits are left alone — a template
//! would buy nothing over a single hole-filling emit.
//!
//! At run time the copied block flows through the emitter's pluggable
//! `CodeSink` backend (`dyc-rt`'s `sink` module) like any other
//! emission: each patched instruction is pushed with a `templated` flag
//! and its filled-hole count, so an installing sink (`VmSink`) receives
//! the identical byte stream the unfused path would produce, while a
//! serializing sink (`ArtifactSink`) additionally records which
//! instructions were template copies and where their holes were — the
//! per-unit hole descriptors carried by persisted `CodeArtifact`s.

use crate::ge::{GeDivision, GeFunc, GeOp};
use dyc_bta::OptConfig;
use dyc_ir::inst::{Callee, Inst};
use dyc_ir::VReg;
use dyc_vm::{Cc, FAluOp, FuncId, IAluOp, Instr, Operand, UnOp};
use std::collections::{BTreeSet, HashMap};

/// Where a patch writes inside a template instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The destination register (including a call's `Some(dst)`).
    Dst,
    /// ALU/compare operand `a`.
    A,
    /// ALU/compare operand `b` (register or immediate form).
    B,
    /// `src` of moves, unary ops, and stores.
    Src,
    /// `base` of loads/stores.
    Base,
    /// `idx` of loads/stores (register or immediate form).
    Idx,
    /// The immediate of `MovI`/`MovF`.
    Imm,
    /// Call argument `n`.
    Arg(u16),
}

/// One hole descriptor. Patches are replayed **in order** at run time;
/// `Reg` and `Touch` drive the emitter's first-touch register allocator in
/// exactly the order the unfused path would, which is what makes template
/// output byte-identical to per-instruction emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchOp {
    /// Write `reg_of(v)` into `slot` of template instruction `at`.
    Reg {
        /// Template-relative instruction index.
        at: u32,
        /// Which operand of that instruction to patch.
        slot: Slot,
        /// The virtual register whose allocation fills the hole.
        v: VReg,
    },
    /// Write the static store's integer value of `var` into `slot`.
    ImmI {
        /// Template-relative instruction index.
        at: u32,
        /// Which operand of that instruction to patch.
        slot: Slot,
        /// The static variable whose store value fills the hole.
        var: VReg,
    },
    /// Write the static store's float value of `var` into the `MovF`
    /// immediate of instruction `at`.
    ImmF {
        /// Template-relative instruction index.
        at: u32,
        /// The static variable whose store value fills the hole.
        var: VReg,
    },
    /// Call `reg_of(v)` for its allocation side effect only — a register
    /// the unfused path would first-touch here without leaving a hole.
    Touch {
        /// The virtual register to first-touch.
        v: VReg,
    },
}

/// A value guard checked before a template is copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// Passes iff [`ibin_special_case`] is false for the store value of
    /// `var`: no zero/copy fold or strength reduction fires for this
    /// operand, so the prebuilt `IAlu … Imm` shape is exactly what the
    /// optimizing emitter would produce.
    IBinFoldFree {
        /// The ALU operation the template prebuilt.
        op: IAluOp,
        /// The static operand whose run-time value is checked.
        var: VReg,
    },
}

/// Stage-time abstraction of one rename-table value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsAlias {
    /// Aliases `reg_of(v)` — resolved through the run-time allocator.
    Reg(VReg),
    /// A stage-time integer literal.
    LitI(i64),
    /// A stage-time float literal.
    LitF(f64),
    /// The run-time static-store value of `v`, captured where the alias
    /// was created. Sound because the store only shrinks within a run,
    /// and the pass downgrades these to opaque once `v` is killed.
    FromStore(VReg),
}

/// Net rename/store updates a successful template applies after its
/// patch loop, replacing the per-instruction bookkeeping of the unfused
/// path. Kills run first, then inserts, then store removals (inserts may
/// read the pre-kill store).
#[derive(Debug, Clone)]
pub struct TemplateEffects {
    /// Rename entries removed by the run (sorted).
    pub rename_kill: Vec<VReg>,
    /// Rename entries inserted/overwritten by the run (sorted by key).
    pub rename_set: Vec<(VReg, AbsAlias)>,
    /// Static-store entries consumed by dynamic definitions (sorted).
    pub store_kill: Vec<VReg>,
}

/// One prebuilt template instruction.
#[derive(Debug, Clone)]
pub struct TInstr {
    /// The instruction, holes zeroed until patched.
    pub ins: Instr,
    /// Candidate for dead-assignment elimination (mirrors what the
    /// unfused emitter would have marked).
    pub deletable: bool,
    /// The instruction's [`dyc_vm::instr_shape`], pre-computed here at
    /// static compile time. Hole patching substitutes registers and
    /// immediates but never changes an operand's kind, so every
    /// run-time instance of this template instruction shares the
    /// shape — which is exactly what lets a native backend lower it by
    /// copying prebuilt bytes and patching displacement/immediate
    /// holes instead of re-encoding.
    pub shape: u16,
}

/// A fused run of emits: copy `instrs`, replay `patches`, apply
/// `effects` — after `guards` all pass.
#[derive(Debug, Clone)]
pub struct Template {
    /// Value guards, checked up front against the run-time store.
    pub guards: Vec<Guard>,
    /// The contiguous prebuilt instruction block.
    pub instrs: Vec<TInstr>,
    /// Hole descriptors, replayed in order.
    pub patches: Vec<PatchOp>,
    /// Net rename/store bookkeeping of the whole run.
    pub effects: TemplateEffects,
    /// The original `EmitHole` payloads: on guard failure the executor
    /// re-emits these per-instruction — the exact pre-fusion path.
    pub fallback: Vec<(Inst, Vec<VReg>)>,
    /// Zero/copy-propagation folds baked into this template (the stat
    /// delta the unfused path would have counted).
    pub zcp_folds: u64,
}

/// Does the optimizing emitter treat `k` as a special case for
/// `a <op> k`? Mirrors `emit_ibin` exactly: the §2.2.7 zero/copy folds
/// when `zcp` is on, the simple strength reductions when only `sr` is on,
/// and the power-of-two expansions whenever `sr` is on. Templates assume
/// the answer is *no*; a run-time *yes* fails the guard.
pub fn ibin_special_case(zcp: bool, sr: bool, op: IAluOp, k: i64) -> bool {
    if zcp {
        let fold = matches!(
            (op, k),
            (IAluOp::Mul, 0 | 1)
                | (IAluOp::Div | IAluOp::Rem, 1)
                | (
                    IAluOp::Add
                        | IAluOp::Sub
                        | IAluOp::Or
                        | IAluOp::Xor
                        | IAluOp::And
                        | IAluOp::Shl
                        | IAluOp::Shr,
                    0
                )
        );
        if fold {
            return true;
        }
    } else if sr && matches!((op, k), (IAluOp::Mul, 0 | 1) | (IAluOp::Div, 1)) {
        return true;
    }
    sr && k > 1
        && (k as u64).is_power_of_two()
        && matches!(op, IAluOp::Mul | IAluOp::Div | IAluOp::Rem)
}

/// Fuse every division of `gef` in place.
pub fn fuse_ge_func(gef: &mut GeFunc, cfg: &OptConfig) {
    let fv = std::mem::take(&mut gef.float_vreg);
    for d in &mut gef.divisions {
        fuse_division(d, cfg, &fv);
    }
    gef.float_vreg = fv;
}

/// Abstract rename-table entry.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    Known(AbsAlias),
    /// The entry exists and holds a constant, but its value is no longer
    /// derivable at stage time (its source store slot was killed or
    /// rewritten after capture). The concrete table is still correct —
    /// opaqueness only blocks *baking* further reads of it.
    Opaque,
    /// Whether the entry exists at all is value-dependent: an upstream
    /// fold may or may not have fired (e.g. a float multiply by a
    /// promoted constant that might be 0.0). Any op consuming such a
    /// vreg has an undecidable emission shape and stays unfused, but —
    /// unlike a whole-table taint — ops on unrelated vregs still fuse.
    Unknown,
}

/// Abstract resolved operand (mirrors the emitter's `Opnd`).
#[derive(Debug, Clone, Copy)]
enum AOp {
    R {
        v: VReg,
        fresh: bool,
    },
    KiLit(i64),
    KiVar(VReg),
    KfLit(f64),
    KfVar(VReg),
    Opaque,
    /// Resolution of a vreg whose [`AbsVal::Unknown`] entry makes even
    /// the operand *kind* (register vs. constant) undecidable.
    Unk,
}

impl AOp {
    fn is_r(self) -> bool {
        matches!(self, AOp::R { .. })
    }
    /// Would the concrete resolution be `Opnd::KI(..)`? (`Opaque` only
    /// arises for constant-valued entries, so on an integer operand it is
    /// a `KI` at run time.)
    fn is_ki(self) -> bool {
        matches!(self, AOp::KiLit(_) | AOp::KiVar(_) | AOp::Opaque)
    }
    fn is_kf(self) -> bool {
        matches!(self, AOp::KfLit(_) | AOp::KfVar(_))
    }
    fn alias(self) -> AbsAlias {
        match self {
            AOp::R { v, .. } => AbsAlias::Reg(v),
            AOp::KiLit(k) => AbsAlias::LitI(k),
            AOp::KfLit(k) => AbsAlias::LitF(k),
            AOp::KiVar(w) | AOp::KfVar(w) => AbsAlias::FromStore(w),
            AOp::Opaque | AOp::Unk => unreachable!("never re-aliased"),
        }
    }
}

/// The planned template fragment of one fusable op.
#[derive(Default)]
struct OpPlan {
    instrs: Vec<TInstr>,
    patches: Vec<PatchOp>,
    guards: Vec<Guard>,
    zcp_folds: u64,
}

impl OpPlan {
    fn push_ins(&mut self, ins: Instr, deletable: bool) -> u32 {
        let at = self.instrs.len() as u32;
        let shape = dyc_vm::instr_shape(&ins);
        self.instrs.push(TInstr {
            ins,
            deletable,
            shape,
        });
        at
    }
    fn reg(&mut self, at: u32, slot: Slot, v: VReg) {
        self.patches.push(PatchOp::Reg { at, slot, v });
    }
    fn immi(&mut self, at: u32, slot: Slot, var: VReg) {
        self.patches.push(PatchOp::ImmI { at, slot, var });
    }
}

fn downgrade(ren: &mut HashMap<VReg, AbsVal>, killed: VReg) {
    for a in ren.values_mut() {
        if *a == AbsVal::Known(AbsAlias::FromStore(killed)) {
            *a = AbsVal::Opaque;
        }
    }
}

fn resolve_abs(u: VReg, set: &BTreeSet<VReg>, ren: &HashMap<VReg, AbsVal>, fv: &[bool]) -> AOp {
    let isf = |v: VReg| fv.get(v.0 as usize).copied().unwrap_or(false);
    if set.contains(&u) {
        return if isf(u) { AOp::KfVar(u) } else { AOp::KiVar(u) };
    }
    match ren.get(&u) {
        Some(AbsVal::Known(AbsAlias::Reg(w))) => AOp::R {
            v: *w,
            fresh: false,
        },
        Some(AbsVal::Known(AbsAlias::LitI(k))) => AOp::KiLit(*k),
        Some(AbsVal::Known(AbsAlias::LitF(k))) => AOp::KfLit(*k),
        Some(AbsVal::Known(AbsAlias::FromStore(w))) => {
            if isf(*w) {
                AOp::KfVar(*w)
            } else {
                AOp::KiVar(*w)
            }
        }
        Some(AbsVal::Opaque) => AOp::Opaque,
        Some(AbsVal::Unknown) => AOp::Unk,
        None => AOp::R { v: u, fresh: true },
    }
}

/// Mirror of the emitter's `fold_to` for stage-time-known results: with
/// zero/copy propagation the destination is renamed (no code, one fold
/// counted); otherwise the literal is emitted as a constant move.
fn plan_fold_to(
    dst: VReg,
    k: AbsAlias,
    zcp: bool,
    ren: &mut HashMap<VReg, AbsVal>,
    plan: &mut OpPlan,
) -> bool {
    if zcp {
        plan.zcp_folds += 1;
        ren.insert(dst, AbsVal::Known(k));
        return true;
    }
    let at = match k {
        AbsAlias::LitI(v) => plan.push_ins(Instr::MovI { dst: 0, imm: v }, true),
        AbsAlias::LitF(v) => plan.push_ins(Instr::MovF { dst: 0, imm: v }, true),
        _ => unreachable!("stage-time fold results are literals"),
    };
    plan.reg(at, Slot::Dst, dst);
    true
}

fn eval_ialu(op: IAluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        IAluOp::Add => a.wrapping_add(b),
        IAluOp::Sub => a.wrapping_sub(b),
        IAluOp::Mul => a.wrapping_mul(b),
        IAluOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        IAluOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        IAluOp::And => a & b,
        IAluOp::Or => a | b,
        IAluOp::Xor => a ^ b,
        IAluOp::Shl => a.wrapping_shl(b as u32 & 63),
        IAluOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

fn eval_falu(op: FAluOp, a: f64, b: f64) -> f64 {
    match op {
        FAluOp::Add => a + b,
        FAluOp::Sub => a - b,
        FAluOp::Mul => a * b,
        FAluOp::Div => a / b,
    }
}

fn eval_icmp(cc: Cc, a: i64, b: i64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

fn eval_fcmp(cc: Cc, a: f64, b: f64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

fn eval_un(op: UnOp, v: AbsAlias) -> AbsAlias {
    match (op, v) {
        (UnOp::NegI, AbsAlias::LitI(i)) => AbsAlias::LitI(i.wrapping_neg()),
        (UnOp::NotI, AbsAlias::LitI(i)) => AbsAlias::LitI(!i),
        (UnOp::NegF, AbsAlias::LitF(f)) => AbsAlias::LitF(-f),
        (UnOp::IToF, AbsAlias::LitI(i)) => AbsAlias::LitF(i as f64),
        (UnOp::FToI, AbsAlias::LitF(f)) => AbsAlias::LitI(f as i64),
        _ => unreachable!("ill-typed unary literal fold"),
    }
}

/// Plan one `EmitHole` against the abstract state, mutating the state the
/// way the concrete emitter would. Returns `None` if the op's emission
/// shape is value-dependent (it stays an unfused `EmitHole`).
#[allow(clippy::too_many_lines)]
fn plan_emit_hole(
    inst: &Inst,
    reads_after: &[VReg],
    set: &mut BTreeSet<VReg>,
    ren: &mut HashMap<VReg, AbsVal>,
    fv: &[bool],
    cfg: &OptConfig,
) -> Option<OpPlan> {
    let zcp = cfg.zero_copy_propagation;
    let sr = cfg.strength_reduction;
    let isf = |v: VReg| fv.get(v.0 as usize).copied().unwrap_or(false);

    let uses = inst.uses();
    let aops: Vec<AOp> = uses.iter().map(|u| resolve_abs(*u, set, ren, fv)).collect();

    let mut plan = OpPlan::default();
    for (u, a) in uses.iter().zip(&aops) {
        if matches!(a, AOp::R { fresh: true, .. }) {
            plan.patches.push(PatchOp::Touch { v: *u });
        }
    }

    // Destination prologue (mirrors `emit_dynamic`): allocate the target
    // register, materialize stale aliases of it that are still read, then
    // drop the old bindings. `reg_of` is injective per vreg, so "aliases
    // the destination register" is exactly "aliases `Reg(d)`".
    if let Some(d) = inst.def() {
        plan.patches.push(PatchOp::Touch { v: d });
        let mut stale: Vec<VReg> = ren
            .iter()
            .filter(|(v, a)| **v != d && **a == AbsVal::Known(AbsAlias::Reg(d)))
            .map(|(v, _)| *v)
            .collect();
        stale.sort();
        for v in stale {
            ren.remove(&v);
            if reads_after.binary_search(&v).is_ok() {
                let ins = if isf(v) {
                    Instr::FMov { dst: 0, src: 0 }
                } else {
                    Instr::Mov { dst: 0, src: 0 }
                };
                let at = plan.push_ins(ins, true);
                plan.reg(at, Slot::Dst, v);
                plan.reg(at, Slot::Src, d);
            }
        }
        ren.remove(&d);
        set.remove(&d);
        downgrade(ren, d);
    }

    // An operand whose rename entry is itself undecidable: the emission
    // shape can't be planned, and for the op kinds that can fold, whether
    // the destination gains a rename entry can't be decided either.
    // (Loads, stores, and calls never rename their destination.)
    if aops.iter().any(|a| matches!(a, AOp::Unk)) {
        if let Some(d) = inst.def() {
            if !matches!(
                inst,
                Inst::Call { .. } | Inst::Load { .. } | Inst::Store { .. }
            ) {
                ren.insert(d, AbsVal::Unknown);
            }
        }
        return None;
    }

    let ok = match inst {
        Inst::ConstI { dst, v } => {
            if zcp {
                ren.insert(*dst, AbsVal::Known(AbsAlias::LitI(*v)));
            } else {
                let at = plan.push_ins(Instr::MovI { dst: 0, imm: *v }, true);
                plan.reg(at, Slot::Dst, *dst);
            }
            true
        }
        Inst::ConstF { dst, v } => {
            if zcp {
                ren.insert(*dst, AbsVal::Known(AbsAlias::LitF(*v)));
            } else {
                let at = plan.push_ins(Instr::MovF { dst: 0, imm: *v }, true);
                plan.reg(at, Slot::Dst, *dst);
            }
            true
        }
        Inst::Copy { dst, .. } => match aops[0] {
            AOp::R { v: w, .. } => {
                if w == *dst {
                    true // self-move after a collapsed chain: no code
                } else if zcp {
                    plan.zcp_folds += 1;
                    ren.insert(*dst, AbsVal::Known(AbsAlias::Reg(w)));
                    true
                } else {
                    let ins = if isf(*dst) {
                        Instr::FMov { dst: 0, src: 0 }
                    } else {
                        Instr::Mov { dst: 0, src: 0 }
                    };
                    let at = plan.push_ins(ins, true);
                    plan.reg(at, Slot::Dst, *dst);
                    plan.reg(at, Slot::Src, w);
                    true
                }
            }
            AOp::Opaque => {
                if zcp {
                    // The fold fires (source is a constant), but the
                    // copied value is no longer derivable here.
                    ren.insert(*dst, AbsVal::Opaque);
                }
                false
            }
            k => {
                if zcp {
                    plan.zcp_folds += 1;
                    ren.insert(*dst, AbsVal::Known(k.alias()));
                } else {
                    let at = match k {
                        AOp::KiLit(v) => plan.push_ins(Instr::MovI { dst: 0, imm: v }, true),
                        AOp::KfLit(v) => plan.push_ins(Instr::MovF { dst: 0, imm: v }, true),
                        AOp::KiVar(w) => {
                            let at = plan.push_ins(Instr::MovI { dst: 0, imm: 0 }, true);
                            plan.immi(at, Slot::Imm, w);
                            at
                        }
                        AOp::KfVar(w) => {
                            let at = plan.push_ins(Instr::MovF { dst: 0, imm: 0.0 }, true);
                            plan.patches.push(PatchOp::ImmF { at, var: w });
                            at
                        }
                        AOp::R { .. } | AOp::Opaque | AOp::Unk => unreachable!(),
                    };
                    plan.reg(at, Slot::Dst, *dst);
                }
                true
            }
        },
        Inst::IBin { op, dst, .. } => {
            let (ra, rb) = (aops[0], aops[1]);
            if !ra.is_r() && !rb.is_r() {
                // Both operands constant: the unfused path folds on their
                // run-time values.
                if let (AOp::KiLit(x), AOp::KiLit(y)) = (ra, rb) {
                    if let Some(v) = eval_ialu(*op, x, y) {
                        plan_fold_to(*dst, AbsAlias::LitI(v), zcp, ren, &mut plan)
                    } else {
                        // Division by zero falls through to scratch
                        // materialization (and a later zcp recheck on the
                        // literal, which cannot fire for k = 0 on Div/Rem).
                        false
                    }
                } else {
                    // Whether the fold succeeds — and whether a rename
                    // entry appears — depends on run-time values (a
                    // division by zero falls through to emission).
                    if zcp {
                        ren.insert(*dst, AbsVal::Unknown);
                    }
                    false
                }
            } else if ra.is_kf() || rb.is_kf() {
                false // ill-typed; the concrete path would scratch-materialize
            } else {
                // Commutative normalization puts a known operand right.
                let commutative = matches!(
                    op,
                    IAluOp::Add | IAluOp::Mul | IAluOp::And | IAluOp::Or | IAluOp::Xor
                );
                let (ra, rb) = if commutative && ra.is_ki() {
                    (rb, ra)
                } else {
                    (ra, rb)
                };
                match rb {
                    AOp::KiLit(k) => {
                        let AOp::R { v: av, .. } = ra else {
                            unreachable!("both-constant case handled above")
                        };
                        let mut done = None;
                        if zcp {
                            let fold = match op {
                                IAluOp::Mul if k == 0 => Some(AbsAlias::LitI(0)),
                                IAluOp::Mul | IAluOp::Div if k == 1 => Some(AbsAlias::Reg(av)),
                                IAluOp::Add | IAluOp::Sub | IAluOp::Or | IAluOp::Xor if k == 0 => {
                                    Some(AbsAlias::Reg(av))
                                }
                                IAluOp::And if k == 0 => Some(AbsAlias::LitI(0)),
                                IAluOp::Rem if k == 1 => Some(AbsAlias::LitI(0)),
                                IAluOp::Shl | IAluOp::Shr if k == 0 => Some(AbsAlias::Reg(av)),
                                _ => None,
                            };
                            if let Some(f) = fold {
                                plan.zcp_folds += 1;
                                ren.insert(*dst, AbsVal::Known(f));
                                done = Some(true);
                            }
                        } else if sr && matches!((op, k), (IAluOp::Mul, 0 | 1) | (IAluOp::Div, 1)) {
                            // Simple strength reduction writes the
                            // destination itself; left to the unfused path.
                            done = Some(false);
                        }
                        if done.is_none()
                            && sr
                            && k > 1
                            && (k as u64).is_power_of_two()
                            && matches!(op, IAluOp::Mul | IAluOp::Div | IAluOp::Rem)
                        {
                            done = Some(false); // pow-2 expansion: unfused
                        }
                        done.unwrap_or_else(|| {
                            let at = plan.push_ins(
                                Instr::IAlu {
                                    op: *op,
                                    dst: 0,
                                    a: 0,
                                    b: Operand::Imm(k),
                                },
                                true,
                            );
                            plan.reg(at, Slot::A, av);
                            plan.reg(at, Slot::Dst, *dst);
                            true
                        })
                    }
                    AOp::KiVar(w) => {
                        let AOp::R { v: av, .. } = ra else {
                            unreachable!("both-constant case handled above")
                        };
                        // Whether a fold or strength reduction fires
                        // depends on the run-time value: guard it.
                        if zcp || (sr && matches!(op, IAluOp::Mul | IAluOp::Div | IAluOp::Rem)) {
                            plan.guards.push(Guard::IBinFoldFree { op: *op, var: w });
                        }
                        let at = plan.push_ins(
                            Instr::IAlu {
                                op: *op,
                                dst: 0,
                                a: 0,
                                b: Operand::Imm(0),
                            },
                            true,
                        );
                        plan.reg(at, Slot::A, av);
                        plan.immi(at, Slot::B, w);
                        plan.reg(at, Slot::Dst, *dst);
                        true
                    }
                    AOp::Opaque => {
                        // A constant immediate whose value is opaque: the
                        // fold decision is value-dependent.
                        if zcp {
                            ren.insert(*dst, AbsVal::Unknown);
                        }
                        false
                    }
                    AOp::R { v: bv, .. } => {
                        if let AOp::R { v: av, .. } = ra {
                            let at = plan.push_ins(
                                Instr::IAlu {
                                    op: *op,
                                    dst: 0,
                                    a: 0,
                                    b: Operand::Reg(0),
                                },
                                true,
                            );
                            plan.reg(at, Slot::A, av);
                            plan.reg(at, Slot::B, bv);
                            plan.reg(at, Slot::Dst, *dst);
                            true
                        } else {
                            // Known left operand of a non-commutative op:
                            // scratch materialization.
                            false
                        }
                    }
                    AOp::KfLit(_) | AOp::KfVar(_) => unreachable!("filtered above"),
                    AOp::Unk => unreachable!("unknown operands bail out before planning"),
                }
            }
        }
        Inst::FBin { op, dst, .. } => {
            let (ra, rb) = (aops[0], aops[1]);
            let a_k = !ra.is_r();
            let b_k = !rb.is_r();
            if a_k && b_k {
                if let (AOp::KfLit(x), AOp::KfLit(y)) = (ra, rb) {
                    plan_fold_to(
                        *dst,
                        AbsAlias::LitF(eval_falu(*op, x, y)),
                        zcp,
                        ren,
                        &mut plan,
                    )
                } else {
                    // The fold always fires on two constants, so the
                    // entry definitely exists — its value is just unknown.
                    if zcp {
                        ren.insert(*dst, AbsVal::Opaque);
                    }
                    false
                }
            } else {
                let (ra, rb) = if matches!(op, FAluOp::Add | FAluOp::Mul) && a_k {
                    (rb, ra)
                } else {
                    (ra, rb)
                };
                match rb {
                    AOp::KfLit(k) => {
                        let mut folded = false;
                        if zcp {
                            let fold = match op {
                                FAluOp::Mul if k == 0.0 => Some(AbsAlias::LitF(0.0)),
                                FAluOp::Mul | FAluOp::Div if k == 1.0 => Some(ra.alias()),
                                FAluOp::Add | FAluOp::Sub if k == 0.0 => Some(ra.alias()),
                                _ => None,
                            };
                            if let Some(f) = fold {
                                plan.zcp_folds += 1;
                                ren.insert(*dst, AbsVal::Known(f));
                                folded = true;
                            }
                        }
                        // No fold: the float ALU has no immediate form, so
                        // the constant is scratch-materialized — unfused.
                        folded
                    }
                    AOp::KfVar(_) | AOp::Opaque => {
                        // Fold occurrence is value-dependent, and the
                        // float ALU has no immediate form to guard into.
                        if zcp {
                            ren.insert(*dst, AbsVal::Unknown);
                        }
                        false
                    }
                    AOp::R { v: bv, .. } => {
                        if let AOp::R { v: av, .. } = ra {
                            let at = plan.push_ins(
                                Instr::FAlu {
                                    op: *op,
                                    dst: 0,
                                    a: 0,
                                    b: 0,
                                },
                                true,
                            );
                            plan.reg(at, Slot::A, av);
                            plan.reg(at, Slot::B, bv);
                            plan.reg(at, Slot::Dst, *dst);
                            true
                        } else {
                            false
                        }
                    }
                    AOp::KiLit(_) | AOp::KiVar(_) => false, // ill-typed
                    AOp::Unk => unreachable!("unknown operands bail out before planning"),
                }
            }
        }
        Inst::ICmp { cc, dst, .. } => {
            let (ra, rb) = (aops[0], aops[1]);
            if ra.is_ki() && rb.is_ki() {
                if let (AOp::KiLit(x), AOp::KiLit(y)) = (ra, rb) {
                    plan_fold_to(
                        *dst,
                        AbsAlias::LitI(eval_icmp(*cc, x, y) as i64),
                        zcp,
                        ren,
                        &mut plan,
                    )
                } else {
                    // The fold fires unconditionally on two constants.
                    if zcp {
                        ren.insert(*dst, AbsVal::Opaque);
                    }
                    false
                }
            } else if let (AOp::R { v: av, .. }, true) = (ra, rb.is_ki()) {
                match rb {
                    AOp::KiLit(y) => {
                        let at = plan.push_ins(
                            Instr::ICmp {
                                cc: *cc,
                                dst: 0,
                                a: 0,
                                b: Operand::Imm(y),
                            },
                            true,
                        );
                        plan.reg(at, Slot::A, av);
                        plan.reg(at, Slot::Dst, *dst);
                        true
                    }
                    AOp::KiVar(w) => {
                        let at = plan.push_ins(
                            Instr::ICmp {
                                cc: *cc,
                                dst: 0,
                                a: 0,
                                b: Operand::Imm(0),
                            },
                            true,
                        );
                        plan.reg(at, Slot::A, av);
                        plan.immi(at, Slot::B, w);
                        plan.reg(at, Slot::Dst, *dst);
                        true
                    }
                    _ => false, // opaque immediate
                }
            } else if let (true, AOp::R { v: bv, .. }) = (ra.is_ki(), rb) {
                match ra {
                    AOp::KiLit(x) => {
                        let at = plan.push_ins(
                            Instr::ICmp {
                                cc: cc.swapped(),
                                dst: 0,
                                a: 0,
                                b: Operand::Imm(x),
                            },
                            true,
                        );
                        plan.reg(at, Slot::A, bv);
                        plan.reg(at, Slot::Dst, *dst);
                        true
                    }
                    AOp::KiVar(w) => {
                        let at = plan.push_ins(
                            Instr::ICmp {
                                cc: cc.swapped(),
                                dst: 0,
                                a: 0,
                                b: Operand::Imm(0),
                            },
                            true,
                        );
                        plan.reg(at, Slot::A, bv);
                        plan.immi(at, Slot::B, w);
                        plan.reg(at, Slot::Dst, *dst);
                        true
                    }
                    _ => false,
                }
            } else if let (AOp::R { v: av, .. }, AOp::R { v: bv, .. }) = (ra, rb) {
                let at = plan.push_ins(
                    Instr::ICmp {
                        cc: *cc,
                        dst: 0,
                        a: 0,
                        b: Operand::Reg(0),
                    },
                    true,
                );
                plan.reg(at, Slot::A, av);
                plan.reg(at, Slot::B, bv);
                plan.reg(at, Slot::Dst, *dst);
                true
            } else {
                false // a float constant reached an int compare
            }
        }
        Inst::FCmp { cc, dst, .. } => {
            let (ra, rb) = (aops[0], aops[1]);
            if !ra.is_r() && !rb.is_r() {
                if let (AOp::KfLit(x), AOp::KfLit(y)) = (ra, rb) {
                    plan_fold_to(
                        *dst,
                        AbsAlias::LitI(eval_fcmp(*cc, x, y) as i64),
                        zcp,
                        ren,
                        &mut plan,
                    )
                } else {
                    if zcp {
                        ren.insert(*dst, AbsVal::Opaque);
                    }
                    false
                }
            } else if let (AOp::R { v: av, .. }, AOp::R { v: bv, .. }) = (ra, rb) {
                let at = plan.push_ins(
                    Instr::FCmp {
                        cc: *cc,
                        dst: 0,
                        a: 0,
                        b: 0,
                    },
                    true,
                );
                plan.reg(at, Slot::A, av);
                plan.reg(at, Slot::B, bv);
                plan.reg(at, Slot::Dst, *dst);
                true
            } else {
                false // one constant: scratch-materialized
            }
        }
        Inst::Un { op, dst, .. } => match aops[0] {
            AOp::R { v: sv, .. } => {
                let at = plan.push_ins(
                    Instr::Un {
                        op: *op,
                        dst: 0,
                        src: 0,
                    },
                    true,
                );
                plan.reg(at, Slot::Src, sv);
                plan.reg(at, Slot::Dst, *dst);
                true
            }
            AOp::KiLit(i) => {
                plan_fold_to(*dst, eval_un(*op, AbsAlias::LitI(i)), zcp, ren, &mut plan)
            }
            AOp::KfLit(f) => {
                plan_fold_to(*dst, eval_un(*op, AbsAlias::LitF(f)), zcp, ren, &mut plan)
            }
            AOp::KiVar(_) | AOp::KfVar(_) | AOp::Opaque => {
                // The fold fires unconditionally on a constant source.
                if zcp {
                    ren.insert(*dst, AbsVal::Opaque);
                }
                false
            }
            AOp::Unk => unreachable!("unknown operands bail out before planning"),
        },
        Inst::Load { ty, dst, .. } => {
            let (b, i) = (aops[0], aops[1]);
            if b.is_ki() && i.is_ki() {
                false // fully known address: folds through a scratch zero base
            } else if b.is_ki() {
                // Address = known base + register index: the emitter loads
                // from the *index* register with the base as offset.
                let AOp::R { v: iv, .. } = i else {
                    return None;
                };
                let at = match b {
                    AOp::KiLit(bv) => plan.push_ins(
                        Instr::Load {
                            ty: ty.vm_ty(),
                            dst: 0,
                            base: 0,
                            idx: Operand::Imm(bv),
                        },
                        true,
                    ),
                    AOp::KiVar(w) => {
                        let at = plan.push_ins(
                            Instr::Load {
                                ty: ty.vm_ty(),
                                dst: 0,
                                base: 0,
                                idx: Operand::Imm(0),
                            },
                            true,
                        );
                        plan.immi(at, Slot::Idx, w);
                        at
                    }
                    _ => return None,
                };
                plan.reg(at, Slot::Base, iv);
                plan.reg(at, Slot::Dst, *dst);
                true
            } else if i.is_ki() {
                let AOp::R { v: bv, .. } = b else {
                    return None;
                };
                let at = match i {
                    AOp::KiLit(iv) => plan.push_ins(
                        Instr::Load {
                            ty: ty.vm_ty(),
                            dst: 0,
                            base: 0,
                            idx: Operand::Imm(iv),
                        },
                        true,
                    ),
                    AOp::KiVar(w) => {
                        let at = plan.push_ins(
                            Instr::Load {
                                ty: ty.vm_ty(),
                                dst: 0,
                                base: 0,
                                idx: Operand::Imm(0),
                            },
                            true,
                        );
                        plan.immi(at, Slot::Idx, w);
                        at
                    }
                    _ => return None,
                };
                plan.reg(at, Slot::Base, bv);
                plan.reg(at, Slot::Dst, *dst);
                true
            } else if let (AOp::R { v: bv, .. }, AOp::R { v: iv, .. }) = (b, i) {
                let at = plan.push_ins(
                    Instr::Load {
                        ty: ty.vm_ty(),
                        dst: 0,
                        base: 0,
                        idx: Operand::Reg(0),
                    },
                    true,
                );
                plan.reg(at, Slot::Base, bv);
                plan.reg(at, Slot::Idx, iv);
                plan.reg(at, Slot::Dst, *dst);
                true
            } else {
                false
            }
        }
        Inst::Store { ty, .. } => {
            let (b, i, s) = (aops[0], aops[1], aops[2]);
            let AOp::R { v: sv, .. } = s else {
                // The stored value is a constant: scratch-materialized.
                return None;
            };
            let planned = if b.is_ki() && i.is_ki() {
                None
            } else if b.is_ki() {
                if let AOp::R { v: iv, .. } = i {
                    let at = match b {
                        AOp::KiLit(bv) => Some(plan.push_ins(
                            Instr::Store {
                                ty: ty.vm_ty(),
                                base: 0,
                                idx: Operand::Imm(bv),
                                src: 0,
                            },
                            false,
                        )),
                        AOp::KiVar(w) => {
                            let at = plan.push_ins(
                                Instr::Store {
                                    ty: ty.vm_ty(),
                                    base: 0,
                                    idx: Operand::Imm(0),
                                    src: 0,
                                },
                                false,
                            );
                            plan.immi(at, Slot::Idx, w);
                            Some(at)
                        }
                        _ => None,
                    };
                    at.inspect(|&at| plan.reg(at, Slot::Base, iv))
                } else {
                    None
                }
            } else if i.is_ki() {
                if let AOp::R { v: bv, .. } = b {
                    let at = match i {
                        AOp::KiLit(iv) => Some(plan.push_ins(
                            Instr::Store {
                                ty: ty.vm_ty(),
                                base: 0,
                                idx: Operand::Imm(iv),
                                src: 0,
                            },
                            false,
                        )),
                        AOp::KiVar(w) => {
                            let at = plan.push_ins(
                                Instr::Store {
                                    ty: ty.vm_ty(),
                                    base: 0,
                                    idx: Operand::Imm(0),
                                    src: 0,
                                },
                                false,
                            );
                            plan.immi(at, Slot::Idx, w);
                            Some(at)
                        }
                        _ => None,
                    };
                    at.inspect(|&at| plan.reg(at, Slot::Base, bv))
                } else {
                    None
                }
            } else if let (AOp::R { v: bv, .. }, AOp::R { v: iv, .. }) = (b, i) {
                let at = plan.push_ins(
                    Instr::Store {
                        ty: ty.vm_ty(),
                        base: 0,
                        idx: Operand::Reg(0),
                        src: 0,
                    },
                    false,
                );
                plan.reg(at, Slot::Base, bv);
                plan.reg(at, Slot::Idx, iv);
                Some(at)
            } else {
                None
            };
            match planned {
                Some(at) => {
                    plan.reg(at, Slot::Src, sv);
                    true
                }
                None => false,
            }
        }
        Inst::Call { callee, dst, .. } => {
            if aops.iter().all(|a| a.is_r()) {
                let n = aops.len();
                let ins = match callee {
                    Callee::Func { index, .. } => Instr::Call {
                        func: FuncId(*index as u32),
                        dst: dst.map(|_| 0),
                        args: vec![0; n],
                    },
                    Callee::Host(h) => Instr::CallHost {
                        f: *h,
                        dst: dst.map(|_| 0),
                        args: vec![0; n],
                    },
                };
                let at = plan.push_ins(ins, false);
                for (k, a) in aops.iter().enumerate() {
                    let AOp::R { v, .. } = a else { unreachable!() };
                    plan.reg(at, Slot::Arg(k as u16), *v);
                }
                if let Some(d) = dst {
                    plan.reg(at, Slot::Dst, *d);
                }
                true
            } else {
                false // constant arguments: scratch-materialized
            }
        }
        Inst::MakeStatic { .. } | Inst::MakeDynamic { .. } | Inst::Promote { .. } => {
            unreachable!("annotations never reach EmitHole")
        }
    };

    ok.then_some(plan)
}

fn rebase(p: PatchOp, base: u32) -> PatchOp {
    match p {
        PatchOp::Reg { at, slot, v } => PatchOp::Reg {
            at: at + base,
            slot,
            v,
        },
        PatchOp::ImmI { at, slot, var } => PatchOp::ImmI {
            at: at + base,
            slot,
            var,
        },
        PatchOp::ImmF { at, var } => PatchOp::ImmF { at: at + base, var },
        t @ PatchOp::Touch { .. } => t,
    }
}

type RunItem = (Inst, Vec<VReg>, OpPlan);

/// Close the current run: fuse it into one template if it spans at least
/// two emits, otherwise put the plain holes back. Returns the
/// destinations of reverted *guarded* emits: their special case is
/// value-dependent again, so their rename entries become
/// [`AbsVal::Unknown`] — the caller must mirror that into any successor
/// state it planned before the flush.
fn flush_run(
    run: &mut Vec<RunItem>,
    out: &mut Vec<GeOp>,
    r0: &HashMap<VReg, AbsVal>,
    set0: &BTreeSet<VReg>,
    rename: &mut HashMap<VReg, AbsVal>,
    set1: &BTreeSet<VReg>,
) -> Vec<VReg> {
    if run.len() < 2 {
        // A lone emit gains nothing from fusion: keep the plain hole.
        let mut reverted = Vec::new();
        for (inst, reads_after, plan) in run.drain(..) {
            if !plan.guards.is_empty() {
                // The reverted op's guard is discarded with its template,
                // so whether its emit-time special case fires — and thus
                // whether the unfused emit leaves a rename entry for its
                // destination — is value-dependent again. Unlike a
                // whole-table taint, only that destination goes unknown;
                // unrelated entries stay bakeable.
                if let Some(d) = inst.def() {
                    rename.insert(d, AbsVal::Unknown);
                    reverted.push(d);
                }
            }
            out.push(GeOp::EmitHole { inst, reads_after });
        }
        return reverted;
    }
    let r1 = &*rename;
    let mut instrs = Vec::new();
    let mut patches = Vec::new();
    let mut guards = Vec::new();
    let mut zcp_folds = 0;
    let mut fallback = Vec::new();
    for (inst, reads_after, plan) in run.drain(..) {
        let base = instrs.len() as u32;
        instrs.extend(plan.instrs);
        patches.extend(plan.patches.into_iter().map(|p| rebase(p, base)));
        guards.extend(plan.guards);
        zcp_folds += plan.zcp_folds;
        fallback.push((inst, reads_after));
    }
    let mut rename_kill: Vec<VReg> = r0.keys().filter(|k| !r1.contains_key(k)).copied().collect();
    rename_kill.sort();
    // Entries that went opaque were downgraded *in place*: the concrete
    // table already holds their (captured) value, so no update is needed.
    let mut rename_set: Vec<(VReg, AbsAlias)> = r1
        .iter()
        .filter_map(|(k, v)| match v {
            AbsVal::Known(a) if r0.get(k) != Some(v) => Some((*k, *a)),
            _ => None,
        })
        .collect();
    rename_set.sort_by_key(|(k, _)| *k);
    let store_kill: Vec<VReg> = set0.difference(set1).copied().collect();
    out.push(GeOp::EmitTemplate(Box::new(Template {
        guards,
        instrs,
        patches,
        effects: TemplateEffects {
            rename_kill,
            rename_set,
            store_kill,
        },
        fallback,
        zcp_folds,
    })));
    Vec::new()
}

fn fuse_division(d: &mut GeDivision, cfg: &OptConfig, fv: &[bool]) {
    let mut set: BTreeSet<VReg> = d.vars.iter().copied().collect();
    let mut rename: HashMap<VReg, AbsVal> = HashMap::new();
    let mut out: Vec<GeOp> = Vec::with_capacity(d.ops.len());
    let mut run: Vec<RunItem> = Vec::new();
    let mut r0: HashMap<VReg, AbsVal> = HashMap::new();
    let mut set0: BTreeSet<VReg> = BTreeSet::new();

    for op in std::mem::take(&mut d.ops) {
        match op {
            GeOp::Eval(inst) => {
                flush_run(&mut run, &mut out, &r0, &set0, &mut rename, &set);
                let dst = inst.def().expect("static computations define a value");
                rename.remove(&dst);
                // The store slot is rewritten: captured reads of the
                // old value can no longer be baked.
                downgrade(&mut rename, dst);
                set.insert(dst);
                out.push(GeOp::Eval(inst));
            }
            GeOp::DemoteMaterialize { vars } => {
                flush_run(&mut run, &mut out, &r0, &set0, &mut rename, &set);
                for v in &vars {
                    set.remove(v);
                    downgrade(&mut rename, *v);
                }
                out.push(GeOp::DemoteMaterialize { vars });
            }
            GeOp::EmitHole { inst, reads_after } => {
                let mut new_set = set.clone();
                let mut new_rename = rename.clone();
                match plan_emit_hole(&inst, &reads_after, &mut new_set, &mut new_rename, fv, cfg) {
                    Some(plan) => {
                        if run.is_empty() {
                            r0 = rename.clone();
                            set0 = set.clone();
                        }
                        run.push((inst, reads_after, plan));
                    }
                    None => {
                        let reverted = flush_run(&mut run, &mut out, &r0, &set0, &mut rename, &set);
                        let uses = inst.uses();
                        let consumed_reverted = reverted.iter().any(|v| uses.contains(v));
                        for v in reverted {
                            // The flush reverted a guarded singleton after
                            // this op's successor state was planned:
                            // mirror the unknowns forward. (If this op
                            // redefines `v` the entry is really dead, but
                            // unknown is a sound over-approximation.)
                            new_rename.insert(v, AbsVal::Unknown);
                        }
                        if consumed_reverted {
                            // This op's own plan read a reverted vreg as a
                            // register; with that operand unknown again its
                            // emission shape — and whether its destination
                            // gains a rename entry — is value-dependent
                            // too. (Loads, stores, and calls never rename
                            // their destination.)
                            if let Some(dd) = inst.def() {
                                if !matches!(
                                    inst,
                                    Inst::Call { .. } | Inst::Load { .. } | Inst::Store { .. }
                                ) {
                                    new_rename.insert(dd, AbsVal::Unknown);
                                }
                            }
                        }
                        out.push(GeOp::EmitHole { inst, reads_after });
                    }
                }
                set = new_set;
                rename = new_rename;
            }
            t @ GeOp::EmitTemplate(_) => out.push(t),
        }
    }
    flush_run(&mut run, &mut out, &r0, &set0, &mut rename, &set);
    d.ops = out;
}
