//! Stage-time lowering of dynamic regions into **generating-extension
//! (GE) programs**.
//!
//! DyC's central claim is that run-time specialization stays cheap because
//! "the bulk of the work of the optimization [is done] at static compile
//! time" (§1): the static compiler emits, for each dynamic region, a
//! custom *generating extension* whose only run-time job is to execute
//! static computations and copy out pre-optimized code templates. The
//! legacy specializer in `dyc-rt` interpreted the region IR online —
//! re-classifying binding times, querying liveness, and re-deriving
//! unroll legality on every specialization. This module does all of that
//! **once**, here, consuming the offline [`dyc_bta::Bta`] and
//! [`dyc_ir::analysis::Liveness`] results:
//!
//! * Each dynamic region is enumerated into **divisions** — a program
//!   point paired with the *set* of live static variables
//!   ([`GeDivision`]). The key insight that makes this precomputable: the
//!   static store's key **set** (never its values) evolves
//!   deterministically along any path — a static instruction inserts its
//!   destination, a dynamic one removes it, `make_dynamic` removes its
//!   variables, a promotion adds the missing ones. Value-dependent
//!   behavior (constant folding through the rename table, unit
//!   memoization per value vector) remains in the thin run-time executor.
//! * Each division body is a flat program of [`GeOp`]s: `Eval` (execute a
//!   static computation against the static store), `EmitHole` (emit one
//!   template instruction, its holes filled from the store, with the
//!   precomputed "read later" set dynamic copy propagation needs), and
//!   `DemoteMaterialize` (a `make_dynamic` crossing point).
//! * Each division terminator is a [`GeTerm`]: statically-decided
//!   branches/switches (`StaticBr`/`StaticSwitch` — the unroll engine),
//!   dynamic ones carrying precomputed [`EdgePlan`]s (which variables to
//!   carry, demote, or drop at the unit boundary, §4.4.3's "only the
//!   live static variables"), returns, and internal dynamic-to-static
//!   promotions with their full dispatch-site layout precomputed
//!   ([`PromotePlan`]).
//!
//! The run-time executor in `dyc-rt` interprets these tables with **zero**
//! binding-time classifications, liveness queries, or loop analyses —
//! `RtStats::runtime_bta_calls` proves it — and emits code byte-identical
//! to the online path (the unit-key bijection: a division index encodes
//! exactly `(block, start, static-variable set)`).

use crate::plan::{live_at_point, site_policy, EntrySite, SitePolicy, StagedFunc};
use dyc_bta::{binding_with_set, Binding, OptConfig};
use dyc_ir::analysis::{natural_loops, NaturalLoop};
use dyc_ir::inst::{Inst, Term};
use dyc_ir::{BlockId, FuncIr, IrTy, ProgramIr, VReg};
use dyc_lang::Policy;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Per-function division cap: a region whose set-level division graph
/// exceeds this is not staged (the function falls back to the online
/// specializer). Set far above anything a real region produces — the
/// division space is bounded by distinct static-variable *sets* per
/// block, not by run-time values.
const MAX_DIVISIONS: usize = 4096;

/// One GE operation: the precompiled form of one region instruction.
#[derive(Debug, Clone)]
pub enum GeOp {
    /// Execute a static computation against the static store (its
    /// destination becomes static).
    Eval(Inst),
    /// Emit one dynamic instruction, holes filled from the store.
    EmitHole {
        /// The template instruction.
        inst: Inst,
        /// Variables read at or after this point in the block (sorted) —
        /// the stale-rename materialization test dynamic copy
        /// propagation performs, precomputed from liveness.
        reads_after: Vec<VReg>,
    },
    /// A `make_dynamic` whose variables are static here: their values
    /// cross into run time (materialized as constant moves) and leave
    /// the static store. Variables listed in annotation order.
    DemoteMaterialize {
        /// The variables demoted (all static in this division).
        vars: Vec<VReg>,
    },
    /// A fused run of consecutive emits: a prebuilt contiguous
    /// instruction block copied wholesale at run time, with a side table
    /// of holes to patch (§2.1's "copy the pre-optimized templates").
    /// Produced by [`crate::template::fuse_ge_func`] when
    /// `OptConfig::template_fusion` is on.
    EmitTemplate(Box<crate::template::Template>),
}

/// A unit-boundary transfer plan: what happens to each static variable
/// when control moves from one division to a successor block.
#[derive(Debug, Clone)]
pub struct EdgePlan {
    /// Target division (encodes the successor block and the resulting
    /// static-variable set).
    pub target: u32,
    /// Variables carried into the successor's static store (sorted).
    pub carry: Vec<VReg>,
    /// Variables demoted at this edge — materialized as constant moves
    /// before the transfer (sorted). Dead statics are simply dropped and
    /// appear in neither list.
    pub demote: Vec<VReg>,
}

/// A precomputed internal dynamic-to-static promotion site (§2.2.2).
#[derive(Debug, Clone)]
pub struct PromotePlan {
    /// Instruction index of the promoting annotation.
    pub at: usize,
    /// The promoted (previously dynamic) variables, in annotation order —
    /// their run-time values form the dispatch key.
    pub key_vars: Vec<VReg>,
    /// Static variables live across the promotion — the dispatch site's
    /// baked-in base store (sorted).
    pub carried: Vec<VReg>,
    /// Dynamic variables live across the promotion — the dispatch
    /// arguments (sorted).
    pub args: Vec<VReg>,
    /// All variables live at the point (sorted) — the rename-flush keep
    /// set.
    pub live: Vec<VReg>,
    /// Caching policy of the created site.
    pub policy: SitePolicy,
    /// Division specialization resumes in once the values are known:
    /// `(block, at, carried ∪ key_vars)`.
    pub resume_division: u32,
}

/// A division terminator: how a unit ends.
#[derive(Debug, Clone)]
pub enum GeTerm {
    /// Unconditional transfer.
    Jmp(EdgePlan),
    /// Branch whose condition is static in this division: the executor
    /// folds it on the run-time value and takes exactly one plan. This is
    /// the complete-loop-unrolling engine (§2.2.4).
    StaticBr {
        /// The (static) condition variable.
        cond: VReg,
        /// Plan when the condition is non-zero.
        t: EdgePlan,
        /// Plan when the condition is zero.
        f: EdgePlan,
    },
    /// Branch on a dynamic condition: both sides' demotions are emitted,
    /// then a conditional branch. (The rename table may still fold it at
    /// run time if the condition renames to a constant.)
    DynBr {
        /// The (dynamic) condition variable.
        cond: VReg,
        /// Plan for the true successor.
        t: EdgePlan,
        /// Plan for the false successor.
        f: EdgePlan,
    },
    /// Switch on a static scrutinee: folded at specialization time.
    StaticSwitch {
        /// The (static) scrutinee.
        on: VReg,
        /// Per-case plans.
        cases: Vec<(i64, EdgePlan)>,
        /// Default plan.
        default: EdgePlan,
    },
    /// Switch on a dynamic scrutinee: compiled to a compare/branch chain.
    DynSwitch {
        /// The (dynamic) scrutinee.
        on: VReg,
        /// Per-case plans.
        cases: Vec<(i64, EdgePlan)>,
        /// Default plan.
        default: EdgePlan,
    },
    /// Function return.
    Ret(Option<VReg>),
    /// Internal dynamic-to-static promotion: the unit ends with a
    /// dispatch that resumes specialization once the values are known.
    Promote(PromotePlan),
}

/// One division: a specialization-unit *shape* — program point plus live
/// static-variable set. At run time a unit is a division plus the values.
#[derive(Debug, Clone)]
pub struct GeDivision {
    /// Block this division specializes.
    pub block: BlockId,
    /// First instruction index (non-zero for promotion resume points).
    pub start: u32,
    /// The static-variable set at entry (sorted) — with the block and
    /// start, the division's identity.
    pub vars: Vec<VReg>,
    /// The flat GE program for the division body.
    pub ops: Vec<GeOp>,
    /// How the division ends.
    pub term: GeTerm,
    /// Rename-flush keep set at the terminator: variables live out of
    /// the block or used by the terminator (sorted). Empty for
    /// [`GeTerm::Promote`] (the plan carries its own keep set).
    pub flush_keep: Vec<VReg>,
    /// Live-out variables that are dynamic at the terminator (sorted) —
    /// their registers must survive the unit's dead-assignment sweep.
    pub live_out_dyn: Vec<VReg>,
}

/// The GE program of one function: every reachable division, plus the
/// per-function tables the executor needs (so it touches no analyses).
#[derive(Debug, Clone)]
pub struct GeFunc {
    /// All divisions; [`EdgePlan::target`] and
    /// [`PromotePlan::resume_division`] index this list.
    pub divisions: Vec<GeDivision>,
    /// Per-vreg float flag (precomputed `FuncIr::ty` — move selection).
    pub float_vreg: Vec<bool>,
    /// Whether the function returns a value (promotion dispatch layout).
    pub ret_has_value: bool,
    /// Natural loops (instrumentation: unroll classification only).
    pub loops: Vec<NaturalLoop>,
    /// Loop headers (instrumentation: unroll detection only).
    pub loop_headers: HashSet<BlockId>,
}

/// GE programs for a whole staged program.
#[derive(Debug, Clone, Default)]
pub struct GeProgram {
    /// Per-function GE programs, parallel to `ProgramIr::funcs`. `None`
    /// when the function has no dynamic region, staging is disabled, or
    /// the division cap was exceeded (online fallback).
    pub funcs: Vec<Option<Arc<GeFunc>>>,
    /// Entry division per entry site, parallel to
    /// `StagedProgram::entry_sites`.
    pub entry_divisions: Vec<Option<u32>>,
}

/// Lower every annotated function of `ir` into GE programs. Returns an
/// empty (all-`None`) program when `cfg.staged_ge` is off.
pub fn lower_ge_program(
    ir: &ProgramIr,
    cfg: &OptConfig,
    funcs: &[StagedFunc],
    entry_sites: &[EntrySite],
) -> GeProgram {
    let mut ge = GeProgram {
        funcs: vec![None; ir.funcs.len()],
        entry_divisions: vec![None; entry_sites.len()],
    };
    if !cfg.staged_ge {
        return ge;
    }
    for (fi, f) in ir.funcs.iter().enumerate() {
        let sites: Vec<(usize, &EntrySite)> = entry_sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.func == fi)
            .collect();
        if sites.is_empty() {
            continue;
        }
        if let Some((gef, entries)) = lower_func(f, &funcs[fi], cfg, &sites) {
            for (site_idx, div) in entries {
                ge.entry_divisions[site_idx] = Some(div);
            }
            ge.funcs[fi] = Some(Arc::new(gef));
        }
    }
    ge
}

/// Lower one function. Returns `None` (online fallback) only if the
/// division cap is exceeded.
fn lower_func(
    f: &FuncIr,
    sf: &StagedFunc,
    cfg: &OptConfig,
    sites: &[(usize, &EntrySite)],
) -> Option<(GeFunc, Vec<(usize, u32)>)> {
    let mut lw = Lowerer {
        f,
        sf,
        cfg,
        divisions: Vec::new(),
        meta: Vec::new(),
        index: HashMap::new(),
        work: Vec::new(),
        read_later: HashMap::new(),
    };
    let mut entries = Vec::new();
    for (site_idx, s) in sites {
        let vars: BTreeSet<VReg> = s.key_vars.iter().map(|(v, _)| *v).collect();
        let d = lw.intern(s.block, s.inst_idx as u32, vars)?;
        entries.push((*site_idx, d));
    }
    while let Some(d) = lw.work.pop() {
        let (block, start, vars) = lw.meta[d as usize].clone();
        let div = lw.lower_division(block, start, &vars)?;
        lw.divisions[d as usize] = Some(div);
    }
    let loops = natural_loops(f);
    let loop_headers: HashSet<BlockId> = loops.iter().map(|l| l.header).collect();
    let float_vreg: Vec<bool> = (0..f.n_vregs())
        .map(|i| f.ty(VReg(i as u32)) == IrTy::Float)
        .collect();
    let mut gef = GeFunc {
        divisions: lw
            .divisions
            .into_iter()
            .map(|d| d.expect("division worklist drained"))
            .collect(),
        float_vreg,
        ret_has_value: f.ret_ty.is_some(),
        loops,
        loop_headers,
    };
    if cfg.template_fusion {
        crate::template::fuse_ge_func(&mut gef, cfg);
    }
    Some((gef, entries))
}

/// Worklist-driven division enumerator for one function.
struct Lowerer<'a> {
    f: &'a FuncIr,
    sf: &'a StagedFunc,
    cfg: &'a OptConfig,
    divisions: Vec<Option<GeDivision>>,
    meta: Vec<(BlockId, u32, BTreeSet<VReg>)>,
    index: HashMap<(BlockId, u32, Vec<VReg>), u32>,
    work: Vec<u32>,
    /// Per-block "read at or after instruction j" tables:
    /// `read_later[b][j]` = live-out ∪ terminator uses ∪ uses and
    /// annotation mentions of `insts[j..]`.
    read_later: HashMap<BlockId, Vec<BTreeSet<VReg>>>,
}

impl Lowerer<'_> {
    /// Intern a division identity, queueing it for lowering if new.
    /// `None` iff the cap is exceeded.
    fn intern(&mut self, block: BlockId, start: u32, vars: BTreeSet<VReg>) -> Option<u32> {
        let key = (block, start, vars.iter().copied().collect::<Vec<_>>());
        if let Some(i) = self.index.get(&key) {
            return Some(*i);
        }
        if self.divisions.len() >= MAX_DIVISIONS {
            return None;
        }
        let i = self.divisions.len() as u32;
        self.divisions.push(None);
        self.meta.push((block, start, vars));
        self.index.insert(key, i);
        self.work.push(i);
        Some(i)
    }

    fn lower_division(
        &mut self,
        block: BlockId,
        start: u32,
        entry_vars: &BTreeSet<VReg>,
    ) -> Option<GeDivision> {
        let mut s = entry_vars.clone();
        let mut ops = Vec::new();
        let n_insts = self.f.block(block).insts.len();
        let mut promotion: Option<(usize, Vec<VReg>)> = None;
        let mut i = start as usize;
        while i < n_insts {
            let inst = self.f.block(block).insts[i].clone();
            match &inst {
                Inst::MakeStatic { vars } => {
                    let missing: Vec<VReg> = vars
                        .iter()
                        .map(|(v, _)| *v)
                        .filter(|v| !s.contains(v))
                        .collect();
                    if !missing.is_empty() && self.cfg.internal_promotions {
                        promotion = Some((i, missing));
                        break;
                    }
                }
                Inst::Promote { var } => {
                    if !s.contains(var) && self.cfg.internal_promotions {
                        promotion = Some((i, vec![*var]));
                        break;
                    }
                }
                Inst::MakeDynamic { vars } => {
                    let present: Vec<VReg> =
                        vars.iter().filter(|v| s.contains(v)).copied().collect();
                    for v in &present {
                        s.remove(v);
                    }
                    if !present.is_empty() {
                        ops.push(GeOp::DemoteMaterialize { vars: present });
                    }
                }
                _ => match binding_with_set(&inst, &s, self.cfg) {
                    Binding::Static => {
                        let dst = inst.def().expect("static computations define a value");
                        ops.push(GeOp::Eval(inst));
                        s.insert(dst);
                    }
                    Binding::Dynamic => {
                        let reads_after = self.reads_after(block, i);
                        if let Some(d) = inst.def() {
                            s.remove(&d);
                        }
                        ops.push(GeOp::EmitHole { inst, reads_after });
                    }
                    Binding::Annotation => unreachable!("annotations handled above"),
                },
            }
            i += 1;
        }

        let (term, flush_keep, live_out_dyn) = if let Some((at, missing)) = promotion {
            let live = live_at_point(self.f, &self.sf.live, block, at);
            let carried: Vec<VReg> = live.iter().filter(|v| s.contains(v)).copied().collect();
            let args: Vec<VReg> = live.iter().filter(|v| !s.contains(v)).copied().collect();
            let policy = site_policy(
                self.cfg,
                missing.iter().map(|v| {
                    self.sf
                        .bta
                        .policies
                        .get(v)
                        .copied()
                        .unwrap_or(Policy::CacheAll)
                }),
                missing.len(),
            );
            let mut resume: BTreeSet<VReg> = carried.iter().copied().collect();
            resume.extend(missing.iter().copied());
            let resume_division = self.intern(block, at as u32, resume)?;
            let plan = PromotePlan {
                at,
                key_vars: missing,
                carried,
                args,
                live,
                policy,
                resume_division,
            };
            (GeTerm::Promote(plan), Vec::new(), Vec::new())
        } else {
            let mut keep: BTreeSet<VReg> = self.sf.live.live_out[block.index()]
                .iter()
                .copied()
                .collect();
            let live_out_dyn: Vec<VReg> = keep.iter().filter(|v| !s.contains(v)).copied().collect();
            keep.extend(self.f.block(block).term.uses());
            let flush_keep: Vec<VReg> = keep.into_iter().collect();
            let term = match self.f.block(block).term.clone() {
                Term::Jmp(t) => GeTerm::Jmp(self.edge_plan(t, &s)?),
                Term::Br { cond, t, f } => {
                    let tp = self.edge_plan(t, &s)?;
                    let fp = self.edge_plan(f, &s)?;
                    if s.contains(&cond) {
                        GeTerm::StaticBr { cond, t: tp, f: fp }
                    } else {
                        GeTerm::DynBr { cond, t: tp, f: fp }
                    }
                }
                Term::Switch { on, cases, default } => {
                    let mut plans = Vec::with_capacity(cases.len());
                    for (k, b) in &cases {
                        plans.push((*k, self.edge_plan(*b, &s)?));
                    }
                    let dp = self.edge_plan(default, &s)?;
                    if s.contains(&on) {
                        GeTerm::StaticSwitch {
                            on,
                            cases: plans,
                            default: dp,
                        }
                    } else {
                        GeTerm::DynSwitch {
                            on,
                            cases: plans,
                            default: dp,
                        }
                    }
                }
                Term::Ret(v) => GeTerm::Ret(v),
            };
            (term, flush_keep, live_out_dyn)
        };

        Some(GeDivision {
            block,
            start,
            vars: entry_vars.iter().copied().collect(),
            ops,
            term,
            flush_keep,
            live_out_dyn,
        })
    }

    /// Plan one unit-boundary edge under static set `s`: per variable, in
    /// sorted order — drop if dead in the target, demote if the division
    /// rules say it cannot stay static there, carry otherwise. Mirrors
    /// the legacy online `edge_unit` decision for byte-identical output.
    fn edge_plan(&mut self, target: BlockId, s: &BTreeSet<VReg>) -> Option<EdgePlan> {
        let bta = &self.sf.bta;
        let live_in = &self.sf.live.live_in[target.index()];
        let mut carry = Vec::new();
        let mut demote = Vec::new();
        let mut out = BTreeSet::new();
        for v in s {
            if !live_in.contains(v) {
                continue; // dead static: drop from the key (§4.4.3)
            }
            let mut keep = true;
            if !self.cfg.polyvariant_division && !bta.static_in[target.index()].contains(v) {
                keep = false;
            }
            // Loop-varying statics demote at the header unless the loop
            // unrolls *in this division* — decided purely by the set:
            // some exit test's dependencies all static here (§2.2.4/§2.2.5).
            if let Some(assigned) = bta.loop_assigned.get(&target) {
                if assigned.contains(v) {
                    let unrolls_here = bta
                        .unroll_exit_deps
                        .get(&target)
                        .is_some_and(|deps| deps.iter().any(|d| d.iter().all(|x| s.contains(x))));
                    let kept = unrolls_here
                        && bta
                            .unroll_keep_opt
                            .get(&target)
                            .is_some_and(|k| k.contains(v));
                    if !kept {
                        keep = false;
                    }
                }
            }
            if keep {
                carry.push(*v);
                out.insert(*v);
            } else {
                demote.push(*v);
            }
        }
        let target_div = self.intern(target, 0, out)?;
        Some(EdgePlan {
            target: target_div,
            carry,
            demote,
        })
    }

    /// Variables read at or after instruction `idx + 1` of `block`
    /// (sorted): the precomputed form of the online specializer's
    /// per-query `read_later`.
    fn reads_after(&mut self, block: BlockId, idx: usize) -> Vec<VReg> {
        if !self.read_later.contains_key(&block) {
            let tbl = build_read_later(self.f, &self.sf.live, block);
            self.read_later.insert(block, tbl);
        }
        self.read_later[&block][idx + 1].iter().copied().collect()
    }
}

/// Suffix "read later" table for one block: `tbl[j]` holds every variable
/// used (or mentioned by an annotation) at instruction `j` or later, plus
/// the block's live-out set and terminator uses.
fn build_read_later(
    f: &FuncIr,
    live: &dyc_ir::analysis::Liveness,
    block: BlockId,
) -> Vec<BTreeSet<VReg>> {
    let b = f.block(block);
    let n = b.insts.len();
    let mut base: BTreeSet<VReg> = live.live_out[block.index()].iter().copied().collect();
    base.extend(b.term.uses());
    let mut tbl = vec![BTreeSet::new(); n + 1];
    tbl[n] = base;
    for j in (0..n).rev() {
        let mut s = tbl[j + 1].clone();
        let inst = &b.insts[j];
        s.extend(inst.uses());
        match inst {
            Inst::MakeStatic { vars } => s.extend(vars.iter().map(|(v, _)| *v)),
            Inst::MakeDynamic { vars } => s.extend(vars.iter().copied()),
            Inst::Promote { var } => {
                s.insert(*var);
            }
            _ => {}
        }
        tbl[j] = s;
    }
    tbl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::stage_program;
    use crate::StagedProgram;
    use dyc_ir::lower::lower_program;
    use dyc_lang::parse_program;

    fn staged(src: &str, cfg: OptConfig) -> StagedProgram {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        dyc_ir::opt::optimize_program(&mut ir);
        stage_program(ir, cfg)
    }

    const POWER: &str = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
    "#;

    #[test]
    fn annotated_function_gets_a_ge_program() {
        let s = staged(POWER, OptConfig::all());
        let gef = s.ge.funcs[0].as_ref().expect("power is staged");
        assert_eq!(s.ge.entry_divisions.len(), 1);
        let entry = s.ge.entry_divisions[0].expect("entry division");
        let d = &gef.divisions[entry as usize];
        // Entry division: the make_static block, keyed on exactly the
        // promoted variable set.
        assert_eq!(d.block, s.entry_sites[0].block);
        assert_eq!(d.start as usize, s.entry_sites[0].inst_idx);
        assert_eq!(d.vars.len(), s.entry_sites[0].key_vars.len());
        // The loop's exit test is static: some division ends in a
        // StaticBr — the unroll engine.
        assert!(
            gef.divisions
                .iter()
                .any(|d| matches!(d.term, GeTerm::StaticBr { .. })),
            "expected a statically-decided branch among {} divisions",
            gef.divisions.len()
        );
    }

    #[test]
    fn divisions_are_finite_even_for_unrolled_loops() {
        // The loop unrolls into unboundedly many *units* at run time, but
        // the set-level division graph is a small cycle.
        let s = staged(POWER, OptConfig::all());
        let gef = s.ge.funcs[0].as_ref().unwrap();
        assert!(gef.divisions.len() < 32, "got {}", gef.divisions.len());
    }

    #[test]
    fn disabling_staged_ge_skips_lowering() {
        let cfg = OptConfig::all().without("staged_ge").unwrap();
        let s = staged(POWER, cfg);
        assert!(s.ge.funcs.iter().all(Option::is_none));
        assert!(s.ge.entry_divisions.iter().all(Option::is_none));
    }

    #[test]
    fn unannotated_functions_are_not_staged() {
        let s = staged("int f(int x) { return x + 1; }", OptConfig::all());
        assert!(s.ge.funcs[0].is_none());
    }

    #[test]
    fn promotion_gets_a_resume_division() {
        let src = r#"
            int f(int n, int d) {
                make_static(n);
                int acc = 0;
                int i = 0;
                while (i < n) {
                    int t = d + i;
                    promote(t);
                    acc = acc + t;
                    make_dynamic(t);
                    i = i + 1;
                }
                return acc;
            }
        "#;
        let s = staged(src, OptConfig::all());
        let gef = s.ge.funcs[0].as_ref().expect("staged");
        let promo = gef
            .divisions
            .iter()
            .find_map(|d| match &d.term {
                GeTerm::Promote(p) => Some((d, p)),
                _ => None,
            })
            .expect("a promotion division exists");
        let (d, p) = promo;
        // The resume division starts at the annotation with the carried
        // and promoted variables static.
        let r = &gef.divisions[p.resume_division as usize];
        assert_eq!(r.block, d.block);
        assert_eq!(r.start as usize, p.at);
        let resume_vars: BTreeSet<VReg> = r.vars.iter().copied().collect();
        for v in p.key_vars.iter().chain(&p.carried) {
            assert!(resume_vars.contains(v), "{v:?} missing from resume set");
        }
    }

    #[test]
    fn edge_plans_partition_the_static_set() {
        let s = staged(POWER, OptConfig::all());
        let gef = s.ge.funcs[0].as_ref().unwrap();
        for d in &gef.divisions {
            let vars: BTreeSet<VReg> = d.vars.iter().copied().collect();
            let check = |p: &EdgePlan| {
                // Every carried/demoted variable was static in the
                // division (the body may have grown/shrunk the set, so
                // only sortedness is asserted strictly).
                let mut sorted = p.carry.clone();
                sorted.sort();
                assert_eq!(sorted, p.carry);
                let mut sorted = p.demote.clone();
                sorted.sort();
                assert_eq!(sorted, p.demote);
                let target = &gef.divisions[p.target as usize];
                let tvars: BTreeSet<VReg> = target.vars.iter().copied().collect();
                for v in &p.carry {
                    assert!(tvars.contains(v));
                }
                let _ = &vars;
            };
            match &d.term {
                GeTerm::Jmp(p) => check(p),
                GeTerm::StaticBr { t, f, .. } | GeTerm::DynBr { t, f, .. } => {
                    check(t);
                    check(f);
                }
                GeTerm::StaticSwitch { cases, default, .. }
                | GeTerm::DynSwitch { cases, default, .. } => {
                    for (_, p) in cases {
                        check(p);
                    }
                    check(default);
                }
                GeTerm::Ret(_) | GeTerm::Promote(_) => {}
            }
        }
    }
}
