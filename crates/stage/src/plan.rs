//! Region plans and the dynamic build of the module.

use dyc_bta::{analyze, Bta, OptConfig};
use dyc_ir::analysis::{liveness, Liveness};
use dyc_ir::codegen::{codegen_func, codegen_func_with_splices, DispatchSplice};
use dyc_ir::inst::Inst;
use dyc_ir::{BlockId, FuncIr, ProgramIr, VReg};
use dyc_lang::Policy;
use dyc_vm::Module;
use std::collections::BTreeSet;

/// How a dispatch site caches its specializations (§2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SitePolicy {
    /// Double-hashing cache keyed on the promoted values; safe default.
    CacheAll,
    /// Double-hashing cache bounded to `k` retained specializations;
    /// overflow evicts the coldest entry (second-chance). Chosen when any
    /// key variable carries a `cache_all(k)` annotation (the smallest
    /// bound wins) and no faster policy applies.
    CacheAllBounded(u32),
    /// One cached version, reused without any key check (a single load
    /// and indirect jump, ~10 cycles).
    CacheOneUnchecked,
    /// Array-indexed lookup over a small integer key range (§3.1's
    /// proposed fast dispatch); falls back to hashing out of range.
    /// Requires a single integer key variable.
    CacheIndexed,
}

/// A region-entry dispatch site prepared at static compile time.
#[derive(Debug, Clone)]
pub struct EntrySite {
    /// Index of the function containing the region.
    pub func: usize,
    /// Block of the `make_static`.
    pub block: BlockId,
    /// Instruction index of the `make_static` within the block.
    pub inst_idx: usize,
    /// Variables promoted at this site, with their source policies.
    pub key_vars: Vec<(VReg, Policy)>,
    /// Dispatch argument layout: all live variables at the site, sorted.
    pub arg_vars: Vec<VReg>,
    /// Effective caching policy for the whole site.
    pub policy: SitePolicy,
}

/// Per-function staged artifacts.
#[derive(Debug, Clone)]
pub struct StagedFunc {
    /// Offline binding-time results.
    pub bta: Bta,
    /// Liveness (drives dead-assignment planning and dispatch keys).
    pub live: Liveness,
}

/// Everything the run-time system needs: the dynamic build of the module
/// plus the per-function plans.
#[derive(Debug, Clone)]
pub struct StagedProgram {
    /// The optimized IR (the specializer walks it at run time).
    pub ir: ProgramIr,
    /// The optimization configuration this staging was done under.
    pub cfg: OptConfig,
    /// Per-function staged artifacts, parallel to `ir.funcs`.
    pub funcs: Vec<StagedFunc>,
    /// Region-entry sites; `Dispatch.point` indexes this list (run-time
    /// promotion sites are appended after these by `dyc-rt`).
    pub entry_sites: Vec<EntrySite>,
    /// Precompiled generating-extension programs (the tentpole of true
    /// staging): one per annotated function, plus the entry division of
    /// each entry site. All-`None` when `cfg.staged_ge` is off.
    pub ge: crate::ge::GeProgram,
}

impl StagedProgram {
    /// Build the dynamic module: annotated functions become driver stubs,
    /// everything else compiles as in the static build.
    pub fn build_module(&self) -> Module {
        let mut m = Module::new();
        for (fi, f) in self.ir.funcs.iter().enumerate() {
            let splices: Vec<DispatchSplice> = self
                .entry_sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.func == fi)
                .map(|(site_id, s)| DispatchSplice {
                    block: s.block,
                    inst_idx: s.inst_idx,
                    point: site_id as u32,
                    args: s.arg_vars.clone(),
                })
                .collect();
            if splices.is_empty() {
                m.add_func(codegen_func(f));
            } else {
                m.add_func(codegen_func_with_splices(f, &splices));
            }
        }
        m
    }
}

/// Stage a whole (already optimized) program under `cfg`.
pub fn stage_program(ir: ProgramIr, cfg: OptConfig) -> StagedProgram {
    let mut funcs = Vec::with_capacity(ir.funcs.len());
    let mut entry_sites = Vec::new();
    for (fi, f) in ir.funcs.iter().enumerate() {
        let bta = analyze(f, &cfg);
        let live = liveness(f);
        for entry in &bta.entries {
            let arg_vars = live_at_point(f, &live, entry.block, entry.inst_idx);
            let policy = site_policy(&cfg, entry.vars.iter().map(|(_, p)| *p), entry.vars.len());
            entry_sites.push(EntrySite {
                func: fi,
                block: entry.block,
                inst_idx: entry.inst_idx,
                key_vars: entry.vars.clone(),
                arg_vars,
                policy,
            });
        }
        funcs.push(StagedFunc { bta, live });
    }
    let ge = crate::ge::lower_ge_program(&ir, &cfg, &funcs, &entry_sites);
    StagedProgram {
        ir,
        cfg,
        funcs,
        entry_sites,
        ge,
    }
}

/// Resolve the effective caching policy of a dispatch site from its key
/// variables' source policies (§2.2.3 plus the §3.1 indexed extension).
pub fn site_policy(
    cfg: &OptConfig,
    mut policies: impl Iterator<Item = Policy>,
    n_keys: usize,
) -> SitePolicy {
    let mut all_unchecked = n_keys > 0;
    let mut all_indexed = n_keys == 1;
    let mut bound: Option<u32> = None;
    for p in policies.by_ref() {
        all_unchecked &= p == Policy::CacheOneUnchecked;
        all_indexed &= p == Policy::CacheIndexed;
        if let Policy::CacheAllBounded(k) = p {
            // Several bounded keys on one site: the tightest bound wins.
            bound = Some(bound.map_or(k, |b| b.min(k)));
        }
    }
    if cfg.unchecked_dispatching && all_unchecked {
        SitePolicy::CacheOneUnchecked
    } else if all_indexed {
        SitePolicy::CacheIndexed
    } else if let Some(k) = bound {
        SitePolicy::CacheAllBounded(k)
    } else {
        SitePolicy::CacheAll
    }
}

/// The variables live just before instruction `(block, idx)` — the state a
/// region continuation needs. Sorted for a deterministic dispatch layout.
pub fn live_at_point(f: &FuncIr, live: &Liveness, block: BlockId, idx: usize) -> Vec<VReg> {
    let b = f.block(block);
    let mut set: BTreeSet<VReg> = live.live_out[block.index()].iter().copied().collect();
    set.extend(b.term.uses());
    for inst in b.insts[idx..].iter().rev() {
        if let Some(d) = inst.def() {
            set.remove(&d);
        }
        set.extend(inst.uses());
        annotation_uses(inst, &mut set);
    }
    set.into_iter().collect()
}

fn annotation_uses(inst: &Inst, set: &mut BTreeSet<VReg>) {
    match inst {
        Inst::MakeStatic { vars } => set.extend(vars.iter().map(|(v, _)| *v)),
        Inst::MakeDynamic { vars } => set.extend(vars.iter().copied()),
        Inst::Promote { var } => {
            set.insert(*var);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_ir::lower::lower_program;
    use dyc_lang::parse_program;
    use dyc_vm::Instr;

    fn staged(src: &str, cfg: OptConfig) -> StagedProgram {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        dyc_ir::opt::optimize_program(&mut ir);
        stage_program(ir, cfg)
    }

    const POWER: &str = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
    "#;

    #[test]
    fn annotated_function_gets_an_entry_site() {
        let s = staged(POWER, OptConfig::all());
        assert_eq!(s.entry_sites.len(), 1);
        let site = &s.entry_sites[0];
        assert_eq!(site.func, 0);
        assert_eq!(site.key_vars.len(), 1);
        // Live at the make_static: base and exp.
        assert_eq!(site.arg_vars.len(), 2);
    }

    #[test]
    fn stub_contains_dispatch_then_ret() {
        let s = staged(POWER, OptConfig::all());
        let m = s.build_module();
        let stub = m.func(dyc_vm::FuncId(0));
        let has_dispatch = stub
            .code
            .iter()
            .any(|i| matches!(i, Instr::Dispatch { .. }));
        assert!(
            has_dispatch,
            "stub must dispatch:\n{}",
            dyc_vm::pretty::func_to_string(stub)
        );
        // The dispatch is followed by a return of its result.
        let pos = stub
            .code
            .iter()
            .position(|i| matches!(i, Instr::Dispatch { .. }))
            .unwrap();
        assert!(matches!(stub.code[pos + 1], Instr::Ret { .. }));
    }

    #[test]
    fn unannotated_functions_compile_plainly() {
        let s = staged("int f(int x) { return x + 1; }", OptConfig::all());
        assert!(s.entry_sites.is_empty());
        let m = s.build_module();
        assert!(!m
            .func(dyc_vm::FuncId(0))
            .code
            .iter()
            .any(|i| matches!(i, Instr::Dispatch { .. })));
    }

    #[test]
    fn policy_honors_cache_one_unchecked() {
        let src = r#"
            int f(int x, int y) {
                make_static(x: cache_one_unchecked);
                return x + y;
            }
        "#;
        let s = staged(src, OptConfig::all());
        assert_eq!(s.entry_sites[0].policy, SitePolicy::CacheOneUnchecked);
        // Disabling unchecked dispatching forces cache-all.
        let s2 = staged(
            src,
            OptConfig::all().without("unchecked_dispatching").unwrap(),
        );
        assert_eq!(s2.entry_sites[0].policy, SitePolicy::CacheAll);
    }

    #[test]
    fn mixed_policies_fall_back_to_cache_all() {
        let src = r#"
            int f(int x, int y, int d) {
                make_static(x: cache_one_unchecked, y);
                return x + y + d;
            }
        "#;
        let s = staged(src, OptConfig::all());
        assert_eq!(s.entry_sites[0].policy, SitePolicy::CacheAll);
    }

    #[test]
    fn conditional_make_static_keeps_other_paths_in_stub() {
        let src = r#"
            int f(int c, int x, int y) {
                if (c) { make_static(x); return x * y; }
                return y;
            }
        "#;
        let s = staged(src, OptConfig::all());
        let m = s.build_module();
        let stub = m.func(dyc_vm::FuncId(0));
        // The stub still contains the plain-path return as real code plus
        // one dispatch for the annotated path.
        let dispatches = stub
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, 1);
        let rets = stub
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Ret { .. }))
            .count();
        assert!(rets >= 2);
    }

    #[test]
    fn live_at_point_is_sorted_and_precise() {
        let src = "int f(int a, int b, int c) { int t = a + b; make_static(t); return t + c; }";
        let s = staged(src, OptConfig::all());
        let site = &s.entry_sites[0];
        // Live at the annotation: t and c (a and b are dead by then).
        assert_eq!(site.arg_vars.len(), 2);
        let mut sorted = site.arg_vars.clone();
        sorted.sort();
        assert_eq!(sorted, site.arg_vars);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn resolve(cfg: &OptConfig, ps: &[Policy]) -> SitePolicy {
        site_policy(cfg, ps.iter().copied(), ps.len())
    }

    #[test]
    fn unchecked_requires_every_key_and_the_config_flag() {
        let on = OptConfig::all();
        let off = on.without("unchecked_dispatching").unwrap();
        assert_eq!(
            resolve(&on, &[Policy::CacheOneUnchecked]),
            SitePolicy::CacheOneUnchecked
        );
        assert_eq!(
            resolve(&on, &[Policy::CacheOneUnchecked, Policy::CacheAll]),
            SitePolicy::CacheAll
        );
        assert_eq!(
            resolve(&off, &[Policy::CacheOneUnchecked]),
            SitePolicy::CacheAll
        );
    }

    #[test]
    fn indexed_requires_exactly_one_key() {
        let cfg = OptConfig::all();
        assert_eq!(
            resolve(&cfg, &[Policy::CacheIndexed]),
            SitePolicy::CacheIndexed
        );
        assert_eq!(
            resolve(&cfg, &[Policy::CacheIndexed, Policy::CacheIndexed]),
            SitePolicy::CacheAll
        );
    }

    #[test]
    fn indexed_survives_the_unchecked_ablation() {
        // cache_indexed is a *safe* policy: the Table 5 unchecked-dispatch
        // ablation must not disable it.
        let cfg = OptConfig::all().without("unchecked_dispatching").unwrap();
        assert_eq!(
            resolve(&cfg, &[Policy::CacheIndexed]),
            SitePolicy::CacheIndexed
        );
    }

    #[test]
    fn empty_key_sites_hash() {
        assert_eq!(resolve(&OptConfig::all(), &[]), SitePolicy::CacheAll);
    }
}
