//! # dyc-stage — staging the dynamic optimizations
//!
//! DyC keeps dynamic compilation cheap by doing "the bulk of the work of
//! the optimization … at static compile time" (§1): each dynamic region is
//! split out, its binding-time structure is analyzed, and a specialized
//! run-time compiler is prepared. This crate is that static-compile-time
//! half:
//!
//! * [`stage_program`] takes the optimized IR and produces a
//!   [`StagedProgram`]: the **dynamic build** of the VM module, in which
//!   every `make_static` site has been replaced by a dispatch to the
//!   run-time system (the *driver stub*), plus everything the run-time
//!   specializer needs precomputed — per-function BTA results, liveness
//!   (used both for dead-assignment planning and to "only hash on the
//!   subset of live static variables", §4.4.3), and the entry-site
//!   descriptors with their caching policies.
//!
//! * [`ge::lower_ge_program`] then compiles each region's plan all the way
//!   down to an executable **generating-extension program** ([`GeProgram`]):
//!   per-division flat op lists with every binding-time decision, liveness
//!   query, unit-boundary transfer, and unroll-legality check resolved at
//!   static compile time.
//!
//! The run-time half (the generating-extension executor) lives in `dyc-rt`.

#![deny(missing_docs)]

pub mod ge;
pub mod plan;
pub mod template;

pub use ge::{EdgePlan, GeDivision, GeFunc, GeOp, GeProgram, GeTerm, PromotePlan};
pub use plan::{
    live_at_point, site_policy, stage_program, EntrySite, SitePolicy, StagedFunc, StagedProgram,
};
pub use template::{
    ibin_special_case, AbsAlias, Guard, PatchOp, Slot, TInstr, Template, TemplateEffects,
};
