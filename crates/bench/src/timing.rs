//! A minimal wall-clock benchmark harness for the `benches/` binaries.
//!
//! The wall-clock benches need no statistics engine — just warmup,
//! auto-calibrated iteration counts, and median-of-samples reporting —
//! so this ~80-line harness replaces the former `criterion` dependency
//! and keeps the workspace building without registry access.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Samples taken per benchmark (median is reported).
const SAMPLES: usize = 15;

/// Prevent the optimizer from discarding a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    // Volatile read of a pointer to the value: the value must exist.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// A named group of benchmarks, printed as `group/name  median  (per-elem)`.
pub struct Group {
    name: String,
    /// When set, per-iteration times are also divided by this element
    /// count (e.g. instructions executed) for a throughput figure.
    elements: Option<u64>,
}

impl Group {
    /// A named group (the prefix printed before each bench name).
    pub fn new(name: impl Into<String>) -> Group {
        Group {
            name: name.into(),
            elements: None,
        }
    }

    /// Report a per-element rate alongside the per-iteration time.
    pub fn throughput(&mut self, elements: u64) {
        self.elements = Some(elements);
    }

    /// Measure `f` (one call = one iteration) and print the result.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: how many iterations fill TARGET / SAMPLES?
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed * (SAMPLES as u32) >= TARGET || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                (iters * 2).max(
                    (TARGET.as_nanos() / SAMPLES as u128 / elapsed.as_nanos().max(1)) as u64
                        * iters
                        / 2,
                )
            };
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[SAMPLES / 2];
        let label = format!("{}/{}", self.name, name);
        match self.elements {
            Some(n) => println!(
                "{label:<44} {:>12}/iter  {:>10}/elem",
                fmt_ns(median),
                fmt_ns(median / n as f64)
            ),
            None => println!("{label:<44} {:>12}/iter", fmt_ns(median)),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
