//! Traffic-scale serving: deterministic key streams and the replay
//! driver behind `dyc_serve`.
//!
//! The paper evaluates staged specialization on batch kernels; this
//! module evaluates it the way a server meets it — a sustained stream
//! of dispatch keys drawn from a skewed distribution, replayed against
//! one shared [`SharedRuntime`] from many threads. Four stream shapes
//! cover the serving failure modes the concurrent runtime must survive:
//!
//! * [`Pattern::Zipfian`] — steady-state skew: key ranks drawn from a
//!   zipf(s) distribution over a fixed keyspace. A few keys dominate;
//!   the cache should converge to ~100% hits and the hot shard carries
//!   the load.
//! * [`Pattern::Churn`] — rolling working set: a uniform window that
//!   slides one key every `churn_interval` dispatches, so old keys stop
//!   recurring and fresh keys keep arriving. Exercises bounded eviction
//!   (the clock must shed dead keys) and steady miss traffic.
//! * [`Pattern::FlashCrowd`] — a quiet uniform baseline interrupted by
//!   periodic bursts in which most traffic slams one *brand-new* hot
//!   key (a new item going viral). Exercises the cold-start spike on a
//!   single key while background traffic continues.
//! * [`Pattern::Stampede`] — the adversarial case: every thread walks
//!   the *same* fresh-key sequence in lockstep, each key dispatched
//!   `stampede_repeat` times per thread. Nearly every miss is a
//!   single-flight collision; throughput is governed by the flight
//!   protocol, not the cache.
//!
//! Streams are deterministic: `(StreamConfig, seed, thread)` fully
//! determines a thread's key sequence (SplitMix64 underneath), so every
//! run in EXPERIMENTS.md can be replayed bit-for-bit. The replayed
//! region itself is [`serve_source`] — a `make_static(key)` loop whose
//! trip count and constants depend on the key — and every dispatch
//! result is checked against the closed form [`expected`], so a replay
//! is also a 10⁶-dispatch correctness oracle.

use dyc::{Compiler, SharedOptions, Value};
use dyc_obs::{LatencyHistogram, LiveHandles};
use dyc_rt::{ConcSnapshot, SharedRuntime};
use dyc_vm::{CostModel, Vm};
use dyc_workloads::rng::SplitMix64;
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// The four serving key-stream shapes. See the [module docs](self) for
/// what each one stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Steady-state skew: zipf(s)-ranked keys over a fixed keyspace.
    Zipfian,
    /// Rolling working set: a uniform window sliding one key every
    /// `churn_interval` dispatches.
    Churn,
    /// Uniform baseline with periodic single-key hot bursts.
    FlashCrowd,
    /// All threads dispatch the same fresh-key sequence in lockstep.
    Stampede,
}

/// All four patterns, in reporting order.
pub const ALL_PATTERNS: [Pattern; 4] = [
    Pattern::Zipfian,
    Pattern::Churn,
    Pattern::FlashCrowd,
    Pattern::Stampede,
];

impl Pattern {
    /// Stable lowercase name (CLI flag value and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Zipfian => "zipfian",
            Pattern::Churn => "churn",
            Pattern::FlashCrowd => "flash_crowd",
            Pattern::Stampede => "stampede",
        }
    }

    /// Parse a CLI name (`zipfian`/`zipf`, `churn`, `flash_crowd`/
    /// `flash`, `stampede`).
    pub fn parse(s: &str) -> Option<Pattern> {
        match s {
            "zipfian" | "zipf" => Some(Pattern::Zipfian),
            "churn" => Some(Pattern::Churn),
            "flash_crowd" | "flash" => Some(Pattern::FlashCrowd),
            "stampede" => Some(Pattern::Stampede),
            _ => None,
        }
    }
}

/// Distribution parameters for one key stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Which shape to generate.
    pub pattern: Pattern,
    /// Keyspace size for [`Pattern::Zipfian`] ranks and the
    /// [`Pattern::FlashCrowd`] baseline.
    pub keys: u64,
    /// Zipf exponent `s`: rank `r` (1-based) has probability
    /// `r^-s / H(keys, s)`. The default 1.1 is the classic web-cache
    /// skew (hottest key ≈ 14% of traffic over 4096 keys).
    pub zipf_s: f64,
    /// [`Pattern::Churn`] window width (live keys at any moment).
    pub churn_window: u64,
    /// [`Pattern::Churn`]: the window slides one key every this many
    /// dispatches, so each thread retires one key and mints one fresh
    /// key per interval.
    pub churn_interval: u64,
    /// [`Pattern::FlashCrowd`] burst cycle length in dispatches.
    pub flash_period: u64,
    /// [`Pattern::FlashCrowd`]: the first `flash_burst` dispatches of
    /// each period are the burst.
    pub flash_burst: u64,
    /// [`Pattern::FlashCrowd`]: probability a burst dispatch hits the
    /// burst's (fresh) hot key instead of the baseline.
    pub flash_hot_share: f64,
    /// [`Pattern::Stampede`]: consecutive dispatches per key per thread
    /// before the whole fleet moves to the next fresh key.
    pub stampede_repeat: u64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            pattern: Pattern::Zipfian,
            keys: 4096,
            zipf_s: 1.1,
            churn_window: 512,
            churn_interval: 64,
            flash_period: 8192,
            flash_burst: 2048,
            flash_hot_share: 0.9,
            stampede_repeat: 4,
        }
    }
}

impl StreamConfig {
    /// A default-parameter config for `pattern`.
    pub fn of(pattern: Pattern) -> StreamConfig {
        StreamConfig {
            pattern,
            ..StreamConfig::default()
        }
    }
}

/// A stream factory: owns the (shared, read-only) zipf CDF table so the
/// per-thread streams don't rebuild it.
#[derive(Debug, Clone)]
pub struct TrafficGen {
    cfg: StreamConfig,
    /// Cumulative zipf distribution over ranks `0..keys`, built once.
    cdf: Option<Arc<[f64]>>,
}

impl TrafficGen {
    /// Build the factory (computes the zipf CDF when the pattern needs
    /// it — O(keys), once).
    pub fn new(cfg: StreamConfig) -> TrafficGen {
        let cdf = (cfg.pattern == Pattern::Zipfian).then(|| {
            let n = cfg.keys.max(1) as usize;
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(n);
            for r in 1..=n {
                acc += (r as f64).powf(-cfg.zipf_s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            Arc::from(cdf.into_boxed_slice())
        });
        TrafficGen { cfg, cdf }
    }

    /// The config this factory generates from.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The deterministic key stream for one `(seed, thread)` pair.
    pub fn stream(&self, seed: u64, thread: u32) -> KeyStream {
        // Per-thread decorrelation: golden-ratio stride on the thread
        // index, xor'd into the seed. Position-driven patterns (churn
        // windows, stampede, flash bursts) stay in lockstep across
        // threads by construction; only the uniform draws differ.
        let tseed = seed ^ (u64::from(thread) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        KeyStream {
            cfg: self.cfg,
            cdf: self.cdf.clone(),
            rng: SplitMix64::seed_from_u64(tseed),
            pos: 0,
        }
    }
}

/// One thread's infinite key sequence. [`KeyStream::next_key`] is the
/// whole API; the stream never ends.
#[derive(Debug, Clone)]
pub struct KeyStream {
    cfg: StreamConfig,
    cdf: Option<Arc<[f64]>>,
    rng: SplitMix64,
    pos: u64,
}

impl KeyStream {
    /// The next key. Keys are non-negative and small enough that
    /// [`expected`] never overflows (`< 2^40` for any realistic run).
    pub fn next_key(&mut self) -> u64 {
        let pos = self.pos;
        self.pos += 1;
        match self.cfg.pattern {
            Pattern::Zipfian => {
                let cdf = self.cdf.as_ref().expect("zipf stream has a CDF");
                let u = self.rng.gen_f64();
                // First rank whose cumulative mass covers u.
                cdf.partition_point(|&c| c < u) as u64
            }
            Pattern::Churn => {
                let base = pos / self.cfg.churn_interval.max(1);
                base + self.rng.next_u64() % self.cfg.churn_window.max(1)
            }
            Pattern::FlashCrowd => {
                let period = self.cfg.flash_period.max(1);
                let in_burst = pos % period < self.cfg.flash_burst;
                if in_burst && self.rng.gen_f64() < self.cfg.flash_hot_share {
                    // The burst's hot key: brand new each period, outside
                    // the baseline keyspace.
                    self.cfg.keys + pos / period
                } else {
                    self.rng.next_u64() % self.cfg.keys.max(1)
                }
            }
            Pattern::Stampede => pos / self.cfg.stampede_repeat.max(1),
        }
    }
}

/// DyCL source for the served region: a `make_static(key)`-specialized
/// loop whose trip count (`key % 8 + 1`) and constants are baked per
/// key, with one dynamic argument `x` flowing through. `bound`
/// generates `cache_all(k)` instead of the unbounded default, for the
/// eviction hit-rate curves.
pub fn serve_source(bound: Option<u32>) -> String {
    let policy = match bound {
        Some(k) => format!(": cache_all({k})"),
        None => String::new(),
    };
    format!(
        "int serve(int key, int x) {{ make_static(key{policy});
            int acc = x; int i = key % 8 + 1;
            while (i > 0) {{ acc = acc * 3 + key + i; i = i - 1; }}
            return acc; }}"
    )
}

/// Closed form of [`serve_source`]'s result — the per-dispatch oracle.
pub fn expected(key: i64, x: i64) -> i64 {
    let mut acc = x;
    let mut i = key % 8 + 1;
    while i > 0 {
        acc = acc * 3 + key + i;
        i -= 1;
    }
    acc
}

/// One replay run: a stream config, a scale, and the runtime options to
/// replay under.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The key-stream distribution.
    pub stream: StreamConfig,
    /// Total dispatches across all threads.
    pub dispatches: u64,
    /// Serving threads (each gets its own [`dyc_rt::ThreadRuntime`],
    /// module replica, and VM).
    pub threads: usize,
    /// Stream seed — same seed, same config → same per-thread key
    /// sequences, bit-for-bit.
    pub seed: u64,
    /// Runtime construction options. `latency` is forced on (the report
    /// needs the miss histogram).
    pub opts: SharedOptions,
    /// `cache_all(k)` bound compiled into the source (`None` =
    /// unbounded).
    pub bound: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig::default(),
            dispatches: 1_000_000,
            threads: 16,
            seed: 42,
            opts: SharedOptions::default(),
            bound: None,
        }
    }
}

/// Everything one replay measured. All latency figures are wall
/// nanoseconds from the runtime's per-thread miss histograms (whole-run,
/// not a trailing event window).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Stream name ([`Pattern::name`]).
    pub pattern: &'static str,
    /// Dispatches actually replayed.
    pub dispatches: u64,
    /// Serving threads.
    pub threads: usize,
    /// Stream seed.
    pub seed: u64,
    /// Longest per-thread wall time (threads start together on a
    /// barrier, so this is the serving makespan).
    pub wall_ns: u64,
    /// Dispatches per second over `wall_ns`.
    pub throughput: f64,
    /// Cache-hit dispatches.
    pub hits: u64,
    /// Dispatch misses (specialize, wait, fallback, race, or policy
    /// deferral).
    pub misses: u64,
    /// `hits / dispatches`.
    pub hit_rate: f64,
    /// Merged miss-path latency histogram across threads.
    pub miss_hist: LatencyHistogram,
    /// Mean hash probes per cache lookup (shard meters).
    pub probes_per_lookup: f64,
    /// Hottest shard's share of lookups relative to a perfectly even
    /// spread (1.0 = balanced, N = everything on one of N shards).
    pub shard_imbalance: f64,
    /// Resolved code-cache shard count.
    pub cache_shards: usize,
    /// Resolved flight-map shard count.
    pub flight_shards: usize,
    /// The shared runtime's global meters at the end of the run.
    pub snapshot: ConcSnapshot,
    /// Order-independent digest of the final code cache: an FNV-1a hash
    /// per `(site, key, code)` binding — where `code` is the canonical
    /// instruction stream plus frame shape, not install addresses or
    /// generated names — combined with a commutative sum so publication
    /// order (and hence global-id assignment) doesn't matter. Two
    /// replays of the same config must agree — the serving suite's
    /// byte-identity check for sampled vs unsampled runs.
    pub code_digest: u64,
}

impl ServeReport {
    /// Check the meter-balance identities the runtime guarantees; the
    /// CI smoke job runs every replay through this.
    ///
    /// * every dispatch is a hit or a miss,
    /// * every miss is exactly one of: a won specialization, a
    ///   single-flight wait, a fallback, a lost publication race, or a
    ///   policy deferral/throttle,
    /// * every cache lookup is a dispatch or a winner's/racer's
    ///   post-lock re-probe.
    ///
    /// # Errors
    ///
    /// Returns a description of the first identity that fails.
    pub fn balance_check(&self) -> Result<(), String> {
        let s = &self.snapshot;
        if self.hits + self.misses != self.dispatches {
            return Err(format!(
                "hits {} + misses {} != dispatches {}",
                self.hits, self.misses, self.dispatches
            ));
        }
        let accounted = s.specializations
            + s.single_flight_waits
            + s.single_flight_fallbacks
            + s.single_flight_races
            + s.policy_defers
            + s.policy_throttled;
        if self.misses != accounted {
            return Err(format!(
                "misses {} != spec {} + waits {} + fallbacks {} + races {} \
                 + defers {} + throttles {}",
                self.misses,
                s.specializations,
                s.single_flight_waits,
                s.single_flight_fallbacks,
                s.single_flight_races,
                s.policy_defers,
                s.policy_throttled
            ));
        }
        let lookups: u64 = s.shards.iter().map(|m| m.lookups).sum();
        if lookups != self.dispatches + s.specializations + s.single_flight_races {
            return Err(format!(
                "shard lookups {} != dispatches {} + specializations {} + races {}",
                lookups, self.dispatches, s.specializations, s.single_flight_races
            ));
        }
        if self.miss_hist.count() != self.misses {
            return Err(format!(
                "histogram count {} != misses {}",
                self.miss_hist.count(),
                self.misses
            ));
        }
        Ok(())
    }

    /// Render the report as a JSON object, indented by `indent` spaces
    /// (hand-rolled like the rest of BENCH_dyncompile.json — no serde).
    pub fn json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let p = " ".repeat(indent + 2);
        let (p50, p95, p99, max) = self.miss_hist.quantiles();
        let s = &self.snapshot;
        let mut out = String::new();
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{p}\"pattern\": \"{}\",", self.pattern);
        let _ = writeln!(out, "{p}\"dispatches\": {},", self.dispatches);
        let _ = writeln!(out, "{p}\"threads\": {},", self.threads);
        let _ = writeln!(out, "{p}\"seed\": {},", self.seed);
        let _ = writeln!(out, "{p}\"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(out, "{p}\"throughput_per_s\": {:.1},", self.throughput);
        let _ = writeln!(out, "{p}\"hits\": {},", self.hits);
        let _ = writeln!(out, "{p}\"misses\": {},", self.misses);
        let _ = writeln!(out, "{p}\"hit_rate\": {:.6},", self.hit_rate);
        let _ = writeln!(out, "{p}\"p50_miss_ns\": {p50},");
        let _ = writeln!(out, "{p}\"p95_miss_ns\": {p95},");
        let _ = writeln!(out, "{p}\"p99_miss_ns\": {p99},");
        let _ = writeln!(out, "{p}\"max_miss_ns\": {max},");
        let _ = writeln!(out, "{p}\"mean_miss_ns\": {:.1},", self.miss_hist.mean());
        let _ = writeln!(out, "{p}\"specializations\": {},", s.specializations);
        let _ = writeln!(out, "{p}\"flight_waits\": {},", s.single_flight_waits);
        let _ = writeln!(
            out,
            "{p}\"flight_fallbacks\": {},",
            s.single_flight_fallbacks
        );
        let _ = writeln!(out, "{p}\"flight_races\": {},", s.single_flight_races);
        let _ = writeln!(out, "{p}\"evictions\": {},", s.cache_evictions);
        let _ = writeln!(out, "{p}\"policy_defers\": {},", s.policy_defers);
        let _ = writeln!(
            out,
            "{p}\"probes_per_lookup\": {:.4},",
            self.probes_per_lookup
        );
        let _ = writeln!(out, "{p}\"shard_imbalance\": {:.3},", self.shard_imbalance);
        let _ = writeln!(out, "{p}\"cache_shards\": {},", self.cache_shards);
        let _ = writeln!(out, "{p}\"flight_shards\": {},", self.flight_shards);
        let _ = writeln!(out, "{p}\"code_digest\": \"{:#018x}\",", self.code_digest);
        let lookups: Vec<String> = s
            .shards
            .iter()
            .map(|m| m.lookups.to_string())
            .collect::<Vec<_>>();
        let _ = writeln!(out, "{p}\"shard_lookups\": [{}]", lookups.join(", "));
        let _ = write!(out, "{pad}}}");
        out
    }
}

/// Replay `cfg.dispatches` keys against a fresh shared runtime from
/// `cfg.threads` threads, validating every result against [`expected`].
///
/// Threads line up on a barrier, then each replays its slice of the
/// dispatch budget from its own deterministic stream. The report merges
/// the per-thread miss histograms and the runtime's global meters.
///
/// # Errors
///
/// Returns an error if the serve program fails to compile, any dispatch
/// errors, or any result diverges from the closed-form oracle.
///
/// # Panics
///
/// Panics if a serving thread panics (the panic is propagated).
pub fn replay(cfg: &ServeConfig) -> Result<ServeReport, String> {
    replay_live(cfg, None)
}

/// FNV-1a over one cache binding: site, key words, then the code's
/// canonical debug rendering (instruction-exact, so any codegen
/// divergence changes the digest).
fn entry_digest(site: u32, key: &[u64], code: &str) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h ^= u64::from(site);
    h = h.wrapping_mul(PRIME);
    for w in key {
        h ^= *w;
        h = h.wrapping_mul(PRIME);
    }
    for b in code.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// [`replay`] with live telemetry attached: the handles' registry (and
/// flight recorder, when present) are wired into the shared runtime
/// before any serving thread is created, so every thread registers a
/// live slot. Pass `None` for a plain replay — the two must produce
/// identical results, meters, and code (see
/// [`ServeReport::code_digest`]).
///
/// # Errors
///
/// Same failure modes as [`replay`].
///
/// # Panics
///
/// Panics if a serving thread panics (the panic is propagated).
pub fn replay_live(cfg: &ServeConfig, live: Option<&LiveHandles>) -> Result<ServeReport, String> {
    let program = Compiler::new()
        .compile(&serve_source(cfg.bound))
        .map_err(|e| format!("serve source: {e}"))?;
    let mut opts = cfg.opts;
    opts.latency = true;
    let shared = program.shared_runtime_with(opts);
    if let Some(h) = live {
        shared.attach_live(h.clone());
    }
    let gen = TrafficGen::new(cfg.stream);
    let threads = cfg.threads.max(1);
    let barrier = Barrier::new(threads);
    let per = cfg.dispatches / threads as u64;
    let extra = (cfg.dispatches % threads as u64) as usize;

    struct ThreadOut {
        wall_ns: u64,
        dispatches: u64,
        hist: LatencyHistogram,
    }

    let outs: Vec<ThreadOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let shared = &shared;
                let gen = &gen;
                let barrier = &barrier;
                let n = per + u64::from(t < extra);
                s.spawn(move || -> Result<ThreadOut, String> {
                    let mut h = SharedRuntime::thread(shared);
                    let mut module = shared.base_module();
                    let mut vm = Vm::new(CostModel::alpha21164());
                    let id = module
                        .func_by_name("serve")
                        .ok_or("no serve function".to_string())?;
                    let mut stream = gen.stream(cfg.seed, t as u32);
                    barrier.wait();
                    let t0 = Instant::now();
                    for i in 0..n {
                        let key = stream.next_key() as i64;
                        let x = (i % 5) as i64;
                        let out = vm
                            .call_with_handler(
                                &mut module,
                                &mut h,
                                id,
                                &[Value::I(key), Value::I(x)],
                            )
                            .map_err(|e| format!("thread {t}, dispatch {i}: {e}"))?;
                        if out != Some(Value::I(expected(key, x))) {
                            return Err(format!(
                                "thread {t}: serve({key}, {x}) = {out:?}, expected {}",
                                expected(key, x)
                            ));
                        }
                    }
                    let wall_ns = t0.elapsed().as_nanos() as u64;
                    let hist = h
                        .miss_latency()
                        .cloned()
                        .ok_or("latency histogram missing".to_string())?;
                    Ok(ThreadOut {
                        wall_ns,
                        dispatches: n,
                        hist,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;

    let mut hist = LatencyHistogram::new();
    let mut wall_ns = 0;
    let mut dispatches = 0;
    for o in &outs {
        hist.merge(&o.hist);
        wall_ns = wall_ns.max(o.wall_ns);
        dispatches += o.dispatches;
    }
    let code_digest = shared
        .cache_snapshot()
        .into_iter()
        .map(|(site, key, gid)| {
            // Canonical rendering: the instruction stream plus frame
            // shape. `name` embeds the compiling thread's module length
            // and `base_addr` the install order — both vary with
            // scheduling even though the published code is semantically
            // identical, so they stay out of the digest.
            let f = shared.code(gid);
            let canon = format!("{}/{}:{:?}", f.n_params, f.n_regs, f.code);
            entry_digest(site, &key, &canon)
        })
        .fold(0u64, u64::wrapping_add);
    let snapshot = shared.stats();
    let misses = hist.count();
    let lookups: u64 = snapshot.shards.iter().map(|m| m.lookups).sum();
    let probes: u64 = snapshot.shards.iter().map(|m| m.probes).sum();
    let hottest = snapshot.shards.iter().map(|m| m.lookups).max().unwrap_or(0);
    let n_shards = snapshot.shards.len().max(1) as f64;
    let report = ServeReport {
        pattern: cfg.stream.pattern.name(),
        dispatches,
        threads,
        seed: cfg.seed,
        wall_ns,
        throughput: if wall_ns == 0 {
            0.0
        } else {
            dispatches as f64 / (wall_ns as f64 / 1e9)
        },
        hits: dispatches - misses,
        misses,
        hit_rate: if dispatches == 0 {
            0.0
        } else {
            (dispatches - misses) as f64 / dispatches as f64
        },
        miss_hist: hist,
        probes_per_lookup: if lookups == 0 {
            0.0
        } else {
            probes as f64 / lookups as f64
        },
        shard_imbalance: if lookups == 0 {
            1.0
        } else {
            hottest as f64 / (lookups as f64 / n_shards)
        },
        cache_shards: shared.n_cache_shards(),
        flight_shards: shared.n_flight_shards(),
        snapshot,
        code_digest,
    };
    Ok(report)
}

/// One point on an eviction hit-rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The `cache_all(k)` bound (0 = unbounded).
    pub bound: u32,
    /// Whole-run hit rate at that bound.
    pub hit_rate: f64,
    /// Clock evictions performed.
    pub evictions: u64,
    /// Specializations performed (re-specialization of evicted keys
    /// shows up here).
    pub specializations: u64,
}

/// Replay the same stream at each `cache_all(k)` bound (plus unbounded
/// when `bounds` contains 0) and report the hit-rate curve — the
/// serving-side view of the paper's cache-policy tradeoff.
///
/// # Errors
///
/// Propagates the first failing [`replay`].
pub fn hit_rate_curve(cfg: &ServeConfig, bounds: &[u32]) -> Result<Vec<CurvePoint>, String> {
    let mut out = Vec::with_capacity(bounds.len());
    for &b in bounds {
        let mut c = cfg.clone();
        c.bound = (b > 0).then_some(b);
        let r = replay(&c)?;
        r.balance_check()?;
        out.push(CurvePoint {
            bound: b,
            hit_rate: r.hit_rate,
            evictions: r.snapshot.cache_evictions,
            specializations: r.snapshot.specializations,
        });
    }
    Ok(out)
}

/// Render a hit-rate curve as a JSON array, indented by `indent`.
pub fn curve_json(points: &[CurvePoint], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let p = " ".repeat(indent + 2);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}[");
    for (i, c) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{p}{{\"bound\": {}, \"hit_rate\": {:.6}, \"evictions\": {}, \
             \"specializations\": {}}}{comma}",
            c.bound, c.hit_rate, c.evictions, c.specializations
        );
    }
    let _ = write!(out, "{pad}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed_and_thread() {
        for pattern in ALL_PATTERNS {
            let gen = TrafficGen::new(StreamConfig::of(pattern));
            let a: Vec<u64> = {
                let mut s = gen.stream(7, 3);
                (0..1000).map(|_| s.next_key()).collect()
            };
            let b: Vec<u64> = {
                let mut s = gen.stream(7, 3);
                (0..1000).map(|_| s.next_key()).collect()
            };
            assert_eq!(a, b, "{pattern:?} must replay identically");
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let gen = TrafficGen::new(StreamConfig::of(Pattern::Zipfian));
        let mut s = gen.stream(1, 0);
        let mut hot = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = s.next_key();
            assert!(k < 4096);
            if k == 0 {
                hot += 1;
            }
        }
        // zipf(1.1) over 4096 keys gives rank 1 ≈ 13% of mass.
        let share = hot as f64 / n as f64;
        assert!(
            (0.08..0.20).contains(&share),
            "rank-0 share {share} out of zipf range"
        );
    }

    #[test]
    fn churn_window_slides_and_stampede_is_lockstep() {
        let gen = TrafficGen::new(StreamConfig::of(Pattern::Churn));
        let mut s = gen.stream(5, 0);
        let early = s.next_key();
        for _ in 0..100_000 {
            s.next_key();
        }
        let late = s.next_key();
        // After 10⁵ dispatches at interval 64 the window base moved
        // ~1500 keys; early keys can no longer appear.
        assert!(late > early, "window must slide forward");

        let gen = TrafficGen::new(StreamConfig::of(Pattern::Stampede));
        let mut a = gen.stream(5, 0);
        let mut b = gen.stream(5, 9);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key(), "stampede threads in lockstep");
        }
    }

    #[test]
    fn flash_crowd_bursts_hit_a_fresh_hot_key() {
        let cfg = StreamConfig::of(Pattern::FlashCrowd);
        let gen = TrafficGen::new(cfg);
        let mut s = gen.stream(3, 0);
        let mut burst_hot = 0u64;
        for i in 0..cfg.flash_burst {
            let k = s.next_key();
            if k >= cfg.keys {
                assert_eq!(k, cfg.keys, "period 0's hot key is `keys + 0`");
                burst_hot += 1;
            }
            let _ = i;
        }
        let share = burst_hot as f64 / cfg.flash_burst as f64;
        assert!(
            (0.85..0.95).contains(&share),
            "burst hot share {share} should be ~0.9"
        );
    }

    #[test]
    fn expected_matches_a_hand_computation() {
        // key 2 → i runs 3,2,1: acc = ((x*3+5)*3+4)*3+3.
        let x = 7;
        assert_eq!(expected(2, x), ((x * 3 + 5) * 3 + 4) * 3 + 3);
        // key 0 → one iteration: acc = x*3 + key + 1.
        assert_eq!(expected(0, 1), 4);
    }

    #[test]
    fn small_replay_balances_and_validates() {
        let cfg = ServeConfig {
            stream: StreamConfig::of(Pattern::Zipfian),
            dispatches: 20_000,
            threads: 4,
            ..ServeConfig::default()
        };
        let r = replay(&cfg).unwrap();
        r.balance_check().unwrap();
        assert_eq!(r.dispatches, 20_000);
        assert!(r.hit_rate > 0.8, "zipfian converges hot: {}", r.hit_rate);
        assert!(r.miss_hist.count() > 0);
        let json = r.json(0);
        assert!(json.contains("\"pattern\": \"zipfian\""));
        assert!(json.contains("\"p99_miss_ns\""));
    }

    #[test]
    fn bounded_replay_evicts_under_churn() {
        let cfg = ServeConfig {
            stream: StreamConfig::of(Pattern::Churn),
            dispatches: 20_000,
            threads: 2,
            bound: Some(64),
            ..ServeConfig::default()
        };
        let r = replay(&cfg).unwrap();
        r.balance_check().unwrap();
        assert!(
            r.snapshot.cache_evictions > 0,
            "churn over a 64-bound site must evict"
        );
    }
}
