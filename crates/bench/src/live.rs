//! Live exposition plumbing for `dyc_serve --live` and `dycstat watch`:
//! a minimal std-only HTTP responder over [`TcpListener`] serving the
//! sampler's Prometheus text, plus the composite [`LiveServe`] bundle
//! (registry + flight recorder + sampler + optional server) the serving
//! binaries and tests share.
//!
//! The responder is deliberately tiny — one accept loop on a background
//! thread, `Connection: close` per request, no keep-alive, no routing
//! beyond "every GET gets the scrape" — because the workspace takes no
//! HTTP dependency and a Prometheus scrape needs nothing more.

use dyc_obs::{LiveHandles, Sampler, SamplerConfig, SamplerView, Window};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background HTTP server answering every request with the sampler's
/// current Prometheus exposition. Binds eagerly (so `--live` reports a
/// bad address immediately), accepts on a dedicated thread, and stops
/// on [`MetricsServer::stop`] or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port 0 to auto-pick) and
    /// start serving `view`'s exposition.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(addr: &str, view: SamplerView) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dyc-metrics".into())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are small and rare,
                            // and a slow client can't wedge the replay
                            // (only this serving thread).
                            let _ = respond(stream, &view);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read the request head (we ignore it — every request gets the
/// scrape) and write one `200 OK` with the exposition body.
fn respond(mut stream: TcpStream, view: &SamplerView) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let body = view.prometheus();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET against `addr` (e.g. `127.0.0.1:9184`),
/// returning the response body. Shared by `dycstat watch` and the
/// serving tests — the only HTTP client the workspace needs.
///
/// # Errors
///
/// I/O errors from connect/read/write, or a non-200 status line.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    if !text.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!(
            "unexpected response: {:?}",
            text.lines().next().unwrap_or("")
        )));
    }
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok(body)
}

/// The composite live-telemetry bundle `dyc_serve --live` (and
/// `bench_smoke`'s live section) runs: handles to attach to replays, a
/// running sampler, and an optional scrape endpoint.
#[derive(Debug)]
pub struct LiveServe {
    /// The handles to pass to `replay_live` — shared across every
    /// replay in the run so windows span the whole session.
    pub handles: LiveHandles,
    sampler: Sampler,
    server: Option<MetricsServer>,
}

impl LiveServe {
    /// Build handles (with a flight recorder when `cfg.watchdog` is
    /// armed), spawn the sampler, and bind the scrape endpoint when
    /// `addr` is given.
    ///
    /// # Errors
    ///
    /// Returns the bind error for a bad `addr`.
    pub fn start(addr: Option<&str>, cfg: SamplerConfig) -> std::io::Result<LiveServe> {
        let handles = if cfg.watchdog.is_some() {
            LiveHandles::with_flight(dyc_obs::DEFAULT_CAPACITY / 16)
        } else {
            LiveHandles::new()
        };
        let sampler = Sampler::spawn(Arc::clone(&handles.registry), handles.flight.clone(), cfg);
        let server = match addr {
            Some(a) => Some(MetricsServer::start(a, sampler.view())?),
            None => None,
        };
        Ok(LiveServe {
            handles,
            sampler,
            server,
        })
    }

    /// The scrape endpoint's bound address, when one was requested.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// A read handle onto the sampler.
    pub fn view(&self) -> SamplerView {
        self.sampler.view()
    }

    /// Stop the endpoint and the sampler (final flush window included)
    /// and return the retained windows and incidents.
    pub fn finish(self) -> (Vec<Window>, Vec<dyc_obs::IncidentRecord>) {
        if let Some(s) = self.server {
            s.stop();
        }
        self.sampler.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_obs::LiveMetric;

    #[test]
    fn server_answers_a_scrape_and_stops() {
        let live = LiveServe::start(
            Some("127.0.0.1:0"),
            SamplerConfig {
                interval: Duration::from_millis(20),
                ..SamplerConfig::default()
            },
        )
        .unwrap();
        let slot = live.handles.registry.register_thread();
        slot.add(LiveMetric::Dispatches, 5);
        slot.add(LiveMetric::Hits, 5);
        let addr = live.local_addr().unwrap().to_string();
        let body = http_get(&addr, "/metrics").unwrap();
        assert!(body.contains("# TYPE dyc_live_dispatches_total counter"));
        assert!(body.contains("dyc_live_dispatches_total 5"));
        let (windows, incidents) = live.finish();
        assert!(!windows.is_empty());
        assert!(incidents.is_empty());
        // The port is released after finish(): a fresh connect fails.
        assert!(TcpStream::connect(&addr).is_err() || http_get(&addr, "/").is_err());
    }

    #[test]
    fn http_get_rejects_a_dead_endpoint() {
        // Port 1 is essentially never listening.
        assert!(http_get("127.0.0.1:1", "/metrics").is_err());
    }
}
