//! # dyc-bench — table and figure reproduction harness
//!
//! One binary per table of the paper (`cargo run --release -p dyc-bench
//! --bin tableN`), a `figures` binary for Figures 2–4, plus targeted
//! harnesses for the §4.2/§4.4.3 analyses. Wall-clock benches
//! (measurements of the real Rust dynamic compiler and VM, on the
//! in-tree [`timing`] harness) live under `benches/`.
//!
//! Shared formatting helpers live here; [`traffic`] holds the serving
//! harness (deterministic key streams + the `dyc_serve` replay driver)
//! and [`live`] the live-telemetry exposition (the `--live` HTTP
//! endpoint and the sampler bundle behind it).

#![deny(missing_docs)]

pub mod live;
pub mod timing;
pub mod traffic;

use dyc_workloads::measure::RegionReport;

/// Render a speedup with one decimal, the paper's style.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.1}")
}

/// Render a break-even point in the benchmark's natural unit.
pub fn fmt_break_even(r: &RegionReport, unit: &str) -> String {
    match (r.break_even_invocations, r.break_even_units) {
        (Some(inv), Some(units)) if units != inv => {
            format!("{:.0} invocations ({:.0} {unit})", inv.ceil(), units.ceil())
        }
        (Some(inv), _) => format!("{:.0} {unit}", inv.ceil()),
        _ => "never".to_string(),
    }
}

/// Fixed-width cell.
pub fn cell(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Print a horizontal rule of the given width.
pub fn rule(w: usize) {
    println!("{}", "-".repeat(w));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(3.149), "3.1");
        assert_eq!(cell("ab", 5), "ab   ");
    }
}
