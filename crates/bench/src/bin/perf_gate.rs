//! `perf_gate` — CI regression gate over the deterministic cycle model.
//!
//! The cycle model (dispatch cost, dynamic-compile overhead, template
//! copy/patch split) is exactly reproducible run-to-run, so it can be
//! gated hard in CI without flakiness; wall-clock numbers are machine-
//! dependent and are reported but never gated.
//!
//! ```text
//! # distill a checked-in baseline from a full bench_smoke report
//! perf_gate distill BENCH_dyncompile.json --out BENCH_baseline.json
//!
//! # compare a fresh report against the baseline (exit 1 on regression)
//! perf_gate check BENCH_baseline.json fresh.json --tolerance 0.10
//! ```
//!
//! `distill` extracts the gateable cycle metrics — per-workload
//! `staged_overhead_cycles` / `unfused_overhead_cycles` /
//! `online_overhead_cycles` / `template_copy_cycles` /
//! `hole_patch_cycles` and per-site `dispatch_cycles` /
//! `dyncomp_cycles` — into a flat `cycle_model` table keyed
//! `workload` / `workload/siteN`, plus a report-only `wall_clock`
//! section. `check` accepts either a distilled baseline or a full
//! report on both sides (full reports are distilled on the fly) and
//! fails if any gated metric exceeds `baseline * (1 + tolerance)`, or
//! if a baseline metric disappeared from the current report.

use dyc_obs::Json;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Cycle metrics gated per workload row.
const WORKLOAD_METRICS: [&str; 5] = [
    "staged_overhead_cycles",
    "unfused_overhead_cycles",
    "online_overhead_cycles",
    "template_copy_cycles",
    "hole_patch_cycles",
];

/// Cycle metrics gated per `workload/siteN` row.
const SITE_METRICS: [&str; 2] = ["dispatch_cycles", "dyncomp_cycles"];

/// Wall-clock metrics carried for the report-only section.
const WALL_METRICS: [&str; 2] = ["vm_ns", "native_ns"];

/// One gated row: a name and its `(metric, value)` pairs.
type Row = (String, Vec<(String, f64)>);

/// Pull the gateable rows out of a full `bench_smoke` report, or pass
/// a distilled file through unchanged (idempotent).
fn distill(doc: &Json) -> Result<(Vec<Row>, Vec<Row>), String> {
    if doc.get("cycle_model").is_some() {
        return Ok((
            rows_of(doc.get("cycle_model"), None)?,
            rows_of(doc.get("wall_clock"), Some(&WALL_METRICS))?,
        ));
    }
    let mut cycle: Vec<Row> = Vec::new();
    for (wl, v) in obj(doc.get("workloads"), "workloads")? {
        cycle.push((wl.clone(), pick(v, &WORKLOAD_METRICS)));
    }
    for (wl, sites) in obj(doc.get("per_site"), "per_site")? {
        for (site, v) in obj(Some(sites), "per_site entry")? {
            cycle.push((format!("{wl}/{site}"), pick(v, &SITE_METRICS)));
        }
    }
    let wall = match doc.get("wall_clock") {
        Some(w) => obj(Some(w), "wall_clock")?
            .iter()
            .map(|(wl, v)| (wl.clone(), pick(v, &WALL_METRICS)))
            .collect(),
        None => Vec::new(),
    };
    Ok((cycle, wall))
}

/// Iterate an object's members, with a decent error when absent.
fn obj<'a>(v: Option<&'a Json>, what: &str) -> Result<&'a [(String, Json)], String> {
    match v {
        Some(Json::Obj(m)) => Ok(m),
        _ => Err(format!("input has no `{what}` object")),
    }
}

/// The named numeric members of `v`, in table order, skipping absent ones.
fn pick(v: &Json, metrics: &[&str]) -> Vec<(String, f64)> {
    metrics
        .iter()
        .filter_map(|m| Some(((*m).to_string(), v.get(m)?.num()?)))
        .collect()
}

/// Read a distilled section back into rows; `only` restricts metrics.
fn rows_of(section: Option<&Json>, only: Option<&[&str]>) -> Result<Vec<Row>, String> {
    let Some(section) = section else {
        return Ok(Vec::new());
    };
    let mut rows = Vec::new();
    for (name, v) in obj(Some(section), "section")? {
        let metrics = match v {
            Json::Obj(m) => m
                .iter()
                .filter(|(k, _)| only.is_none_or(|o| o.contains(&k.as_str())))
                .filter_map(|(k, v)| Some((k.clone(), v.num()?)))
                .collect(),
            _ => return Err(format!("`{name}` is not an object")),
        };
        rows.push((name.clone(), metrics));
    }
    Ok(rows)
}

/// Render distilled rows as the baseline JSON document.
fn render(cycle: &[Row], wall: &[Row]) -> String {
    let mut out = String::from("{\n");
    for (si, (section, rows)) in [("cycle_model", cycle), ("wall_clock", wall)]
        .iter()
        .enumerate()
    {
        let _ = writeln!(out, "  {}: {{", dyc_obs::json::escape(section));
        for (ri, (name, metrics)) in rows.iter().enumerate() {
            let body: Vec<String> = metrics
                .iter()
                .map(|(k, v)| format!("{}: {v}", dyc_obs::json::escape(k)))
                .collect();
            let comma = if ri + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {}: {{{}}}{comma}",
                dyc_obs::json::escape(name),
                body.join(", ")
            );
        }
        let comma = if si == 0 { "," } else { "" };
        let _ = writeln!(out, "  }}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Compare current rows against the baseline. Returns the failure
/// lines (empty = gate passes) and prints the delta table.
fn gate(base: &[Row], cur: &[Row], tol: f64) -> Vec<String> {
    let mut failures = Vec::new();
    println!(
        "{:<28} {:<24} {:>12} {:>12} {:>8}",
        "row", "metric", "baseline", "current", "delta"
    );
    for (name, metrics) in base {
        let cur_row = cur.iter().find(|(n, _)| n == name).map(|(_, m)| m);
        for (metric, b) in metrics {
            let c = cur_row.and_then(|m| m.iter().find(|(k, _)| k == metric));
            match c {
                Some((_, c)) => {
                    let delta = if *b == 0.0 { 0.0 } else { c / b - 1.0 };
                    let verdict = if *c > b * (1.0 + tol) || (*b == 0.0 && *c > 0.0) {
                        failures.push(format!(
                            "{name}.{metric}: {c} exceeds baseline {b} by more than {:.0}%",
                            tol * 100.0
                        ));
                        "FAIL"
                    } else {
                        ""
                    };
                    println!("{name:<28} {metric:<24} {b:>12} {c:>12} {delta:>+7.1}% {verdict}");
                }
                None => failures.push(format!("{name}.{metric}: missing from current report")),
            }
        }
    }
    failures
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf_gate distill <bench.json> [--out FILE]\n       \
         perf_gate check <baseline.json> <current.json> [--tolerance F]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("distill") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let doc = match load(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("perf_gate: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (cycle, wall) = match distill(&doc) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf_gate: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let text = render(&cycle, &wall);
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1));
            match out {
                Some(f) => {
                    if let Err(e) = std::fs::write(f, &text) {
                        eprintln!("perf_gate: write {f}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "distilled {} cycle rows + {} wall rows -> {f}",
                        cycle.len(),
                        wall.len()
                    );
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let (Some(base_path), Some(cur_path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let tol: f64 = args
                .iter()
                .position(|a| a == "--tolerance")
                .and_then(|i| args.get(i + 1))
                .map_or(0.10, |v| v.parse().expect("bad --tolerance"));
            let run = || -> Result<Vec<String>, String> {
                let (base_cycle, base_wall) = distill(&load(base_path)?)?;
                let (cur_cycle, cur_wall) = distill(&load(cur_path)?)?;
                let failures = gate(&base_cycle, &cur_cycle, tol);
                // Wall clock: machine-dependent, never gated.
                for (name, metrics) in &base_wall {
                    for (metric, b) in metrics {
                        if let Some((_, c)) = cur_wall
                            .iter()
                            .find(|(n, _)| n == name)
                            .and_then(|(_, m)| m.iter().find(|(k, _)| k == metric))
                        {
                            let delta = if *b == 0.0 { 0.0 } else { c / b - 1.0 };
                            println!(
                                "{name:<28} {metric:<24} {b:>12} {c:>12} {delta:>+7.1}% \
                                 (wall clock, report only)"
                            );
                        }
                    }
                }
                Ok(failures)
            };
            match run() {
                Ok(failures) if failures.is_empty() => {
                    println!("\nperf gate: PASS (tolerance {:.0}%)", tol * 100.0);
                    ExitCode::SUCCESS
                }
                Ok(failures) => {
                    eprintln!("\nperf gate: FAIL");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("perf_gate: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "workloads": {
            "alpha": {"instrs_generated": 10, "staged_overhead_cycles": 100,
                      "unfused_overhead_cycles": 120, "online_overhead_cycles": 200,
                      "template_copy_cycles": 8, "hole_patch_cycles": 24}
        },
        "per_site": {"alpha": {"site0": {"dispatch_cycles": 90, "dyncomp_cycles": 650,
                                          "uses": 9}}},
        "wall_clock": {"alpha": {"vm_ns": 1000, "native_ns": 100, "native_speedup": 10.0}}
    }"#;

    #[test]
    fn distill_extracts_gated_rows_and_round_trips() {
        let (cycle, wall) = distill(&Json::parse(SAMPLE).unwrap()).unwrap();
        assert_eq!(cycle.len(), 2);
        assert_eq!(cycle[0].0, "alpha");
        assert_eq!(cycle[0].1.len(), 5, "all five workload cycle metrics");
        assert_eq!(cycle[1].0, "alpha/site0");
        assert_eq!(
            cycle[1].1,
            vec![
                ("dispatch_cycles".to_string(), 90.0),
                ("dyncomp_cycles".to_string(), 650.0)
            ]
        );
        assert_eq!(wall[0].1.len(), 2, "wall metrics only, speedup dropped");
        // A distilled document distills to itself.
        let text = render(&cycle, &wall);
        let (c2, w2) = distill(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(c2, cycle);
        assert_eq!(w2, wall);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let (base, _) = distill(&Json::parse(SAMPLE).unwrap()).unwrap();
        let mut same = base.clone();
        assert!(gate(&base, &same, 0.10).is_empty(), "identical must pass");
        // +9% on one metric: inside a 10% tolerance.
        same[0].1[0].1 = 109.0;
        assert!(gate(&base, &same, 0.10).is_empty());
        // +11%: outside.
        same[0].1[0].1 = 111.0;
        let failures = gate(&base, &same, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("alpha.staged_overhead_cycles"));
    }

    #[test]
    fn gate_fails_on_a_vanished_row() {
        let (base, _) = distill(&Json::parse(SAMPLE).unwrap()).unwrap();
        let cur = vec![base[0].clone()];
        let failures = gate(&base, &cur, 0.10);
        assert_eq!(failures.len(), 2, "both site metrics reported missing");
        assert!(failures.iter().all(|f| f.contains("missing from current")));
    }

    #[test]
    fn checked_in_baseline_matches_the_checked_in_report() {
        // The repo's BENCH_baseline.json must stay the exact distillation
        // of BENCH_dyncompile.json — regenerate it when the bench
        // changes: `perf_gate distill BENCH_dyncompile.json --out
        // BENCH_baseline.json`.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let full = load(&format!("{root}/BENCH_dyncompile.json")).unwrap();
        let base = load(&format!("{root}/BENCH_baseline.json")).unwrap();
        let (fc, fw) = distill(&full).unwrap();
        let (bc, bw) = distill(&base).unwrap();
        assert_eq!(fc, bc, "BENCH_baseline.json is stale — re-run distill");
        assert_eq!(fw, bw);
        assert!(gate(&bc, &fc, 0.0).is_empty());
    }
}
