//! Table 5: Dynamic Region Asymptotic Speedups without a Particular
//! Feature.
//!
//! The paper's ablation study (§4.4): the normal all-optimizations
//! configuration against configurations each disabling exactly one staged
//! optimization. Cells are printed only where the optimization is
//! applicable to the benchmark (a check mark in Table 2), as in the paper.

use dyc::OptConfig;
use dyc_bench::{cell, fmt_speedup, rule};
use dyc_workloads::measure::{measure_region, opt_usage, OptUsage};
use dyc_workloads::{all, Kind};

/// (Table 5 column header, OptConfig feature name).
const COLUMNS: &[(&str, &str)] = &[
    ("Unroll", "complete_loop_unrolling"),
    ("StLoads", "static_loads"),
    ("Unchkd", "unchecked_dispatching"),
    ("StCalls", "static_calls"),
    ("Zero&Cp", "zero_copy_propagation"),
    ("DAE", "dead_assignment_elimination"),
    ("StrRed", "strength_reduction"),
    ("IntProm", "internal_promotions"),
    ("PolyDiv", "polyvariant_division"),
];

fn applicable(u: &OptUsage, feature: &str) -> bool {
    match feature {
        "complete_loop_unrolling" => u.loop_unrolling.is_some(),
        "static_loads" => u.static_loads,
        "unchecked_dispatching" => u.unchecked_dispatch,
        "static_calls" => u.static_calls,
        "zero_copy_propagation" => u.zero_copy,
        "dead_assignment_elimination" => u.dae,
        "strength_reduction" => u.strength_reduction,
        "internal_promotions" => u.internal_promotions,
        "polyvariant_division" => u.polyvariant_division,
        _ => false,
    }
}

fn main() {
    let reps = 3;
    println!("Table 5: Dynamic Region Asymptotic Speedups without a Particular Feature\n");
    let mut header = format!("{}{}", cell("Dynamic Region", 20), cell("All", 7));
    for (h, _) in COLUMNS {
        header.push_str(&cell(h, 9));
    }
    println!("{header}");
    rule(header.len());

    let mut section = Kind::Application;
    println!("Applications");
    for w in all() {
        let m = w.meta();
        if m.kind != section {
            section = m.kind;
            println!("Kernels");
        }
        let usage = opt_usage(w.as_ref());
        let base = measure_region(w.as_ref(), OptConfig::all(), reps);
        let mut line = format!(
            "{}{}",
            cell(m.name, 20),
            cell(&fmt_speedup(base.asymptotic_speedup), 7)
        );
        for (_, feature) in COLUMNS {
            if applicable(&usage, feature) {
                let cfg = OptConfig::all().without(feature).expect("known feature");
                let r = measure_region(w.as_ref(), cfg, reps);
                line.push_str(&cell(&fmt_speedup(r.asymptotic_speedup), 9));
            } else {
                line.push_str(&cell("", 9));
            }
        }
        println!("{line}");
    }

    println!();
    println!("Paper anchors (§4.4): complete loop unrolling is the single most important");
    println!("optimization — without it most programs slow down (<1.0). Static loads are");
    println!("similar. chebyshev without static calls falls from 6.3 to 1.2. pnmconvol");
    println!("without DAE falls to 0.9 (generated code overflows the L1 I-cache) and");
    println!("without zero/copy propagation to 2.1. binary and query without unchecked");
    println!("dispatching fall below 1.0.");
}
