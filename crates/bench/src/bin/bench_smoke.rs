//! CI bench-smoke: per-workload staged dynamic-compilation overhead with
//! the copy-and-patch split, written as `BENCH_dyncompile.json` so the
//! perf trajectory is tracked from commit to commit.
//!
//! For every workload this runs one specialization under three
//! configurations — fused (templates on), unfused (staged GE, hole by
//! hole), and online (run-time specializer) — and records the cycle
//! meters. A second section measures threaded scaling: T ∈ {1, 2, 4, 8}
//! threads over one shared concurrent runtime, recording wall-clock time
//! plus the contention meters (single-flight waits, suppressed duplicate
//! specializations, shard probe rates). A third section aggregates a
//! traced run into per-site §4.2 break-even profiles (see `dycstat`).
//! A fourth section prices the snapshot/warm-start path: the first
//! region invocation cold (specializing) vs. warm-started from the cold
//! session's cache bundle (every dispatch hits restored code).
//! A fifth section measures real time: steady-state wall-clock per
//! region invocation (median of N after warmup) under the fused VM vs.
//! the native x86-64 backend, so the modeled cycle numbers sit next to
//! nanoseconds and the backend's speedup is tracked per commit.
//! A sixth section prices the adaptive specialization policy on a
//! parametric region: a low-reuse key sequence (every key dispatched
//! once — specializing is pure loss) and a high-reuse sequence (few hot
//! keys — specializing is pure win), always vs. adaptive, in both
//! cycle-model overhead (dyncomp + dispatch) and native wall-clock
//! terms. The adaptive policy must strictly beat always-specialize on
//! the low-reuse sequence and stay within 2% on the high-reuse one.
//! A seventh section replays the serving harness at CI scale: seeded
//! zipfian and churn key streams from [`dyc_bench::traffic`] against one
//! shared runtime, meter-balance checked, recording throughput, hit
//! rate, and miss-path p50/p99 so serving regressions show up in the
//! tracked JSON (the full campaign lives in `dyc_serve`).
//! An eighth section exercises live telemetry: the zipfian stream is
//! replayed once unsampled and once with the sampler ticking and the
//! anomaly watchdog armed, and the two runs' code digests must match —
//! the observer-effect-free guarantee, enforced at CI scale.
//! The JSON is hand-rolled: the numbers are all `u64`/`f64` and a
//! serializer dependency would be the only reason to have one.
//!
//! Usage: `bench_smoke [output.json]` (default `BENCH_dyncompile.json`).

use dyc::{Compiler, OptConfig, PolicyMode, Program, RtStats, Value};
use dyc_workloads::{all, Workload};
use std::fmt::Write as _;
use std::time::Instant;

fn run_once(w: &dyn Workload, cfg: OptConfig) -> RtStats {
    let meta = w.meta();
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    let args = w.setup_region(&mut sess);
    let result = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
    assert!(
        w.check_region(result, &mut sess),
        "{}: wrong region result",
        meta.name
    );
    sess.rt_stats().expect("dynamic session").clone()
}

/// One threaded-scaling measurement: `threads` threads, each running
/// `reps` region invocations over one shared concurrent runtime.
/// Returns (wall-clock µs, shared-runtime snapshot).
fn run_threaded(
    w: &dyn Workload,
    program: &Program,
    threads: usize,
    reps: usize,
) -> (u128, dyc_rt::ConcSnapshot) {
    let meta = w.meta();
    let shared = program.shared_runtime();
    let sessions: Vec<_> = (0..threads)
        .map(|_| program.threaded_session(&shared))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for mut sess in sessions {
            scope.spawn(move || {
                let args = w.setup_region(&mut sess);
                sess.set_step_limit(200_000_000);
                for _ in 0..reps {
                    let r = sess
                        .run(meta.region_func, &args)
                        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
                    assert!(
                        w.check_region(r, &mut sess),
                        "{}: wrong region result",
                        meta.name
                    );
                    w.reset(&mut sess, &args);
                }
            });
        }
    });
    (start.elapsed().as_micros(), shared.stats())
}

/// A traced run's per-site profiles plus the region-level measurement
/// that prices a specialized use: (profiles, saved cycles per use).
fn run_per_site(w: &dyn Workload, reps: u64) -> (Vec<dyc::obs::SiteProfile>, f64) {
    let meta = w.meta();
    let mut cfg = OptConfig::all();
    cfg.trace = true;
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));

    let measure = |mut sess: dyc::Session| {
        let args = w.setup_region(&mut sess);
        sess.set_step_limit(200_000_000);
        let (out, _) = sess.run_measured(meta.region_func, &args).unwrap();
        assert!(
            w.check_region(out, &mut sess),
            "{}: wrong result",
            meta.name
        );
        let mut total = 0u64;
        for _ in 0..reps {
            w.reset(&mut sess, &args);
            let (_, d) = sess.run_measured(meta.region_func, &args).unwrap();
            total += d.run_cycles();
        }
        (total / reps, sess)
    };
    let (static_cycles, _) = measure(program.static_session());
    let (dyn_cycles, traced) = measure(program.dynamic_session());

    let profiles = dyc::obs::site_profiles(&traced.trace_events());
    let total_uses: u64 = profiles.iter().map(|p| p.uses()).sum();
    let saved = if total_uses == 0 || static_cycles <= dyn_cycles {
        0.0
    } else {
        (static_cycles - dyn_cycles) as f64 * (reps + 1) as f64 / total_uses as f64
    };
    (profiles, saved)
}

/// Cold-vs-warm first-dispatch cost. Runs the region once cold
/// (specializing), snapshots the session's cache bundle, warm-starts a
/// fresh session from it, and prices both first invocations including
/// dynamic-compilation cycles. Returns (cold cycles, warm cycles,
/// entries restored).
fn run_warm_start(w: &dyn Workload) -> (u64, u64, u64) {
    let meta = w.meta();
    let program = Compiler::new()
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));

    let first_invocation = |mut sess: dyc::Session| {
        let args = w.setup_region(&mut sess);
        sess.set_step_limit(200_000_000);
        let (out, d) = sess.run_measured(meta.region_func, &args).unwrap();
        assert!(
            w.check_region(out, &mut sess),
            "{}: wrong region result",
            meta.name
        );
        (d.total_cycles(), sess)
    };

    let (cold_cycles, cold) = first_invocation(program.dynamic_session());
    let bundle = cold.cache_bundle().expect("dynamic session");
    let restored = cold.cached_code().len() as u64;

    let warm = program
        .warm_start_from_str(&bundle)
        .unwrap_or_else(|e| panic!("{}: warm start failed: {e}", meta.name));
    let (warm_cycles, warm) = first_invocation(warm);
    let rt = warm.rt_stats().expect("dynamic session");
    assert_eq!(
        rt.cache_warm_loads, restored,
        "{}: bundle restored partially",
        meta.name
    );
    assert_eq!(
        rt.specializations, 0,
        "{}: warm first dispatch re-specialized",
        meta.name
    );
    (cold_cycles, warm_cycles, restored)
}

/// Steady-state wall-clock per region invocation under `cfg`: one
/// specializing invocation plus a few unmeasured steady-state rounds to
/// warm caches, then `reps` timed rounds. Returns the median
/// nanoseconds and the session's native-install count (zero under a
/// pure-VM config, or on hosts without the backend).
fn run_wall(w: &dyn Workload, cfg: OptConfig, reps: usize) -> (u64, u64) {
    let meta = w.meta();
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .unwrap_or_else(|e| panic!("{}: compile error: {e}", meta.name));
    let mut sess = program.dynamic_session();
    sess.set_step_limit(200_000_000);
    let args = w.setup_region(&mut sess);
    let out = sess
        .run(meta.region_func, &args)
        .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
    assert!(
        w.check_region(out, &mut sess),
        "{}: wrong region result",
        meta.name
    );
    for _ in 0..3 {
        w.reset(&mut sess, &args);
        sess.run(meta.region_func, &args).unwrap();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        w.reset(&mut sess, &args);
        let start = Instant::now();
        let r = sess.run(meta.region_func, &args);
        samples.push(start.elapsed().as_nanos() as u64);
        r.unwrap_or_else(|e| panic!("{}: timed run failed: {e}", meta.name));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rt = sess.rt_stats().expect("dynamic session");
    (median, rt.native_installs)
}

/// The parametric region for the policy comparison: completely unrolled
/// on the (static) exponent, so every distinct exponent is a distinct
/// cache key with a real specialization cost.
const POLICY_SRC: &str = r#"
    int power(int base, int exp) {
        make_static(exp);
        int r = 1;
        while (exp > 0) { r = r * base; exp = exp - 1; }
        return r;
    }
"#;

/// Drive `reps` rounds of the key sequence through a fresh session of
/// `program`, validating every result, and return the final counters
/// plus the cycle-model overhead total (dyncomp + dispatch cycles).
fn run_policy_cycles(program: &Program, keys: &[i64], reps: usize) -> (RtStats, u64) {
    let mut sess = program.dynamic_session();
    for _ in 0..reps {
        for &e in keys {
            let r = sess.run("power", &[Value::I(2), Value::I(e)]).unwrap();
            assert_eq!(r, Some(Value::I(1i64 << e)), "power(2, {e}) wrong");
        }
    }
    let rt = sess.rt_stats().expect("dynamic session").clone();
    let overhead = rt.dyncomp_cycles + rt.dispatch_cycles;
    (rt, overhead)
}

/// Wall-clock for the same sequence: each sample times a *fresh* session
/// end to end (the specialization overhead is exactly what is being
/// priced), returning the median nanoseconds over `samples` runs.
fn run_policy_wall(program: &Program, keys: &[i64], reps: usize, samples: usize) -> u64 {
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sess = program.dynamic_session();
        let start = Instant::now();
        for _ in 0..reps {
            for &e in keys {
                sess.run("power", &[Value::I(2), Value::I(e)]).unwrap();
            }
        }
        ns.push(start.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dyncompile.json".to_string());

    let fused_cfg = OptConfig::all();
    let unfused_cfg = OptConfig::all().without("template_fusion").unwrap();
    let online_cfg = OptConfig::all().without("staged_ge").unwrap();

    let mut json = String::from("{\n  \"workloads\": {\n");
    let workloads = all();
    for (i, w) in workloads.iter().enumerate() {
        let name = w.meta().name;
        let fused = run_once(w.as_ref(), fused_cfg);
        let unfused = run_once(w.as_ref(), unfused_cfg);
        let online = run_once(w.as_ref(), online_cfg);
        assert_eq!(
            fused.instrs_generated, online.instrs_generated,
            "{name}: paths generated different code"
        );
        let per_instr = fused.dyncomp_cycles as f64 / fused.instrs_generated as f64;
        println!(
            "{name:<22} staged {:>8} cy ({per_instr:>6.1}/instr)  \
             template copy {:>7} cy, hole patch {:>7} cy",
            fused.dyncomp_cycles, fused.template_copy_cycles, fused.hole_patch_cycles
        );
        write!(
            json,
            "    \"{name}\": {{\n      \
             \"instrs_generated\": {},\n      \
             \"staged_overhead_cycles\": {},\n      \
             \"staged_overhead_per_instr\": {per_instr:.2},\n      \
             \"template_copy_cycles\": {},\n      \
             \"hole_patch_cycles\": {},\n      \
             \"template_instrs\": {},\n      \
             \"holes_patched\": {},\n      \
             \"unfused_overhead_cycles\": {},\n      \
             \"online_overhead_cycles\": {}\n    }}{}\n",
            fused.instrs_generated,
            fused.dyncomp_cycles,
            fused.template_copy_cycles,
            fused.hole_patch_cycles,
            fused.template_instrs,
            fused.holes_patched,
            unfused.dyncomp_cycles,
            online.dyncomp_cycles,
            if i + 1 == workloads.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"threaded_scaling\": {\n");

    // Threaded scaling: same region sequence on every thread; the
    // blocking single-flight policy must suppress every duplicate
    // specialization, so the interesting numbers are wall-clock scaling
    // and the contention meters.
    const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const REPS: usize = 16;
    println!("\nthreaded scaling ({REPS} invocations/thread, wall-clock \u{b5}s):");
    for (i, w) in workloads.iter().enumerate() {
        let name = w.meta().name;
        let program = Compiler::with_config(fused_cfg)
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{name}: compile error: {e}"));
        write!(json, "    \"{name}\": {{").unwrap();
        print!("{name:<22}");
        for (j, &t) in THREAD_COUNTS.iter().enumerate() {
            let (wall_us, s) = run_threaded(w.as_ref(), &program, t, REPS);
            let (lookups, probes) = s
                .shards
                .iter()
                .fold((0u64, 0u64), |(l, p), m| (l + m.lookups, p + m.probes));
            let probes_per_lookup = if lookups == 0 {
                0.0
            } else {
                probes as f64 / lookups as f64
            };
            print!("  t{t}: {wall_us:>7}");
            if t == THREAD_COUNTS[THREAD_COUNTS.len() - 1] {
                print!(
                    "  (suppressed {} dup specs, {:.2} probes/lookup)",
                    s.single_flight_suppressed(),
                    probes_per_lookup
                );
            }
            write!(
                json,
                "{}\n      \"t{t}\": {{ \"wall_us\": {wall_us}, \
                 \"specializations\": {}, \"single_flight_waits\": {}, \
                 \"single_flight_suppressed\": {}, \"cache_evictions\": {}, \
                 \"cache_lookups\": {lookups}, \"probes_per_lookup\": {probes_per_lookup:.3} }}",
                if j == 0 { "" } else { "," },
                s.specializations,
                s.single_flight_waits,
                s.single_flight_suppressed(),
                s.cache_evictions,
            )
            .unwrap();
        }
        println!();
        writeln!(
            json,
            "\n    }}{}",
            if i + 1 == workloads.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"per_site\": {\n");

    // Per-site break-even profiles from a traced run (§4.2): every
    // specialized site must amortize in finitely many uses.
    println!("\nper-site break-even (uses to amortize dynamic compilation):");
    for (i, w) in workloads.iter().enumerate() {
        let name = w.meta().name;
        let (profiles, saved) = run_per_site(w.as_ref(), 8);
        write!(json, "    \"{name}\": {{").unwrap();
        print!("{name:<22}");
        for (j, p) in profiles.iter().enumerate() {
            let be = p.break_even(saved);
            if p.specializations > 0 {
                assert!(
                    be.is_some(),
                    "{name} site {}: specialized but never breaks even",
                    p.site
                );
                print!("  site {}: {:.1}", p.site, be.unwrap());
            }
            write!(
                json,
                "{}\n      \"site{}\": {{ \"specializations\": {}, \"variants\": {}, \
                 \"uses\": {}, \"dispatch_cycles\": {}, \"dyncomp_cycles\": {}, \
                 \"break_even_uses\": {} }}",
                if j == 0 { "" } else { "," },
                p.site,
                p.specializations,
                p.variants,
                p.uses(),
                p.dispatch_cycles,
                p.dyncomp_cycles,
                be.map_or("null".to_string(), |b| format!("{b:.2}")),
            )
            .unwrap();
        }
        println!();
        writeln!(
            json,
            "\n    }}{}",
            if i + 1 == workloads.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"warm_start\": {\n");

    // Snapshot / warm-start: the cycles a warm start saves on the first
    // region invocation by restoring serialized specializations instead
    // of compiling them.
    println!("\nwarm start (first region invocation, cycles):");
    for (i, w) in workloads.iter().enumerate() {
        let name = w.meta().name;
        let (cold, warm, restored) = run_warm_start(w.as_ref());
        println!(
            "{name:<22} cold {cold:>9}  warm {warm:>9}  ({:.1}x, {restored} entries restored)",
            cold as f64 / warm.max(1) as f64
        );
        writeln!(
            json,
            "    \"{name}\": {{ \"cold_first_cycles\": {cold}, \"warm_first_cycles\": {warm}, \
             \"entries_restored\": {restored} }}{}",
            if i + 1 == workloads.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"wall_clock\": {\n");

    // Wall clock: the same steady-state region invocation through the
    // fused VM and through the native backend. The modeled cycle
    // numbers above are backend-independent; this is where the cycle-
    // model speedups have to show up as real nanoseconds.
    const WALL_REPS: usize = 33;
    let native_cfg = OptConfig {
        native: true,
        ..OptConfig::all()
    };
    println!("\nsteady-state wall clock (median of {WALL_REPS} invocations, ns):");
    for (i, w) in workloads.iter().enumerate() {
        let name = w.meta().name;
        let (vm_ns, _) = run_wall(w.as_ref(), fused_cfg, WALL_REPS);
        let (native_ns, installs) = run_wall(w.as_ref(), native_cfg, WALL_REPS);
        let speedup = vm_ns as f64 / native_ns.max(1) as f64;
        println!(
            "{name:<22} vm {vm_ns:>9} ns  native {native_ns:>9} ns  \
             ({speedup:.2}x, {installs} installs)"
        );
        writeln!(
            json,
            "    \"{name}\": {{ \"vm_ns\": {vm_ns}, \"native_ns\": {native_ns}, \
             \"native_installs\": {installs}, \"native_speedup\": {speedup:.3} }}{}",
            if i + 1 == workloads.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"policy\": {\n");

    // Adaptive policy: the same parametric region under two key-reuse
    // regimes. Low reuse (every key once) is the case specialization
    // cannot amortize — the adaptive engine must defer everything and
    // strictly beat always-specialize on total overhead. High reuse
    // (few hot keys, many dispatches each) is the case specialization
    // always wins — deferring each key once must cost at most 2%.
    let low_keys: Vec<i64> = (5..25).collect();
    let high_keys: Vec<i64> = vec![4, 9, 14];
    const HIGH_REPS: usize = 32;
    const POLICY_WALL_SAMPLES: usize = 9;
    let always_prog = |cfg: OptConfig| {
        Compiler::with_config(cfg)
            .compile(POLICY_SRC)
            .expect("policy bench source compiles")
    };
    let vm_always = always_prog(fused_cfg);
    let vm_adaptive = always_prog(fused_cfg.with_policy(PolicyMode::Adaptive));
    let native_always = always_prog(native_cfg);
    let native_adaptive = always_prog(native_cfg.with_policy(PolicyMode::Adaptive));

    println!("\nadaptive policy (overhead = dyncomp + dispatch cycles; wall = native ns):");
    let mut policy_json = String::new();
    for (i, (regime, keys, reps)) in [
        ("low_reuse", &low_keys, 1),
        ("high_reuse", &high_keys, HIGH_REPS),
    ]
    .into_iter()
    .enumerate()
    {
        let (al_rt, al_cy) = run_policy_cycles(&vm_always, keys, reps);
        let (ad_rt, ad_cy) = run_policy_cycles(&vm_adaptive, keys, reps);
        let al_ns = run_policy_wall(&native_always, keys, reps, POLICY_WALL_SAMPLES);
        let ad_ns = run_policy_wall(&native_adaptive, keys, reps, POLICY_WALL_SAMPLES);
        println!(
            "{regime:<22} always {al_cy:>8} cy / {al_ns:>8} ns   adaptive {ad_cy:>8} cy / \
             {ad_ns:>8} ns   ({} specs -> {}, {} defers)",
            al_rt.specializations, ad_rt.specializations, ad_rt.policy_defers
        );
        writeln!(
            policy_json,
            "    \"{regime}\": {{\n      \
             \"keys\": {}, \"dispatches\": {},\n      \
             \"always\": {{ \"overhead_cycles\": {al_cy}, \"dyncomp_cycles\": {}, \
             \"dispatch_cycles\": {}, \"specializations\": {}, \"wall_ns\": {al_ns} }},\n      \
             \"adaptive\": {{ \"overhead_cycles\": {ad_cy}, \"dyncomp_cycles\": {}, \
             \"dispatch_cycles\": {}, \"specializations\": {}, \"policy_defers\": {}, \
             \"policy_promotes\": {}, \"wall_ns\": {ad_ns} }}\n    }}{}",
            keys.len(),
            keys.len() * reps,
            al_rt.dyncomp_cycles,
            al_rt.dispatch_cycles,
            al_rt.specializations,
            ad_rt.dyncomp_cycles,
            ad_rt.dispatch_cycles,
            ad_rt.specializations,
            ad_rt.policy_defers,
            ad_rt.policy_promotes,
            if i == 0 { "," } else { "" }
        )
        .unwrap();
        // The always path never consults the engine.
        assert_eq!(
            (
                al_rt.policy_defers,
                al_rt.policy_promotes,
                al_rt.policy_throttled
            ),
            (0, 0, 0),
            "{regime}: policy meters moved in always mode"
        );
        if regime == "low_reuse" {
            // Single-use keys: the engine defers every one of them, and
            // dropping the wasted specializations must win outright —
            // in the cycle model and on the native-backend wall clock.
            assert_eq!(ad_rt.specializations, 0, "low-reuse keys were specialized");
            assert_eq!(ad_rt.policy_defers as usize, keys.len());
            assert!(
                ad_cy < al_cy,
                "adaptive must strictly beat always on low reuse: {ad_cy} vs {al_cy}"
            );
            assert!(
                ad_ns < al_ns,
                "adaptive must beat always on low-reuse wall clock: {ad_ns} vs {al_ns}"
            );
        } else {
            // Hot keys: everything is promoted on its second dispatch,
            // so the one deferred round per key must cost at most 2%.
            assert_eq!(ad_rt.specializations, al_rt.specializations);
            assert_eq!(ad_rt.policy_promotes as usize, keys.len());
            assert!(
                ad_cy as f64 <= al_cy as f64 * 1.02,
                "adaptive must stay within 2% on high reuse: {ad_cy} vs {al_cy}"
            );
        }
    }
    json.push_str(&policy_json);
    json.push_str("  },\n  \"serving\": {\n");

    // Serving: CI-scale replay of the deterministic traffic streams.
    // Every dispatch is oracle-validated and every run balance-checked
    // inside `replay`, so this section doubles as a concurrency
    // regression gate; `dyc_serve` runs the same streams at 10^6-10^8
    // dispatches for the EXPERIMENTS.md campaign.
    use dyc_bench::traffic::{replay, Pattern, ServeConfig, StreamConfig};
    println!("\nserving (seeded streams, 50k dispatches x 4 threads):");
    let serve_patterns = [Pattern::Zipfian, Pattern::Churn];
    for (i, &pattern) in serve_patterns.iter().enumerate() {
        let cfg = ServeConfig {
            stream: StreamConfig::of(pattern),
            dispatches: 50_000,
            threads: 4,
            ..ServeConfig::default()
        };
        let r = replay(&cfg).unwrap_or_else(|e| panic!("{} replay failed: {e}", pattern.name()));
        r.balance_check()
            .unwrap_or_else(|e| panic!("{} meters out of balance: {e}", pattern.name()));
        let (p50, _, p99, _) = r.miss_hist.quantiles();
        println!(
            "{:<22} {:>9.0}/s  hit {:>7.3}%  miss p50/p99 {}/{} \u{b5}s",
            r.pattern,
            r.throughput,
            r.hit_rate * 100.0,
            p50 / 1000,
            p99 / 1000
        );
        writeln!(
            json,
            "    \"{}\": {{ \"dispatches\": {}, \"threads\": {}, \
             \"throughput_per_s\": {:.0}, \"hit_rate\": {:.5}, \
             \"miss_p50_ns\": {p50}, \"miss_p99_ns\": {p99}, \
             \"specializations\": {}, \"single_flight_waits\": {} }}{}",
            r.pattern,
            r.dispatches,
            r.threads,
            r.throughput,
            r.hit_rate,
            r.snapshot.specializations,
            r.snapshot.single_flight_waits,
            if i + 1 == serve_patterns.len() {
                ""
            } else {
                ","
            }
        )
        .unwrap();
    }
    json.push_str("  },\n  \"live\": {\n");

    // Live telemetry: the same zipfian stream replayed with the
    // sampler ticking and the watchdog armed must publish
    // byte-identical code and balance the same meters as an unsampled
    // run — the observer-effect-free gate, at CI scale.
    {
        use dyc_bench::live::LiveServe;
        use dyc_bench::traffic::replay_live;
        use dyc_obs::{SamplerConfig, WatchdogConfig};
        let cfg = ServeConfig {
            stream: StreamConfig::of(Pattern::Zipfian),
            dispatches: 30_000,
            threads: 4,
            ..ServeConfig::default()
        };
        let base = replay(&cfg).expect("unsampled replay");
        let live = LiveServe::start(
            None,
            SamplerConfig {
                interval: std::time::Duration::from_millis(50),
                watchdog: Some(WatchdogConfig::default()),
                ..SamplerConfig::default()
            },
        )
        .expect("live bundle");
        let sampled = replay_live(&cfg, Some(&live.handles)).expect("sampled replay");
        sampled
            .balance_check()
            .expect("sampled meters out of balance");
        assert_eq!(
            base.code_digest, sampled.code_digest,
            "sampling changed published code"
        );
        let (windows, incidents) = live.finish();
        assert!(!windows.is_empty(), "sampler produced no windows");
        let peak = windows
            .iter()
            .map(dyc_obs::Window::throughput)
            .fold(0.0f64, f64::max);
        println!(
            "\nlive (sampled zipfian, watchdog armed): {} windows, peak {:.0}/s, \
             {} incident(s), code digest match",
            windows.len(),
            peak,
            incidents.len()
        );
        writeln!(
            json,
            "    \"windows\": {}, \"peak_throughput_per_s\": {:.1}, \
             \"incidents\": {}, \"code_digest_matches\": true",
            windows.len(),
            peak,
            incidents.len()
        )
        .unwrap();
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
