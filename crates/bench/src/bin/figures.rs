//! Figures 2–4: the pnmconvol running example.
//!
//! Figure 2 — the annotated source of `do_convol`;
//! Figure 3 — the partially optimized dynamic region (complete unrolling +
//!            static loads, but no zero/copy propagation or DAE);
//! Figure 4 — the fully optimized region, where zero weights leave no code
//!            and unit weights leave a bare add.
//!
//! The paper shows source-level sketches; we show the actual generated VM
//! code for a 3×3 matrix with alternating zeroes and ones (zeroes in the
//! corners) — the exact matrix of the paper's Figures 3 and 4.

use dyc::{Compiler, OptConfig, Value};
use dyc_workloads::pnmconvol::SOURCE;

fn specialize(cfg: OptConfig) -> (String, u64, u64) {
    let program = Compiler::with_config(cfg).compile(SOURCE).unwrap();
    let mut d = program.dynamic_session();
    // The paper's 3×3 example matrix: alternating zeroes and ones,
    // zeroes in the corners.
    #[rustfmt::skip]
    let cmatrix = [
        0.0, 1.0, 0.0,
        1.0, 0.0, 1.0,
        0.0, 1.0, 0.0,
    ];
    let (irows, icols) = (4i64, 4i64);
    let buf = d.alloc(((irows + 3) * icols + 3) as usize);
    for i in 0..(irows + 3) * icols + 3 {
        d.mem().write_float(buf + i, (i % 7) as f64 * 0.25);
    }
    let image = buf + icols + 1;
    let cm = d.alloc(9);
    d.mem().write_floats(cm, &cmatrix);
    let out = d.alloc((irows * icols) as usize);
    d.run(
        "do_convol",
        &[
            Value::I(image),
            Value::I(irows),
            Value::I(icols),
            Value::I(cm),
            Value::I(3),
            Value::I(3),
            Value::I(out),
        ],
    )
    .unwrap();
    let rt = d.rt_stats().unwrap();
    let name = d.generated_functions()[0].clone();
    (
        d.disassemble(&name).unwrap(),
        rt.instrs_generated,
        rt.dae_removed,
    )
}

fn main() {
    println!("=== Figure 2: annotated image-convolution source ===");
    println!("{SOURCE}");

    let partial = OptConfig::all()
        .without("zero_copy_propagation")
        .unwrap()
        .without("dead_assignment_elimination")
        .unwrap()
        .without("strength_reduction")
        .unwrap();
    let (code, n, _) = specialize(partial);
    println!("=== Figure 3: partially optimized dynamic region ===");
    println!("(complete unrolling + static loads; every weight instantiated,");
    println!(" including multiplies by 0.0 and 1.0 — {n} instructions)\n");
    println!("{code}");

    let (code, n, removed) = specialize(OptConfig::all());
    println!("=== Figure 4: fully optimized dynamic region ===");
    println!("(zero/copy propagation folds the 0/1 weights; dead-assignment");
    println!(" elimination removes the then-dead image loads — {n} instructions,");
    println!(" {removed} removed as dead)\n");
    println!("{code}");
}
