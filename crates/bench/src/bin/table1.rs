//! Table 1: Application Characteristics.
//!
//! For each benchmark: description, annotated static variables and their
//! values, program size, and the number and size of the dynamically
//! compiled functions. Sizes are measured from our DyCL sources and the
//! statically compiled module (the paper measured C source lines and
//! Multiflow instructions; ratios, not absolute values, are comparable).

use dyc::Compiler;
use dyc_bench::{cell, rule};
use dyc_workloads::{all, Kind};

fn main() {
    println!("Table 1: Application Characteristics (reproduction)\n");
    let header = format!(
        "{}{}{}{}{}{}",
        cell("Program", 18),
        cell("Description", 34),
        cell("Static values", 30),
        cell("Lines", 7),
        cell("#Fn", 5),
        cell("Instructions", 12),
    );
    println!("{header}");
    rule(header.len());

    let mut section = Kind::Application;
    println!("Applications");
    for w in all() {
        let m = w.meta();
        if m.kind != section {
            section = m.kind;
            println!("Kernels");
        }
        let src = w.source();
        let program = Compiler::new().compile(&src).expect("workload compiles");
        let total_lines = src.lines().filter(|l| !l.trim().is_empty()).count();
        // Count the dynamic-region functions and their compiled size.
        let ir = program.ir();
        let region_funcs: Vec<_> = ir.funcs.iter().filter(|f| f.has_annotations()).collect();
        let region_instrs: usize = region_funcs.iter().map(|f| f.instruction_count()).sum();
        println!(
            "{}{}{}{}{}{}",
            cell(m.name, 18),
            cell(m.description, 34),
            cell(m.static_values, 30),
            cell(&total_lines.to_string(), 7),
            cell(&region_funcs.len().to_string(), 5),
            cell(&region_instrs.to_string(), 12),
        );
    }

    println!();
    println!("Columns: Lines = non-blank DyCL source lines of the whole benchmark;");
    println!("#Fn / Instructions = dynamically compiled functions and their IR size.");
    println!("Paper reference (Table 1): dinero 3317 lines / 8 fns / 1624 instrs;");
    println!("mipsi 3417 / 1 / 2884; pnmconvol 1054 / 1 / 1226; kernels 134-158 lines.");
    println!("Our DyCL programs implement the same dynamic regions; the surrounding");
    println!("application code (file I/O, option parsing) lives in the Rust harness,");
    println!("so whole-program line counts are smaller by design.");
}
