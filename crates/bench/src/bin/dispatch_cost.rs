//! §4.4.3 dispatch-cost analysis: unchecked vs hash-table dispatching.
//!
//! "An unchecked dispatch requires about 10 cycles … a general-purpose
//! hash-table-based dispatch (supporting the default cache-all policy)
//! requires on average 90 cycles. In mipsi, this figure rises to 150
//! cycles per dispatch, due to collisions in its hash table."

use dyc::{Compiler, OptConfig, Value};

const SRC: &str = r#"
    int region(int key, int d) {
        make_static(key);
        return key * 3 + d;
    }
    int region_unchecked(int key, int d) {
        make_static(key: cache_one_unchecked);
        return key * 3 + d;
    }
"#;

fn per_dispatch(func: &str, keys: &[i64]) -> f64 {
    let p = Compiler::with_config(OptConfig::all())
        .compile(SRC)
        .unwrap();
    let mut d = p.dynamic_session();
    // Warm: compile one version per key value.
    for &k in keys {
        d.run(func, &[Value::I(k), Value::I(1)]).unwrap();
    }
    let before = d.stats().dispatch_cycles;
    let allocs_warm = d.rt_stats().unwrap().dispatch_allocs;
    let reps = 1000;
    for i in 0..reps {
        let k = keys[i % keys.len()];
        d.run(func, &[Value::I(k), Value::I(2)]).unwrap();
    }
    assert_eq!(
        d.rt_stats().unwrap().dispatch_allocs,
        allocs_warm,
        "{func}: steady-state dispatch touched the heap"
    );
    (d.stats().dispatch_cycles - before) as f64 / reps as f64
}

/// Concurrent analogue: `threads` threads over one shared runtime, each
/// performing warm dispatches on `keys`. Returns (cycles/dispatch on one
/// thread, shared snapshot).
fn per_dispatch_shared(threads: usize, keys: &[i64]) -> (f64, dyc_rt::ConcSnapshot) {
    let p = Compiler::with_config(OptConfig::all())
        .compile(SRC)
        .unwrap();
    let shared = p.shared_runtime();
    let sessions: Vec<_> = (0..threads).map(|_| p.threaded_session(&shared)).collect();
    let per_thread: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .into_iter()
            .map(|mut d| {
                scope.spawn(move || {
                    for &k in keys {
                        d.run("region", &[Value::I(k), Value::I(1)]).unwrap();
                    }
                    let before = d.stats().dispatch_cycles;
                    let allocs_warm = d.rt_stats().unwrap().dispatch_allocs;
                    let reps = 1000;
                    for i in 0..reps {
                        let k = keys[i % keys.len()];
                        d.run("region", &[Value::I(k), Value::I(2)]).unwrap();
                    }
                    assert_eq!(
                        d.rt_stats().unwrap().dispatch_allocs,
                        allocs_warm,
                        "shared steady-state dispatch touched the heap"
                    );
                    (d.stats().dispatch_cycles - before) as f64 / reps as f64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (per_thread[0], shared.stats())
}

/// Guard for the emitter's FNV-1a unit-key interner: hashing the
/// dispatch-key mix through [`dyc_rt::FnvBuild`] must not be slower
/// than the SipHash default it replaced. Wall-clock, so the bound is
/// deliberately loose (2x, best of three) — this catches an
/// order-of-magnitude regression, not noise.
fn interning_guard() {
    use std::collections::HashMap;
    use std::time::Instant;

    let keys: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    type InternRound = Box<dyn FnMut(&[u64]) -> u64>;
    let time_with = |mut insert: InternRound| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                let mut acc = 0u64;
                for _ in 0..64 {
                    acc = acc.wrapping_add(insert(&keys));
                }
                std::hint::black_box(acc);
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap()
    };
    let fnv_ns = time_with(Box::new(|ks| {
        let mut m: HashMap<u64, u32, dyc_rt::FnvBuild> = HashMap::default();
        for (i, &k) in ks.iter().enumerate() {
            m.insert(k, i as u32);
        }
        ks.iter().map(|k| m[k] as u64).sum()
    }));
    let sip_ns = time_with(Box::new(|ks| {
        let mut m: HashMap<u64, u32> = HashMap::new();
        for (i, &k) in ks.iter().enumerate() {
            m.insert(k, i as u32);
        }
        ks.iter().map(|k| m[k] as u64).sum()
    }));
    println!(
        "unit-key interning (4096 keys x64, best of 3): fnv {:.2} ms, siphash {:.2} ms",
        fnv_ns as f64 / 1e6,
        sip_ns as f64 / 1e6
    );
    assert!(
        fnv_ns <= sip_ns * 2,
        "FNV-1a unit-key interning regressed: {fnv_ns} ns vs siphash {sip_ns} ns"
    );
}

fn main() {
    println!("Dispatch cost per region entry (cycles), reproduction of §4.4.3\n");
    interning_guard();
    println!();
    let unchecked = per_dispatch("region_unchecked", &[7]);
    println!("cache-one-unchecked (load + indirect jump) : {unchecked:>6.1}   (paper: ~10)");
    let hashed_one = per_dispatch("region", &[7]);
    println!("cache-all, single cached version           : {hashed_one:>6.1}   (paper: ~90)");
    let many: Vec<i64> = (0..1500).collect();
    let hashed_many = per_dispatch("region", &many);
    println!("cache-all, 1500 live versions              : {hashed_many:>6.1}   (paper: up to ~150 in mipsi)");
    println!();
    println!("Concurrent extension (sharded cache, blocking single-flight):\n");
    for (threads, nkeys) in [(1usize, 64usize), (4, 64), (8, 64)] {
        let keys: Vec<i64> = (0..nkeys as i64).collect();
        let (cy, s) = per_dispatch_shared(threads, &keys);
        let (lookups, probes) = s
            .shards
            .iter()
            .fold((0u64, 0u64), |(l, p), m| (l + m.lookups, p + m.probes));
        println!(
            "sharded cache-all, {threads} thread(s), {nkeys} versions : {cy:>6.1}   \
             ({:.2} probes/lookup, {} waits, {} dup specs suppressed)",
            probes as f64 / lookups.max(1) as f64,
            s.single_flight_waits,
            s.single_flight_suppressed()
        );
        assert_eq!(
            s.specializations, nkeys as u64,
            "single-flight must collapse every duplicate specialization"
        );
    }
    println!();
    println!("The modeled per-dispatch cycle cost is thread-count-invariant — the");
    println!("hit path takes one shard read-lock and shares the §4.4.3 hashed-");
    println!("dispatch cost model — so contention shows up only in the meters");
    println!("(single-flight waits) and in wall-clock time, not in guest cycles.\n");
    println!("The unchecked policy is unsafe if the annotated value actually varies;");
    println!("§4.4.3 notes most programs can use the safe cache-all policy without");
    println!("sacrificing much performance — except regions entered per simulated");
    println!("instruction, like m88ksim's breakpoint check. Our double-hash table");
    println!("keeps its load factor under 0.5, so extra probes are rare even with");
    println!("1500 live versions; each extra probe is metered at 30 cycles (the");
    println!("mipsi-style 150-cycle dispatches appear under collision clustering,");
    println!("exercised directly in dyc-rt's cost tests).");
}
