//! §4.4.3 dispatch-cost analysis: unchecked vs hash-table dispatching.
//!
//! "An unchecked dispatch requires about 10 cycles … a general-purpose
//! hash-table-based dispatch (supporting the default cache-all policy)
//! requires on average 90 cycles. In mipsi, this figure rises to 150
//! cycles per dispatch, due to collisions in its hash table."

use dyc::{Compiler, OptConfig, Value};

const SRC: &str = r#"
    int region(int key, int d) {
        make_static(key);
        return key * 3 + d;
    }
    int region_unchecked(int key, int d) {
        make_static(key: cache_one_unchecked);
        return key * 3 + d;
    }
"#;

fn per_dispatch(func: &str, keys: &[i64]) -> f64 {
    let p = Compiler::with_config(OptConfig::all())
        .compile(SRC)
        .unwrap();
    let mut d = p.dynamic_session();
    // Warm: compile one version per key value.
    for &k in keys {
        d.run(func, &[Value::I(k), Value::I(1)]).unwrap();
    }
    let before = d.stats().dispatch_cycles;
    let allocs_warm = d.rt_stats().unwrap().dispatch_allocs;
    let reps = 1000;
    for i in 0..reps {
        let k = keys[i % keys.len()];
        d.run(func, &[Value::I(k), Value::I(2)]).unwrap();
    }
    assert_eq!(
        d.rt_stats().unwrap().dispatch_allocs,
        allocs_warm,
        "{func}: steady-state dispatch touched the heap"
    );
    (d.stats().dispatch_cycles - before) as f64 / reps as f64
}

fn main() {
    println!("Dispatch cost per region entry (cycles), reproduction of §4.4.3\n");
    let unchecked = per_dispatch("region_unchecked", &[7]);
    println!("cache-one-unchecked (load + indirect jump) : {unchecked:>6.1}   (paper: ~10)");
    let hashed_one = per_dispatch("region", &[7]);
    println!("cache-all, single cached version           : {hashed_one:>6.1}   (paper: ~90)");
    let many: Vec<i64> = (0..1500).collect();
    let hashed_many = per_dispatch("region", &many);
    println!("cache-all, 1500 live versions              : {hashed_many:>6.1}   (paper: up to ~150 in mipsi)");
    println!();
    println!("The unchecked policy is unsafe if the annotated value actually varies;");
    println!("§4.4.3 notes most programs can use the safe cache-all policy without");
    println!("sacrificing much performance — except regions entered per simulated");
    println!("instruction, like m88ksim's breakpoint check. Our double-hash table");
    println!("keeps its load factor under 0.5, so extra probes are rare even with");
    println!("1500 live versions; each extra probe is metered at 30 cycles (the");
    println!("mipsi-style 150-cycle dispatches appear under collision clustering,");
    println!("exercised directly in dyc-rt's cost tests).");
}
