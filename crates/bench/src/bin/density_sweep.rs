//! §4.2's dotproduct density observation: "dotproduct's static input
//! vector was 90% zeroes and therefore most of the calculations were
//! eliminated; our experiments on more dense vectors produced speedups
//! similar to those of the other kernels, and with no zeroes the
//! dynamically compiled version experiences a slowdown …".

use dyc::OptConfig;
use dyc_bench::cell;
use dyc_workloads::dotproduct::DotProduct;
use dyc_workloads::measure::measure_region;

fn main() {
    println!("dotproduct asymptotic speedup vs zero density (reproduction of §4.2)\n");
    println!(
        "{}{}{}{}",
        cell("zero fraction", 15),
        cell("speedup", 9),
        cell("instrs generated", 18),
        cell("note", 30)
    );
    for frac in [0.9, 0.75, 0.5, 0.25, 0.0] {
        let w = DotProduct::with_density(frac);
        let r = measure_region(&w, OptConfig::all(), 3);
        let note = match frac {
            0.9 => "the paper's input",
            0.0 => "no zeroes: little to fold",
            _ => "",
        };
        println!(
            "{}{}{}{}",
            cell(&format!("{:.0}%", frac * 100.0), 15),
            cell(&format!("{:.2}", r.asymptotic_speedup), 9),
            cell(&r.instrs_generated.to_string(), 18),
            cell(note, 30)
        );
    }
    println!();
    println!("Denser vectors fold less; the residual unrolled code approaches the");
    println!("static loop's work while still paying dispatch, so the advantage decays");
    println!("toward (and past) break-even — the paper's reported behavior.");
}
