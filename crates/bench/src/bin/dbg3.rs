//! Scratch: raw pnmconvol region numbers.
use dyc::OptConfig;
use dyc_workloads::{measure::measure_region, pnmconvol::Pnmconvol};
fn main() {
    let w = Pnmconvol::default();
    let r = measure_region(&w, OptConfig::all(), 3);
    println!("{r:#?}");
}
