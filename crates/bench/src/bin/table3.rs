//! Table 3: Dynamic Region Performance with All Optimizations.
//!
//! Asymptotic speedup (`s/d`), break-even point (`o/(s-d)` in each
//! benchmark's natural unit), dynamic-compilation overhead per generated
//! instruction, and the number of instructions generated — the paper's
//! exact metrics, measured in modeled cycles.
//!
//! `--m88ksim-breakpoints N` reruns the m88ksim row with N breakpoints
//! (the paper's §4.2 side experiment: 5 breakpoints → 98 instructions at
//! 66 cycles each).

use dyc::OptConfig;
use dyc_bench::{cell, fmt_break_even, fmt_speedup, rule};
use dyc_workloads::measure::measure_region;
use dyc_workloads::{all, m88ksim::M88ksim, Workload};

/// Paper values for side-by-side comparison: (speedup, overhead, instrs).
fn paper_row(name: &str) -> Option<(f64, u64, u64)> {
    Some(match name {
        "dinero" => (1.7, 334, 634),
        "m88ksim" => (3.7, 365, 6),
        "mipsi" => (5.0, 207, 36614),
        "pnmconvol" => (3.1, 110, 2394),
        "viewperf:project" => (1.3, 823, 122),
        "viewperf:shade" => (1.2, 524, 618),
        "binary" => (1.8, 72, 304),
        "chebyshev" => (6.3, 31, 807),
        "dotproduct" => (5.7, 85, 50),
        "query" => (1.4, 53, 71),
        "romberg" => (1.3, 13, 1206),
        _ => return None,
    })
}

fn print_row(w: &dyn Workload, reps: u32) {
    let m = w.meta();
    // Primary measurement: the staged GE executor. The online specializer
    // rerun isolates what precompiling the generating extension saves.
    let r = measure_region(w, OptConfig::all(), reps);
    let online = measure_region(w, OptConfig::all().without("staged_ge").unwrap(), reps);
    assert_eq!(
        r.instrs_generated, online.instrs_generated,
        "{}: the two paths must generate identical code",
        m.name
    );
    let paper = paper_row(m.name);
    println!(
        "{}{}{}{}{}{}",
        cell(&display_name(m.name, m.region_func), 22),
        cell(&fmt_speedup(r.asymptotic_speedup), 9),
        cell(&fmt_break_even(&r, m.break_even_unit), 38),
        cell(
            &format!(
                "{:.0} ({:.0})",
                r.overhead_per_instr, online.overhead_per_instr
            ),
            13
        ),
        cell(&r.instrs_generated.to_string(), 11),
        cell(
            &paper
                .map(|(s, o, i)| format!("{s:.1} / {o} / {i}"))
                .unwrap_or_default(),
            24
        ),
    );
}

/// `name:region`, except when the workload name already names its region.
fn display_name(name: &str, region: &str) -> String {
    if name.contains(':') {
        name.to_string()
    } else {
        format!("{name}:{region}")
    }
}

fn main() {
    let reps: u32 = 3;
    let bp_variant = std::env::args()
        .skip_while(|a| a != "--m88ksim-breakpoints")
        .nth(1)
        .and_then(|n| n.parse::<usize>().ok());

    println!("Table 3: Dynamic Region Performance with All Optimizations (reproduction)\n");
    let header = format!(
        "{}{}{}{}{}{}",
        cell("Dynamic Region", 22),
        cell("Speedup", 9),
        cell("Break-Even Point", 38),
        cell("DCcy/instr", 13),
        cell("#Instrs", 11),
        cell("paper: spd/ovh/instrs", 24),
    );
    println!("{header}");
    rule(header.len());

    for w in all() {
        print_row(w.as_ref(), reps);
    }

    if let Some(n) = bp_variant {
        println!();
        println!("m88ksim variant with {n} breakpoints (paper: 98 instrs at 66 cy/instr):");
        print_row(&M88ksim::with_breakpoints(n), reps);
    }

    println!();
    println!("DCcy/instr is the staged GE executor; the parenthesized figure is the");
    println!("online specializer rerun on the same region (same generated code, but");
    println!("binding-time classification, liveness queries, and edge planning redone");
    println!("at run time). Staged must be strictly lower on every row.");
    println!();
    println!("Notes: cycles are modeled (Alpha-21164-calibrated cost model + 8kB direct-");
    println!("mapped I-cache). The paper's absolute values depend on Multiflow codegen;");
    println!("the shapes to compare are which regions win, by how much, and how quickly");
    println!("compilation amortizes (all break-even points well within normal usage).");
}
