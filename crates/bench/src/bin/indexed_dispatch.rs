//! §3.1 extension: array-indexed dispatch for small key ranges.
//!
//! "a decompression program and a version of grep could become profitable
//! to compile dynamically if DyC supported fast cache lookups over a small
//! range of values (e.g., integers between 0 and 255). For such cases, the
//! lookup could be implemented as a simple array indexing, in place of
//! DyC's current general-purpose hash-table lookup."
//!
//! The `unrle` extension workload decodes a run-length-encoded stream with
//! the per-byte step specialized on the control byte under three policies.

use dyc::{Compiler, OptConfig};
use dyc_workloads::unrle::Unrle;
use dyc_workloads::Workload;

fn measure(src: &str, w: &Unrle) -> (u64, u64, u64) {
    let p = Compiler::with_config(OptConfig::all())
        .compile(src)
        .unwrap();
    let mut d = p.dynamic_session();
    let args = w.setup_region(&mut d);
    d.run("decode", &args).unwrap(); // compile all byte versions
    assert!(w.check_region(d.run("decode", &args).unwrap(), &mut d));
    let (_, steady) = d.run_measured("decode", &args).unwrap();
    (
        steady.run_cycles(),
        steady.dispatch_cycles,
        steady.dispatches,
    )
}

fn main() {
    let w = Unrle::default();
    println!(
        "unrle: RLE decoding of {} tokens, per-byte step specialized on the control byte\n",
        w.tokens
    );
    let indexed = w.source();
    let hashed = indexed.replace("b: cache_indexed", "b");

    let (run_i, disp_i, n) = measure(&indexed, &w);
    let (run_h, disp_h, _) = measure(&hashed, &w);

    println!("policy            run cycles   dispatch cycles   per dispatch");
    println!(
        "cache_indexed     {run_i:>10}   {disp_i:>15}   {:>8.1}",
        disp_i as f64 / n as f64
    );
    println!(
        "cache_all (hash)  {run_h:>10}   {disp_h:>15}   {:>8.1}",
        disp_h as f64 / n as f64
    );
    println!();
    println!(
        "indexed dispatch cuts per-entry cost ~{:.0}x and whole-region time {:.2}x —",
        disp_h as f64 / disp_i as f64,
        run_h as f64 / run_i as f64
    );
    println!("the improvement §3.1 predicted would make byte-dispatch programs");
    println!("(decompressors, grep) profitable to compile dynamically.");
}
