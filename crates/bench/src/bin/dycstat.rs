//! `dycstat` — the staged-pipeline trace reporter.
//!
//! Runs a workload with the event recorder on (or re-reads a dumped
//! Chrome trace) and prints a paper-style per-site table: variants
//! cached, dispatch mix, probe rate, dynamic-compilation cycles, and
//! the §4.2 break-even point per site, plus a per-thread contention
//! summary for concurrent runs.
//!
//! ```text
//! dycstat run <workload> [--threads N] [--reps N] [--native] [--policy]
//!                        [--out trace.json] [--prom metrics.txt]
//!                        [--require cat,cat,...]
//! dycstat report <trace.json> [--require cat,cat,...]
//! dycstat snapshot <workload> [--reps N] [--out bundle.json]
//! dycstat warm <workload> <bundle.json> [--reps N]
//! dycstat watch <addr> [--interval-ms N] [--count N]
//! dycstat list
//! ```
//!
//! `--require` exits nonzero unless the trace holds at least one event
//! of every named category (`dispatch`, `flight`, `spec`, `template`,
//! `cache`, `promote`, `policy`) — CI's smoke check.
//!
//! `snapshot` runs a workload cold and serializes its code cache as an
//! artifact bundle; `warm` restores the bundle into a fresh session and
//! prices the first region invocation cold vs. warm — the cycles a
//! warm start saves by skipping first-dispatch specialization.
//!
//! `--native` runs through the native x86-64 backend; traces recorded
//! that way (and reports over them) grow per-site native-vs-VM columns:
//! machine-code installs and bytes published per site.
//!
//! `--policy` runs with the adaptive specialization policy
//! (`PolicyMode::Adaptive`); traces recorded that way grow per-site
//! policy columns: deferrals, threshold promotions, and throttled
//! misses. Reports over policy-free traces stay byte-identical to
//! before.
//!
//! `watch` polls a `dyc_serve --live <addr>` Prometheus endpoint and
//! renders the windowed live view — throughput, hit rate, miss-path
//! percentiles, eviction/wait/race rates, and the incident count — one
//! row per scrape (`--interval-ms`, default 1000; `--count 0` = until
//! interrupted).

use dyc::obs::{
    chrome_trace, contention, merge, parse_chrome_trace, render_metrics, site_profiles, Category,
    Event, Metric, SiteProfile,
};
use dyc::{Compiler, OptConfig, PolicyMode, SharedOptions};
use dyc_bench::{cell, rule};
use dyc_workloads::{all, by_name};
use std::process::ExitCode;
use std::sync::Arc;

/// Everything the report needs beyond the events themselves. Carried in
/// the Chrome trace's `otherData` so `dycstat report` can rebuild the
/// break-even column from a dump.
struct RunMeta {
    workload: String,
    threads: usize,
    invocations: u64,
    static_cycles: u64,
    dyn_cycles: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dycstat run <workload> [--threads N] [--reps N] [--native] [--policy] \
         [--out FILE] [--prom FILE] [--require cat,...]\n  dycstat report <trace.json> \
         [--require cat,...]\n  \
         dycstat snapshot <workload> [--reps N] [--out FILE]\n  \
         dycstat warm <workload> <bundle.json> [--reps N]\n  \
         dycstat watch <addr> [--interval-ms N] [--count N]\n  \
         dycstat list"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("warm") => cmd_warm(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("list") => {
            for w in all() {
                let m = w.meta();
                println!("{:<12} {}", m.name, m.description);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Parse `--flag value` pairs after the positional argument.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_require(args: &[String]) -> Result<Vec<Category>, String> {
    let Some(list) = flag(args, "--require") else {
        return Ok(Vec::new());
    };
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            [
                Category::Dispatch,
                Category::Flight,
                Category::Spec,
                Category::Template,
                Category::Cache,
                Category::Promote,
                Category::Policy,
            ]
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| format!("unknown category '{s}'"))
        })
        .collect()
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(w) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `dycstat list`)");
        return ExitCode::FAILURE;
    };
    let threads: usize = flag(args, "--threads").map_or(1, |v| v.parse().expect("--threads"));
    let reps: u64 = flag(args, "--reps").map_or(12, |v| v.parse().expect("--reps"));
    let require = match parse_require(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let native = args.iter().any(|a| a == "--native");
    let adaptive = args.iter().any(|a| a == "--policy");
    let mut cfg = OptConfig::all();
    cfg.trace = true;
    cfg.native = native;
    if adaptive {
        cfg.policy = PolicyMode::Adaptive;
    }
    let program = Compiler::with_config(cfg)
        .compile(&w.source())
        .expect("workload compiles");
    let meta = w.meta();

    // Static baseline: cycles per region invocation.
    let mut s = program.static_session();
    let sargs = w.setup_region(&mut s);
    s.set_step_limit(200_000_000);
    let (out, _) = s.run_measured(meta.region_func, &sargs).unwrap();
    assert!(w.check_region(out, &mut s), "static result wrong");
    let mut static_total = 0u64;
    for _ in 0..reps {
        w.reset(&mut s, &sargs);
        let (_, d) = s.run_measured(meta.region_func, &sargs).unwrap();
        static_total += d.run_cycles();
    }
    let static_cycles = static_total / reps;

    // Traced dynamic run(s).
    let (events, dyn_cycles) = if threads <= 1 {
        let mut d = program.dynamic_session();
        let dargs = w.setup_region(&mut d);
        d.set_step_limit(200_000_000);
        let (out, _) = d.run_measured(meta.region_func, &dargs).unwrap();
        assert!(w.check_region(out, &mut d), "dynamic result wrong");
        let mut dyn_total = 0u64;
        for _ in 0..reps {
            w.reset(&mut d, &dargs);
            let (_, st) = d.run_measured(meta.region_func, &dargs).unwrap();
            dyn_total += st.run_cycles();
        }
        (d.trace_events(), dyn_total / reps)
    } else {
        let shared = program.shared_runtime_with(SharedOptions {
            trace: true,
            native,
            ..SharedOptions::default()
        });
        let w = Arc::new(w);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let w = Arc::clone(&w);
                let shared = Arc::clone(&shared);
                let sess = program.threaded_session(&shared);
                std::thread::spawn(move || {
                    let mut sess = sess;
                    let wl = w.as_ref().as_ref();
                    let m = wl.meta();
                    let dargs = wl.setup_region(&mut sess);
                    sess.set_step_limit(200_000_000);
                    let (out, _) = sess.run_measured(m.region_func, &dargs).unwrap();
                    assert!(wl.check_region(out, &mut sess), "threaded result wrong");
                    let mut total = 0u64;
                    for _ in 0..reps {
                        wl.reset(&mut sess, &dargs);
                        let (_, st) = sess.run_measured(m.region_func, &dargs).unwrap();
                        total += st.run_cycles();
                    }
                    (sess.trace_events(), total / reps)
                })
            })
            .collect();
        let mut streams = Vec::new();
        let mut dyn_cycles = u64::MAX;
        for h in handles {
            let (ev, cyc) = h.join().unwrap();
            dyn_cycles = dyn_cycles.min(cyc); // steady-state: all equal
            streams.push(ev);
        }
        (merge(streams), dyn_cycles)
    };

    let run = RunMeta {
        workload: meta.name.to_string(),
        threads,
        // First call compiles, then `reps` steady-state calls, per thread.
        invocations: (1 + reps) * threads as u64,
        static_cycles,
        dyn_cycles,
    };

    if let Some(path) = flag(args, "--out") {
        let meta_kv = [
            ("workload".to_string(), run.workload.clone()),
            ("threads".to_string(), run.threads.to_string()),
            ("invocations".to_string(), run.invocations.to_string()),
            ("static_cycles".to_string(), run.static_cycles.to_string()),
            ("dyn_cycles".to_string(), run.dyn_cycles.to_string()),
        ];
        std::fs::write(path, chrome_trace(&events, &meta_kv)).expect("write trace");
        println!("wrote {} events to {path}", events.len());
    }
    if let Some(path) = flag(args, "--prom") {
        std::fs::write(path, prometheus(&events, &run)).expect("write metrics");
        println!("wrote metrics to {path}");
    }

    print_report(&events, &run);
    check_required(&events, &require)
}

fn cmd_report(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let require = match parse_require(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match parse_chrome_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: not a dycstat Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let get = |k: &str| {
        trace
            .meta
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
    };
    let num = |k: &str| get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let run = RunMeta {
        workload: get("workload").unwrap_or_else(|| "<unknown>".into()),
        threads: num("threads").max(1) as usize,
        invocations: num("invocations"),
        static_cycles: num("static_cycles"),
        dyn_cycles: num("dyn_cycles"),
    };
    print_report(&trace.events, &run);
    check_required(&trace.events, &require)
}

/// Compile `name` with the normal configuration and run one cold region
/// sequence: first invocation measured on its own (specialization cost
/// included), then `reps` steady-state invocations. Returns the session
/// plus (first-invocation total cycles, steady-state cycles/use).
fn cold_region_run(
    w: &dyn dyc_workloads::Workload,
    mut sess: dyc::Session,
    reps: u64,
) -> (dyc::Session, u64, u64) {
    let meta = w.meta();
    let args = w.setup_region(&mut sess);
    sess.set_step_limit(200_000_000);
    let (out, first) = sess.run_measured(meta.region_func, &args).unwrap();
    assert!(w.check_region(out, &mut sess), "wrong region result");
    let mut steady = 0u64;
    for _ in 0..reps {
        w.reset(&mut sess, &args);
        let (_, d) = sess.run_measured(meta.region_func, &args).unwrap();
        steady += d.run_cycles();
    }
    (sess, first.total_cycles(), steady / reps.max(1))
}

fn cmd_snapshot(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(w) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `dycstat list`)");
        return ExitCode::FAILURE;
    };
    let reps: u64 = flag(args, "--reps").map_or(4, |v| v.parse().expect("--reps"));
    let default_out = format!("{}.snapshot.json", name.replace(':', "-"));
    let out = flag(args, "--out").unwrap_or(&default_out);

    let program = Compiler::new().compile(&w.source()).expect("compiles");
    let (sess, first, steady) = cold_region_run(w.as_ref(), program.dynamic_session(), reps);
    let rt = sess.rt_stats().expect("dynamic session");
    if let Err(e) = sess.snapshot_cache(out) {
        eprintln!("snapshot failed: {e}");
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "dycstat snapshot: {name} — {} specializations, {} cached entries",
        rt.specializations,
        sess.cached_code().len()
    );
    println!(
        "cold first invocation : {first} cycles (incl. {} dyncomp)",
        rt.dyncomp_cycles
    );
    println!("steady state          : {steady} cycles/use");
    println!("wrote {out} ({bytes} bytes)");
    ExitCode::SUCCESS
}

fn cmd_warm(args: &[String]) -> ExitCode {
    let (Some(name), Some(bundle)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(w) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `dycstat list`)");
        return ExitCode::FAILURE;
    };
    let reps: u64 = flag(args, "--reps").map_or(4, |v| v.parse().expect("--reps"));

    let program = Compiler::new().compile(&w.source()).expect("compiles");
    // Cold reference in-process, so the two first invocations are priced
    // by the same cost model on the same build.
    let (cold_sess, cold_first, cold_steady) =
        cold_region_run(w.as_ref(), program.dynamic_session(), reps);
    let warm_sess = match program.warm_start(bundle) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warm start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (loads, rejects) = {
        let rt = warm_sess.rt_stats().expect("dynamic session");
        (rt.cache_warm_loads, rt.cache_warm_rejects)
    };
    let (warm_sess, warm_first, warm_steady) = cold_region_run(w.as_ref(), warm_sess, reps);
    let warm_rt = warm_sess.rt_stats().expect("dynamic session");
    let cold_rt = cold_sess.rt_stats().expect("dynamic session");

    println!("dycstat warm: {name} — restored {loads} entries, rejected {rejects}");
    println!(
        "first invocation : cold {cold_first} cycles ({} dyncomp)  warm {warm_first} cycles \
         ({} dyncomp)  — {:.1}x",
        cold_rt.dyncomp_cycles,
        warm_rt.dyncomp_cycles,
        cold_first as f64 / warm_first.max(1) as f64
    );
    println!("steady state     : cold {cold_steady} cycles/use  warm {warm_steady} cycles/use");
    println!(
        "warm run re-specialized {} key(s){}",
        warm_rt.specializations,
        if warm_rt.specializations == 0 {
            " — every dispatch hit restored code"
        } else {
            " (stale or rejected entries re-specialize on first use)"
        }
    );
    ExitCode::SUCCESS
}

/// `dycstat watch <addr>` — poll a `dyc_serve --live` endpoint and
/// render the windowed live view, one row per scrape.
fn cmd_watch(args: &[String]) -> ExitCode {
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let interval: u64 =
        flag(args, "--interval-ms").map_or(1000, |v| v.parse().expect("--interval-ms"));
    let count: u64 = flag(args, "--count").map_or(0, |v| v.parse().expect("--count"));
    let mut row = 0u64;
    loop {
        let body = match dyc_bench::live::http_get(addr, "/metrics") {
            Ok(b) => b,
            Err(e) => {
                eprintln!("scrape {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if row.is_multiple_of(20) {
            println!(
                "{} {} {} {} {} {} {} {} {}",
                cell("window", 7),
                cell("disp/s", 10),
                cell("hit%", 7),
                cell("p50us", 8),
                cell("p95us", 8),
                cell("p99us", 8),
                cell("evict/s", 9),
                cell("waits/s", 9),
                cell("incidents", 9)
            );
        }
        let v = |name: &str| scrape_sample(&body, name).unwrap_or(0.0);
        println!(
            "{} {} {} {} {} {} {} {} {}",
            cell(&format!("{:.0}", v("dyc_live_windows_total")), 7),
            cell(&format!("{:.0}", v("dyc_live_window_throughput")), 10),
            cell(&format!("{:.2}", v("dyc_live_window_hit_rate") * 100.0), 7),
            cell(&format!("{:.0}", v("dyc_live_window_miss_p50_ns") / 1e3), 8),
            cell(&format!("{:.0}", v("dyc_live_window_miss_p95_ns") / 1e3), 8),
            cell(&format!("{:.0}", v("dyc_live_window_miss_p99_ns") / 1e3), 8),
            cell(&format!("{:.1}", v("dyc_live_window_evictions_per_s")), 9),
            cell(&format!("{:.1}", v("dyc_live_window_waits_per_s")), 9),
            cell(&format!("{:.0}", v("dyc_live_incidents_total")), 9)
        );
        row += 1;
        if count != 0 && row >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(1)));
    }
}

/// First sample of `name` in a Prometheus text body (label sets are
/// skipped over; comment lines ignored).
fn scrape_sample(body: &str, name: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let value = match rest.as_bytes().first() {
            Some(b' ') => &rest[1..],
            Some(b'{') => rest.split_once("} ").map(|(_, v)| v)?,
            _ => return None,
        };
        value.parse().ok()
    })
}

fn check_required(events: &[Event], require: &[Category]) -> ExitCode {
    for cat in require {
        let n = events.iter().filter(|e| e.kind.category() == *cat).count();
        if n == 0 {
            eprintln!("required category '{}' recorded no events", cat.name());
            return ExitCode::FAILURE;
        }
        println!("require {}: {} events", cat.name(), n);
    }
    ExitCode::SUCCESS
}

/// Per-site cycles saved by one *use* of a specialized region, from the
/// region-level static-vs-dynamic measurement. The region saving is
/// attributed evenly over all dispatch uses it drove (for a region with
/// one site used once per invocation this is exactly the paper's
/// `s − d`).
fn saved_per_use(profiles: &[SiteProfile], run: &RunMeta) -> f64 {
    let total_uses: u64 = profiles.iter().map(|p| p.uses()).sum();
    if total_uses == 0 || run.static_cycles <= run.dyn_cycles {
        return 0.0;
    }
    (run.static_cycles - run.dyn_cycles) as f64 * run.invocations as f64 / total_uses as f64
}

fn print_report(events: &[Event], run: &RunMeta) {
    let profiles = site_profiles(events);
    let saved = saved_per_use(&profiles, run);
    println!(
        "dycstat: {} — {} events, {} thread(s), {} invocations",
        run.workload,
        events.len(),
        run.threads,
        run.invocations
    );
    println!(
        "region: static {} cyc/use, specialized {} cyc/use ({}x asymptotic)\n",
        run.static_cycles,
        run.dyn_cycles,
        if run.dyn_cycles > 0 {
            format!("{:.1}", run.static_cycles as f64 / run.dyn_cycles as f64)
        } else {
            "?".into()
        }
    );

    // Native-vs-VM columns only when the trace actually holds native
    // events — a pure-VM report stays byte-identical to before.
    let native = profiles
        .iter()
        .any(|p| p.native_installs + p.native_fallbacks > 0);
    // Same rule for the adaptive-policy columns: they appear only when
    // the trace holds policy events, so `always`-mode reports stay
    // byte-identical to before.
    let policy = profiles
        .iter()
        .any(|p| p.policy_defers + p.policy_promotes + p.policy_throttled > 0);
    let mut header = vec![
        ("site", 5),
        ("specs", 6),
        ("vars", 5),
        ("uses", 7),
        ("miss", 5),
        ("probe", 6),
        ("disp cyc", 9),
        ("dyncomp", 9),
        ("instrs", 7),
        ("tmpl", 6),
        ("holes", 6),
        ("evict", 6),
        ("promo", 6),
    ];
    if native {
        header.push(("native", 8));
        header.push(("nat B", 7));
    }
    if policy {
        header.push(("defer", 6));
        header.push(("p-pro", 6));
        header.push(("throt", 6));
    }
    header.push(("break-even", 11));
    let mut line = String::new();
    for &(h, w) in &header {
        line.push_str(&cell(h, w));
    }
    println!("{line}");
    rule(line.len());
    for p in &profiles {
        let be = match p.break_even(saved) {
            Some(b) if p.specializations > 0 => format!("{:.1} uses", b),
            Some(_) => "-".into(),
            None => "never".into(),
        };
        let mut row = vec![
            (p.site.to_string(), 5),
            (p.specializations.to_string(), 6),
            (p.variants.to_string(), 5),
            (p.uses().to_string(), 7),
            (p.misses.to_string(), 5),
            (format!("{:.2}", p.probe_rate()), 6),
            (p.dispatch_cycles.to_string(), 9),
            (p.dyncomp_cycles.to_string(), 9),
            (p.instrs_generated.to_string(), 7),
            (p.template_instrs.to_string(), 6),
            (p.holes_patched.to_string(), 6),
            (p.evictions.to_string(), 6),
            (p.promotions.to_string(), 6),
        ];
        if native {
            // "2" = all installs took; "2+1f" = one lowering fell back
            // to the VM for this site.
            let nat = if p.native_fallbacks == 0 {
                p.native_installs.to_string()
            } else {
                format!("{}+{}f", p.native_installs, p.native_fallbacks)
            };
            row.push((nat, 8));
            row.push((p.native_bytes.to_string(), 7));
        }
        if policy {
            row.push((p.policy_defers.to_string(), 6));
            row.push((p.policy_promotes.to_string(), 6));
            row.push((p.policy_throttled.to_string(), 6));
        }
        row.push((be, 11));
        let mut out = String::new();
        for (v, w) in row {
            out.push_str(&cell(&v, w));
        }
        println!("{out}");
    }

    let loads = contention(events);
    if loads.len() > 1 || loads.iter().any(|t| t.waits + t.fallbacks > 0) {
        println!("\ncontention:");
        println!(
            "{}{}{}{}{}{}",
            cell("thread", 8),
            cell("events", 8),
            cell("misses", 8),
            cell("waits", 7),
            cell("wait us", 9),
            cell("fallbacks", 10)
        );
        for t in &loads {
            println!(
                "{}{}{}{}{}{}",
                cell(&t.thread.to_string(), 8),
                cell(&t.events.to_string(), 8),
                cell(&t.misses.to_string(), 8),
                cell(&t.waits.to_string(), 7),
                cell(&format!("{:.1}", t.wait_ns as f64 / 1000.0), 9),
                cell(&t.fallbacks.to_string(), 10)
            );
        }
        let hist = dyc::obs::miss_latency(events);
        if !hist.is_empty() {
            let (p50, p95, p99, max) = hist.quantiles();
            println!(
                "\nmiss-path latency ({} spans): p50 {:.1} us  p95 {:.1} us  \
                 p99 {:.1} us  max {:.1} us",
                hist.count(),
                p50 as f64 / 1000.0,
                p95 as f64 / 1000.0,
                p99 as f64 / 1000.0,
                max as f64 / 1000.0
            );
        }
    }
}

/// Prometheus text exposition of the run: per-site counters plus the
/// region-level gauges.
fn prometheus(events: &[Event], run: &RunMeta) -> String {
    let profiles = site_profiles(events);
    let saved = saved_per_use(&profiles, run);
    let mut ms = Vec::new();
    ms.push(Metric::gauge(
        "dyc_region_static_cycles",
        "Static-build cycles per region invocation",
        &[("workload", run.workload.clone())],
        run.static_cycles as f64,
    ));
    ms.push(Metric::gauge(
        "dyc_region_specialized_cycles",
        "Specialized cycles per region invocation",
        &[("workload", run.workload.clone())],
        run.dyn_cycles as f64,
    ));
    for p in &profiles {
        let site = [("site", p.site.to_string())];
        let c = |name: &str, help: &str, v: u64| Metric::counter(name, help, &site, v as f64);
        ms.push(c(
            "dyc_site_specializations_total",
            "Specializations started at the site",
            p.specializations,
        ));
        ms.push(c(
            "dyc_site_variants_total",
            "Distinct cache keys specialized at the site",
            p.variants,
        ));
        ms.push(c("dyc_site_hits_total", "Dispatch cache hits", p.hits));
        ms.push(c(
            "dyc_site_misses_total",
            "Dispatch cache misses",
            p.misses,
        ));
        ms.push(c(
            "dyc_site_dispatch_cycles_total",
            "Cycles charged to dispatch at the site",
            p.dispatch_cycles,
        ));
        ms.push(c(
            "dyc_site_dyncomp_cycles_total",
            "Dynamic-compilation cycles charged at the site",
            p.dyncomp_cycles,
        ));
        ms.push(c(
            "dyc_site_flight_waits_total",
            "Single-flight waits at the site",
            p.waits,
        ));
        ms.push(c(
            "dyc_site_native_installs_total",
            "Specializations published as native machine code",
            p.native_installs,
        ));
        ms.push(c(
            "dyc_site_native_bytes_total",
            "Bytes of native machine code published for the site",
            p.native_bytes,
        ));
        ms.push(c(
            "dyc_site_native_fallbacks_total",
            "Native lowerings that fell back to the VM",
            p.native_fallbacks,
        ));
        ms.push(c(
            "dyc_site_policy_defers_total",
            "Adaptive-policy deferrals at the site",
            p.policy_defers,
        ));
        ms.push(c(
            "dyc_site_policy_promotes_total",
            "Adaptive-policy threshold promotions at the site",
            p.policy_promotes,
        ));
        ms.push(c(
            "dyc_site_policy_throttled_total",
            "Adaptive-policy throttled misses at the site",
            p.policy_throttled,
        ));
        if let Some(be) = p.break_even(saved) {
            ms.push(Metric::gauge(
                "dyc_site_break_even_uses",
                "Uses needed to amortize the site's dynamic compilation",
                &site,
                be,
            ));
        }
    }
    render_metrics(&ms)
}
