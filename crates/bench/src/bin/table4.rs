//! Table 4: Whole-Program Performance with All Optimizations.
//!
//! Whole-program execution time statically vs dynamically compiled
//! (including dynamic-compilation and dispatch overhead), the share of
//! static execution spent inside the dynamic regions, and the resulting
//! whole-program speedup.

use dyc::OptConfig;
use dyc_bench::{cell, rule};
use dyc_workloads::measure::measure_whole;
use dyc_workloads::{all, Kind};

/// Paper values: (% execution in region, whole-program speedup).
fn paper_row(name: &str) -> Option<(f64, f64)> {
    Some(match name {
        "dinero" => (49.9, 1.5),
        "m88ksim" => (9.8, 1.05),
        "mipsi" => (100.0, 4.6),
        "pnmconvol" => (83.8, 3.0),
        "viewperf:project" => (41.4, 1.02),
        _ => return None,
    })
}

fn main() {
    println!("Table 4: Whole-Program Performance with All Optimizations (reproduction)\n");
    let header = format!(
        "{}{}{}{}{}{}",
        cell("Application", 20),
        cell("Static (cycles)", 17),
        cell("Dynamic (cycles)", 18),
        cell("% in region", 13),
        cell("Speedup", 9),
        cell("paper: % / speedup", 20),
    );
    println!("{header}");
    rule(header.len());

    for w in all() {
        if w.meta().kind != Kind::Application {
            continue;
        }
        let Some(r) = measure_whole(w.as_ref(), OptConfig::all()) else {
            continue;
        };
        let paper = paper_row(&r.name);
        println!(
            "{}{}{}{}{}{}",
            cell(&r.name, 20),
            cell(&r.static_cycles.to_string(), 17),
            cell(&r.dyn_cycles.to_string(), 18),
            cell(&format!("{:.1}%", r.region_fraction * 100.0), 13),
            cell(&format!("{:.2}", r.speedup), 9),
            cell(
                &paper
                    .map(|(p, s)| format!("{p:.1}% / {s:.2}"))
                    .unwrap_or_default(),
                20
            ),
        );
    }

    println!();
    println!("Whole-program speedup tracks the fraction of time spent in the dynamic");
    println!("region (paper §4.3): m88ksim barely moves (~10% in region), mipsi is");
    println!("nearly all region, dinero and pnmconvol sit between.");
}
