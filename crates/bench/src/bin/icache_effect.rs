//! §4.4.4's pnmconvol I-cache effect: without dead-assignment elimination
//! "the amount of generated code exceeded the size of the L1 cache by a
//! factor of 2.7, causing slowdowns relative to the static code."
//!
//! Prints generated-code size against the 8kB I-cache capacity and the
//! resulting speedups with and without DAE.

use dyc::{Compiler, OptConfig};
use dyc_workloads::measure::measure_region;
use dyc_workloads::pnmconvol::Pnmconvol;
use dyc_workloads::Workload;

fn generated_instrs(w: &Pnmconvol, cfg: OptConfig) -> u64 {
    let p = Compiler::with_config(cfg).compile(&w.source()).unwrap();
    let mut d = p.dynamic_session();
    let args = w.setup_region(&mut d);
    d.run("do_convol", &args).unwrap();
    d.rt_stats().unwrap().instrs_generated
}

fn main() {
    let cache_instrs = 2048u64; // 8kB / 4B per instruction
    let w = Pnmconvol::default();
    println!("pnmconvol generated-code size vs the 8kB direct-mapped I-cache");
    println!(
        "(reproduction of §4.4.4; {} instructions fit)\n",
        cache_instrs
    );

    let with_dae = OptConfig::all();
    let without_dae = OptConfig::all()
        .without("dead_assignment_elimination")
        .unwrap();

    let n_with = generated_instrs(&w, with_dae);
    let n_without = generated_instrs(&w, without_dae);
    println!(
        "with DAE   : {:>6} instructions generated ({:.2}x of L1)",
        n_with,
        n_with as f64 / cache_instrs as f64
    );
    println!(
        "without DAE: {:>6} instructions generated ({:.2}x of L1)   paper: 2.7x",
        n_without,
        n_without as f64 / cache_instrs as f64
    );

    let r_with = measure_region(&w, with_dae, 3);
    let r_without = measure_region(&w, without_dae, 3);
    println!();
    println!(
        "asymptotic speedup with DAE   : {:.2}   (paper: 3.1)",
        r_with.asymptotic_speedup
    );
    println!(
        "asymptotic speedup without DAE: {:.2}   (paper: 0.9 — a slowdown)",
        r_without.asymptotic_speedup
    );
    println!();
    println!("Without DAE the dead image loads and their address arithmetic survive;");
    println!("streaming that much code through an 8kB direct-mapped I-cache every");
    println!("pixel turns the specialization win into a loss.");
}
