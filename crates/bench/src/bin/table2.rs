//! Table 2: Optimizations Used by Each Program.
//!
//! Reproduced from run-time instrumentation: each benchmark is run
//! dynamically once and the specializer's counters say which staged
//! optimizations actually fired. SW/MW distinguishes single- from
//! multi-way complete loop unrolling, as in the paper.

use dyc_bench::{cell, rule};
use dyc_workloads::measure::opt_usage;
use dyc_workloads::{all, Kind};

/// `name:region`, except when the workload name already names its region.
fn display_name(name: &str, region: &str) -> String {
    if name.contains(':') {
        name.to_string()
    } else {
        format!("{name}:{region}")
    }
}

fn main() {
    println!("Table 2: Optimizations Used by Each Program (reproduction)\n");
    let cols = [
        "Unroll",
        "DAE",
        "Zero&Copy",
        "StLoads",
        "Unchecked",
        "StCalls",
        "StrRed",
        "IntProm",
        "PolyDiv",
    ];
    let mut header = cell("Dynamic Region", 20);
    for c in cols {
        header.push_str(&cell(c, 11));
    }
    println!("{header}");
    rule(header.len());

    let mut section = Kind::Application;
    println!("Applications");
    for w in all() {
        let m = w.meta();
        if m.kind != section {
            section = m.kind;
            println!("Kernels");
        }
        let u = opt_usage(w.as_ref());
        let mark = |b: bool| if b { "yes" } else { "-" };
        let unroll = match u.loop_unrolling {
            Some(true) => "MW",
            Some(false) => "SW",
            None => "-",
        };
        let mut line = cell(&display_name(m.name, m.region_func), 20);
        for v in [
            unroll,
            mark(u.dae),
            mark(u.zero_copy),
            mark(u.static_loads),
            mark(u.unchecked_dispatch),
            mark(u.static_calls),
            mark(u.strength_reduction),
            mark(u.internal_promotions),
            mark(u.polyvariant_division),
        ] {
            line.push_str(&cell(v, 11));
        }
        println!("{line}");
    }

    println!();
    println!("Paper (Table 2): applications use many optimizations each; kernels mostly");
    println!("use only unrolling + static loads + unchecked dispatching. mipsi and binary");
    println!("unroll multi-way; the rest single-way.");
}
