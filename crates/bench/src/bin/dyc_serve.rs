//! `dyc_serve` — traffic-scale serving replay.
//!
//! Replays deterministic zipfian / churn / flash-crowd / stampede key
//! streams against one shared concurrent runtime and reports
//! throughput, miss-path tail latency (p50/p95/p99), single-flight
//! traffic, per-shard probe contention, and (optionally) the eviction
//! hit-rate curve vs `cache_all(k)`. Every dispatch result is validated
//! against the closed-form oracle and every run is meter-balance
//! checked, so a replay that prints a report is also a passed
//! correctness check.
//!
//! ```text
//! cargo run --release -p dyc-bench --bin dyc_serve -- \
//!     --dispatches 1000000 --threads 16 --seed 42 --out serving.json
//! ```
//!
//! Flags (all optional):
//!
//! * `--dispatches N` — total dispatches per pattern (default 1_000_000)
//! * `--threads N` — serving threads (default 16)
//! * `--seed S` — stream seed (default 42)
//! * `--patterns a,b` — subset of `zipfian,churn,flash_crowd,stampede`
//! * `--shards N` / `--flight-shards N` — runtime knobs (0 = auto)
//! * `--miss-policy block|fallback` — racer behavior (default block)
//! * `--bound K` — compile `cache_all(K)` instead of unbounded
//! * `--curve k1,k2,...` — also replay the churn stream at each bound
//!   (0 = unbounded) and report the hit-rate curve
//! * `--curve-dispatches N` — dispatch budget per curve point
//!   (default 200_000)
//! * `--zipf-s F` / `--keys N` — zipfian shape
//! * `--out FILE` — also write the `serving` JSON section to FILE
//!
//! Live telemetry (all optional; any of these attaches the sampler):
//!
//! * `--live ADDR` — serve the Prometheus scrape at ADDR (e.g.
//!   `127.0.0.1:9184`; port 0 auto-picks) while the replay runs; pair
//!   with `dycstat watch ADDR`
//! * `--sample-ms N` — sampler window interval (default 250)
//! * `--watchdog` — arm the anomaly watchdog (default thresholds) with
//!   a flight recorder behind it
//! * `--incident-dir DIR` — write anomaly incident dumps (JSON record +
//!   Chrome trace) to DIR
//!
//! The sampler is observer-effect-free: a sampled replay publishes
//! byte-identical code and balances the same meters as an unsampled
//! one (enforced by the serving regression suite).

use dyc_bench::live::LiveServe;
use dyc_bench::traffic::{
    curve_json, hit_rate_curve, replay_live, CurvePoint, Pattern, ServeConfig, ServeReport,
    StreamConfig, ALL_PATTERNS,
};
use dyc_obs::{SamplerConfig, WatchdogConfig};
use dyc_rt::{MissPolicy, SharedOptions};
use std::fmt::Write as _;
use std::time::Duration;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("bad value for {name}"))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dispatches: u64 = parse(&args, "--dispatches", 1_000_000);
    let threads: usize = parse(&args, "--threads", 16);
    let seed: u64 = parse(&args, "--seed", 42);
    let opts = SharedOptions {
        shards: parse(&args, "--shards", 0),
        flight_shards: parse(&args, "--flight-shards", 0),
        miss_policy: match flag(&args, "--miss-policy").unwrap_or("block") {
            "block" => MissPolicy::Block,
            "fallback" => MissPolicy::Fallback,
            other => panic!("unknown --miss-policy {other}"),
        },
        ..SharedOptions::default()
    };
    let bound: u32 = parse(&args, "--bound", 0);
    let patterns: Vec<Pattern> = match flag(&args, "--patterns") {
        Some(list) => list
            .split(',')
            .map(|p| Pattern::parse(p).unwrap_or_else(|| panic!("unknown pattern {p}")))
            .collect(),
        None => ALL_PATTERNS.to_vec(),
    };

    // Live telemetry: any live flag attaches the sampler (and the
    // scrape endpoint when --live gives an address).
    let live_addr = flag(&args, "--live");
    let watchdog = args.iter().any(|a| a == "--watchdog");
    let incident_dir = flag(&args, "--incident-dir");
    let sample_ms: u64 = parse(&args, "--sample-ms", 250);
    let live_on = live_addr.is_some()
        || watchdog
        || incident_dir.is_some()
        || flag(&args, "--sample-ms").is_some();
    let live = live_on.then(|| {
        let cfg = SamplerConfig {
            interval: Duration::from_millis(sample_ms.max(1)),
            watchdog: watchdog.then(WatchdogConfig::default),
            incident_dir: incident_dir.map(Into::into),
            ..SamplerConfig::default()
        };
        let serve = LiveServe::start(live_addr, cfg)
            .unwrap_or_else(|e| panic!("--live {}: {e}", live_addr.unwrap_or("<none>")));
        if let Some(a) = serve.local_addr() {
            println!("live metrics at http://{a}/metrics (dycstat watch {a})");
        }
        serve
    });

    let mut reports: Vec<ServeReport> = Vec::new();
    for &pattern in &patterns {
        let mut stream = StreamConfig::of(pattern);
        stream.zipf_s = parse(&args, "--zipf-s", stream.zipf_s);
        stream.keys = parse(&args, "--keys", stream.keys);
        let cfg = ServeConfig {
            stream,
            dispatches,
            threads,
            seed,
            opts,
            bound: (bound > 0).then_some(bound),
        };
        let r = replay_live(&cfg, live.as_ref().map(|l| &l.handles))
            .unwrap_or_else(|e| panic!("{} replay failed: {e}", pattern.name()));
        r.balance_check()
            .unwrap_or_else(|e| panic!("{} meters out of balance: {e}", pattern.name()));
        print_report(&r);
        reports.push(r);
    }

    let curve: Option<Vec<CurvePoint>> = flag(&args, "--curve").map(|list| {
        let bounds: Vec<u32> = list
            .split(',')
            .map(|b| b.parse().expect("--curve takes k1,k2,..."))
            .collect();
        let cfg = ServeConfig {
            stream: StreamConfig::of(Pattern::Churn),
            dispatches: parse(&args, "--curve-dispatches", 200_000),
            threads,
            seed,
            opts,
            bound: None,
        };
        let points = hit_rate_curve(&cfg, &bounds).unwrap_or_else(|e| panic!("curve: {e}"));
        print_curve(&points);
        points
    });

    let live_summary = live.map(|l| {
        let (windows, incidents) = l.finish();
        let peak = windows
            .iter()
            .map(dyc_obs::Window::throughput)
            .fold(0.0f64, f64::max);
        println!(
            "\nlive: {} windows retained, peak {:.0} disp/s, {} incident(s)",
            windows.len(),
            peak,
            incidents.len()
        );
        for inc in &incidents {
            println!(
                "  incident {}: {} (window {})",
                inc.anomaly.kind.name(),
                inc.anomaly.detail,
                inc.anomaly.window
            );
            for p in &inc.paths {
                println!("    wrote {}", p.display());
            }
        }
        (windows.len(), peak, incidents.len())
    });

    let json = serving_json(&reports, curve.as_deref(), live_summary);
    if let Some(path) = flag(&args, "--out") {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}

/// The `serving` JSON section: one object per pattern plus the optional
/// hit-rate curve and live-telemetry summary (same hand-rolled style as
/// BENCH_dyncompile.json).
fn serving_json(
    reports: &[ServeReport],
    curve: Option<&[CurvePoint]>,
    live: Option<(usize, f64, usize)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"serving\": {{");
    for (i, r) in reports.iter().enumerate() {
        let last = i + 1 == reports.len() && curve.is_none() && live.is_none();
        let comma = if last { "" } else { "," };
        let _ = writeln!(out, "    \"{}\":", r.pattern);
        let _ = writeln!(out, "{}{comma}", r.json(4));
    }
    if let Some(points) = curve {
        let comma = if live.is_none() { "" } else { "," };
        let _ = writeln!(out, "    \"hit_rate_curve\":");
        let _ = writeln!(out, "{}{comma}", curve_json(points, 4));
    }
    if let Some((windows, peak, incidents)) = live {
        let _ = writeln!(
            out,
            "    \"live\": {{\"windows\": {windows}, \"peak_throughput_per_s\": {peak:.1}, \
             \"incidents\": {incidents}}}"
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn print_report(r: &ServeReport) {
    let (p50, p95, p99, max) = r.miss_hist.quantiles();
    println!(
        "{:<12} {:>9} disp x{:<3} {:>11.0}/s  hit {:>7.3}%  miss p50/p95/p99/max \
         {}/{}/{}/{} µs",
        r.pattern,
        r.dispatches,
        r.threads,
        r.throughput,
        r.hit_rate * 100.0,
        p50 / 1000,
        p95 / 1000,
        p99 / 1000,
        max / 1000,
    );
    println!(
        "{:<12} spec {} waits {} fallbacks {} races {} evictions {} | shards {} \
         (imbalance {:.2}, {:.3} probes/lookup) flights {}",
        "",
        r.snapshot.specializations,
        r.snapshot.single_flight_waits,
        r.snapshot.single_flight_fallbacks,
        r.snapshot.single_flight_races,
        r.snapshot.cache_evictions,
        r.cache_shards,
        r.shard_imbalance,
        r.probes_per_lookup,
        r.flight_shards,
    );
}

fn print_curve(points: &[CurvePoint]) {
    println!("\nhit-rate curve (churn stream):");
    for c in points {
        let bound = if c.bound == 0 {
            "unbounded".to_string()
        } else {
            format!("cache_all({})", c.bound)
        };
        println!(
            "  {bound:<16} hit {:>7.3}%  evictions {:>8}  specializations {:>8}",
            c.hit_rate * 100.0,
            c.evictions,
            c.specializations
        );
    }
}
