//! Wall-clock execution of each benchmark's dynamic region: statically
//! compiled vs dynamically specialized code running on the VM. The
//! modeled-cycle speedups of Table 3 should be directionally visible in
//! real time too, since specialized code simply executes fewer VM
//! instructions.

use dyc::{Compiler, OptConfig};
use dyc_bench::timing::Group;
use dyc_workloads::by_name;

const BENCHES: &[&str] = &["dotproduct", "query", "binary", "chebyshev", "dinero"];

fn main() {
    for name in BENCHES {
        let w = by_name(name).expect("known workload");
        let meta = w.meta();
        let program = Compiler::with_config(OptConfig::all())
            .compile(&w.source())
            .unwrap();
        let mut g = Group::new(format!("region/{name}"));

        let mut stat = program.static_session();
        let sargs = w.setup_region(&mut stat);
        g.bench("static", || {
            w.reset(&mut stat, &sargs);
            stat.run(meta.region_func, &sargs).unwrap()
        });

        let mut dynm = program.dynamic_session();
        let dargs = w.setup_region(&mut dynm);
        dynm.run(meta.region_func, &dargs).unwrap(); // specialize once
        g.bench("specialized", || {
            w.reset(&mut dynm, &dargs);
            dynm.run(meta.region_func, &dargs).unwrap()
        });
    }
}
