//! Raw VM interpreter throughput (instructions per second), with and
//! without the I-cache model — the substrate cost underneath every other
//! measurement.

use dyc_bench::timing::Group;
use dyc_vm::{Cc, CodeFunc, CostModel, FuncId, IAluOp, Instr, Module, Operand, Value, Vm};

/// A counted loop executing `4 + n*4` instructions.
fn loop_module() -> (Module, FuncId) {
    let mut f = CodeFunc::new("spin", 1, 4);
    f.push(Instr::MovI { dst: 1, imm: 0 }); // sum
    f.push(Instr::MovI { dst: 2, imm: 0 }); // i
    f.push(Instr::ICmp {
        cc: Cc::Lt,
        dst: 3,
        a: 2,
        b: Operand::Reg(0),
    }); // 2:
    f.push(Instr::Brz { cond: 3, target: 7 });
    f.push(Instr::IAlu {
        op: IAluOp::Add,
        dst: 1,
        a: 1,
        b: Operand::Reg(2),
    });
    f.push(Instr::IAlu {
        op: IAluOp::Add,
        dst: 2,
        a: 2,
        b: Operand::Imm(1),
    });
    f.push(Instr::Jmp { target: 2 });
    f.push(Instr::Ret { src: Some(1) });
    let mut m = Module::new();
    let id = m.add_func(f);
    (m, id)
}

fn main() {
    let n = 10_000i64;
    let instrs = 4 + n as u64 * 4;
    let mut g = Group::new("vm");
    g.throughput(instrs);

    let (mut m, id) = loop_module();
    let mut vm = Vm::new(CostModel::alpha21164());
    g.bench("with_icache", || {
        vm.call(&mut m, id, &[Value::I(n)]).unwrap()
    });

    let mut vm = Vm::without_icache(CostModel::alpha21164());
    g.bench("perfect_icache", || {
        vm.call(&mut m, id, &[Value::I(n)]).unwrap()
    });
}
