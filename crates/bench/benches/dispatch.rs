//! Wall-clock dispatch costs: unchecked (cache-one) vs double-hashed
//! (cache-all) region entry, the real-time analogue of §4.4.3.

use criterion::{criterion_group, criterion_main, Criterion};
use dyc::{Compiler, OptConfig, Value};

const SRC: &str = r#"
    int hashed(int key, int d) {
        make_static(key);
        return key * 3 + d;
    }
    int unchecked(int key, int d) {
        make_static(key: cache_one_unchecked);
        return key * 3 + d;
    }
"#;

fn bench_dispatch(c: &mut Criterion) {
    let program = Compiler::with_config(OptConfig::all()).compile(SRC).unwrap();
    let mut g = c.benchmark_group("dispatch");

    let mut unchecked = program.dynamic_session();
    unchecked.run("unchecked", &[Value::I(9), Value::I(1)]).unwrap();
    g.bench_function("cache_one_unchecked", |b| {
        b.iter(|| unchecked.run("unchecked", &[Value::I(9), Value::I(2)]).unwrap())
    });

    let mut hashed = program.dynamic_session();
    hashed.run("hashed", &[Value::I(9), Value::I(1)]).unwrap();
    g.bench_function("cache_all_hit", |b| {
        b.iter(|| hashed.run("hashed", &[Value::I(9), Value::I(2)]).unwrap())
    });

    // Populated cache: many live specializations.
    let mut busy = program.dynamic_session();
    for k in 0..256 {
        busy.run("hashed", &[Value::I(k), Value::I(1)]).unwrap();
    }
    let mut k = 0i64;
    g.bench_function("cache_all_hit_256_versions", |b| {
        b.iter(|| {
            k = (k + 37) % 256;
            busy.run("hashed", &[Value::I(k), Value::I(2)]).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
