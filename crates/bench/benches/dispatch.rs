//! Wall-clock dispatch costs: unchecked (cache-one) vs double-hashed
//! (cache-all) region entry, the real-time analogue of §4.4.3.

use dyc::{Compiler, OptConfig, Value};
use dyc_bench::timing::Group;

const SRC: &str = r#"
    int hashed(int key, int d) {
        make_static(key);
        return key * 3 + d;
    }
    int unchecked(int key, int d) {
        make_static(key: cache_one_unchecked);
        return key * 3 + d;
    }
"#;

fn main() {
    let program = Compiler::with_config(OptConfig::all())
        .compile(SRC)
        .unwrap();
    let mut g = Group::new("dispatch");

    let mut unchecked = program.dynamic_session();
    unchecked
        .run("unchecked", &[Value::I(9), Value::I(1)])
        .unwrap();
    g.bench("cache_one_unchecked", || {
        unchecked
            .run("unchecked", &[Value::I(9), Value::I(2)])
            .unwrap()
    });

    let mut hashed = program.dynamic_session();
    hashed.run("hashed", &[Value::I(9), Value::I(1)]).unwrap();
    g.bench("cache_all_hit", || {
        hashed.run("hashed", &[Value::I(9), Value::I(2)]).unwrap()
    });

    // Populated cache: many live specializations.
    let mut busy = program.dynamic_session();
    for k in 0..256 {
        busy.run("hashed", &[Value::I(k), Value::I(1)]).unwrap();
    }
    let mut k = 0i64;
    g.bench("cache_all_hit_256_versions", || {
        k = (k + 37) % 256;
        busy.run("hashed", &[Value::I(k), Value::I(2)]).unwrap()
    });
}
