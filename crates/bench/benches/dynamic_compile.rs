//! Wall-clock cost of the dynamic compiler itself: how long one
//! specialization takes for each benchmark's region (the real-time
//! analogue of Table 3's overhead column — our generating extension is a
//! Rust interpreter over the staged IR, so absolute times are not the
//! paper's, but relative costs across benchmarks track the same structure:
//! instructions generated and static computations executed).

use criterion::{criterion_group, criterion_main, Criterion};
use dyc::{Compiler, OptConfig};
use dyc_workloads::all;

fn bench_specialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("specialize");
    g.sample_size(20);
    for w in all() {
        let meta = w.meta();
        let program = Compiler::with_config(OptConfig::all())
            .compile(&w.source())
            .expect("workload compiles");
        g.bench_function(meta.name, |b| {
            b.iter_with_setup(
                || {
                    let mut sess = program.dynamic_session();
                    let args = w.setup_region(&mut sess);
                    (sess, args)
                },
                |(mut sess, args)| {
                    // The first call performs the specialization.
                    sess.run(meta.region_func, &args).unwrap();
                    sess
                },
            );
        });
    }
    g.finish();
}

fn bench_static_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_compile");
    g.sample_size(20);
    for w in all() {
        let meta = w.meta();
        let src = w.source();
        g.bench_function(meta.name, |b| {
            b.iter(|| Compiler::new().compile(&src).expect("compiles"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_specialization, bench_static_compile);
criterion_main!(benches);
