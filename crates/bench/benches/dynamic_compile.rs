//! Wall-clock cost of the dynamic compiler itself: how long one
//! specialization takes for each benchmark's region (the real-time
//! analogue of Table 3's overhead column — our generating extension is a
//! Rust interpreter over the staged GE program, so absolute times are not
//! the paper's, but relative costs across benchmarks track the same
//! structure: instructions generated and static computations executed).
//!
//! The `specialize` group runs the staged GE executor; `specialize_online`
//! runs the legacy online specializer for comparison — the staged path
//! should win since it does no binding-time classification at run time.

use dyc::{Compiler, OptConfig};
use dyc_bench::timing::Group;
use dyc_workloads::all;

fn bench_specialization(staged: bool) {
    let mut g = Group::new(if staged {
        "specialize"
    } else {
        "specialize_online"
    });
    let mut cfg = OptConfig::all();
    cfg.staged_ge = staged;
    for w in all() {
        let meta = w.meta();
        let program = Compiler::with_config(cfg)
            .compile(&w.source())
            .expect("workload compiles");
        g.bench(meta.name, || {
            let mut sess = program.dynamic_session();
            let args = w.setup_region(&mut sess);
            // The first call performs the specialization.
            sess.run(meta.region_func, &args).unwrap();
            sess
        });
    }
}

fn bench_static_compile() {
    let mut g = Group::new("static_compile");
    for w in all() {
        let meta = w.meta();
        let src = w.source();
        g.bench(meta.name, || {
            Compiler::new().compile(&src).expect("compiles")
        });
    }
}

fn main() {
    bench_specialization(true);
    bench_specialization(false);
    bench_static_compile();
}
