//! Live telemetry: snapshot-while-running counters, an atomic mirror of
//! the latency histogram, and the cross-thread-readable flight-recorder
//! rings.
//!
//! The event ring ([`crate::Recorder`]) and the runtime's meters are
//! harvested *after* a run; a long-running server is a black box while
//! it serves. This module is the live complement: every serving thread
//! registers one cache-line-aligned [`LiveSlot`] of relaxed atomics in
//! a shared [`LiveRegistry`], and any other thread can take a coherent
//! [`LiveSnapshot`] at any time without stopping the workers.
//!
//! # Observer-effect-free obligations
//!
//! The live layer must never change what the runtime computes, which
//! code it emits, or which meters it charges:
//!
//! * Recording is relaxed `fetch_add` into preallocated padded slots —
//!   no locks, no allocation, no shared cache line between threads on
//!   the warm path. With no registry attached, every hook is a branch
//!   on a `None`.
//! * The registry is parallel to `RtStats`/`ConcStats`, never a
//!   replacement: the runtime's own meters are untouched, so the
//!   meter-balance identities hold bit-for-bit with or without
//!   sampling (enforced by the serving regression suite).
//! * Snapshots read counters the workers keep writing. Per-counter
//!   values are exact at some instant; *cross*-counter identities (for
//!   example `hits + misses == dispatches`) may be off by the handful
//!   of dispatches in flight during the read — statistically coherent,
//!   never torn. Final snapshots taken after workers quiesce are exact.

use crate::event::{Event, EventKind, ALL_KINDS};
use crate::hist::{bucket_index, LatencyHistogram, BUCKET_COUNT};
use crate::now_ns;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of live counters in a [`LiveSlot`].
pub const N_LIVE_METRICS: usize = 11;

/// The live counters every serving thread maintains. These mirror (a
/// subset of) the runtime's meters so windowed rates can be computed
/// without draining any ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum LiveMetric {
    /// Dispatches through any site (hits + misses).
    Dispatches,
    /// Dispatches served from the shared code cache.
    Hits,
    /// Dispatches that entered the miss path.
    Misses,
    /// Specializations published (single-flight winners).
    Specializations,
    /// Bounded-cache (`cache_all(k)`) evictions.
    Evictions,
    /// Single-flight waits behind another thread's specialization.
    FlightWaits,
    /// Single-flight generic-continuation fallbacks.
    FlightFallbacks,
    /// Misses that found the key already published when they reached
    /// the flight table (lost races).
    FlightRaces,
    /// Adaptive-policy deferrals to the generic continuation.
    PolicyDefers,
    /// Adaptive-policy promotions past the break-even threshold.
    PolicyPromotes,
    /// Adaptive-policy throttled internal-promotion misses.
    PolicyThrottles,
}

/// Every live metric, in [`LiveSlot`] index order.
pub const LIVE_METRICS: [LiveMetric; N_LIVE_METRICS] = [
    LiveMetric::Dispatches,
    LiveMetric::Hits,
    LiveMetric::Misses,
    LiveMetric::Specializations,
    LiveMetric::Evictions,
    LiveMetric::FlightWaits,
    LiveMetric::FlightFallbacks,
    LiveMetric::FlightRaces,
    LiveMetric::PolicyDefers,
    LiveMetric::PolicyPromotes,
    LiveMetric::PolicyThrottles,
];

impl LiveMetric {
    /// The metric's stable `snake_case` name (the Prometheus family is
    /// `dyc_live_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            LiveMetric::Dispatches => "dispatches",
            LiveMetric::Hits => "hits",
            LiveMetric::Misses => "misses",
            LiveMetric::Specializations => "specializations",
            LiveMetric::Evictions => "evictions",
            LiveMetric::FlightWaits => "flight_waits",
            LiveMetric::FlightFallbacks => "flight_fallbacks",
            LiveMetric::FlightRaces => "flight_races",
            LiveMetric::PolicyDefers => "policy_defers",
            LiveMetric::PolicyPromotes => "policy_promotes",
            LiveMetric::PolicyThrottles => "policy_throttles",
        }
    }
}

/// An atomic mirror of [`LatencyHistogram`] sharing the same
/// log-linear bucket table ([`crate::hist::BUCKET_FLOORS`]), so a
/// sampler can read miss-path percentiles while workers keep
/// recording. Recording is one relaxed `fetch_add` per field — no
/// locks, no allocation.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram (one allocation, ~4 KB, never grows).
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Fold one sample in (relaxed; allocation-free).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy as a plain [`LatencyHistogram`]. The count
    /// is recomputed from the bucket reads, so `count == Σ buckets`
    /// holds exactly even while workers record concurrently; sum and
    /// max are read separately and may trail the buckets by the few
    /// samples in flight (documented as statistically coherent).
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = Box::new([0u64; BUCKET_COUNT]);
        for (d, s) in buckets.iter_mut().zip(self.buckets.iter()) {
            *d = s.load(Ordering::Relaxed);
        }
        LatencyHistogram::from_parts(
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// One thread's private live counters. Each slot is its own `Arc`
/// allocation and is aligned to 128 bytes, so no two threads' warm-path
/// counters ever share a cache line (no false sharing between workers;
/// the sampler's reads are the only cross-thread traffic).
#[derive(Debug)]
#[repr(align(128))]
pub struct LiveSlot {
    counters: [AtomicU64; N_LIVE_METRICS],
    miss_ns: AtomicHistogram,
}

impl Default for LiveSlot {
    fn default() -> LiveSlot {
        LiveSlot::new()
    }
}

impl LiveSlot {
    /// A zeroed slot.
    pub fn new() -> LiveSlot {
        LiveSlot {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            miss_ns: AtomicHistogram::new(),
        }
    }

    /// Add `n` to a counter (relaxed, allocation-free).
    #[inline]
    pub fn add(&self, m: LiveMetric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Record one miss-path wall-clock sample.
    #[inline]
    pub fn record_miss_ns(&self, ns: u64) {
        self.miss_ns.record(ns);
    }

    /// Current value of one counter.
    pub fn get(&self, m: LiveMetric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }
}

/// Per-site specialization-cost accumulators — the break-even drift
/// input. Updated only on the (cold) specialization path.
#[derive(Debug, Default)]
struct SiteLive {
    specs: AtomicU64,
    spec_cycles: AtomicU64,
}

/// One site's cumulative specialization economics in a
/// [`LiveSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCost {
    /// The dispatch site id.
    pub site: u32,
    /// Specializations charged to the site so far.
    pub specs: u64,
    /// Dynamic-compilation model cycles those specializations cost.
    pub spec_cycles: u64,
}

impl SiteCost {
    /// Mean dynamic-compilation cycles per specialization (0 when the
    /// site has none) — the quantity whose drift the watchdog's
    /// break-even rule tracks.
    pub fn avg_spec_cycles(&self) -> f64 {
        if self.specs == 0 {
            0.0
        } else {
            self.spec_cycles as f64 / self.specs as f64
        }
    }
}

/// The shared registry of per-thread [`LiveSlot`]s and per-site
/// specialization costs. Worker threads register once (cold) and then
/// only touch their own slot; the sampler reads everything.
#[derive(Debug, Default)]
pub struct LiveRegistry {
    slots: RwLock<Vec<Arc<LiveSlot>>>,
    sites: RwLock<Vec<Arc<SiteLive>>>,
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> LiveRegistry {
        LiveRegistry::default()
    }

    /// Register one worker thread: allocates its padded slot (cold
    /// path; the returned `Arc` is the thread's private handle).
    pub fn register_thread(&self) -> Arc<LiveSlot> {
        let slot = Arc::new(LiveSlot::new());
        self.slots.write().unwrap().push(Arc::clone(&slot));
        slot
    }

    /// Charge one specialization's dynamic-compilation cycles to a
    /// site (cold path — runs once per published specialization).
    pub fn note_spec(&self, site: u32, cycles: u64) {
        let idx = site as usize;
        {
            let sites = self.sites.read().unwrap();
            if let Some(s) = sites.get(idx) {
                s.specs.fetch_add(1, Ordering::Relaxed);
                s.spec_cycles.fetch_add(cycles, Ordering::Relaxed);
                return;
            }
        }
        let mut sites = self.sites.write().unwrap();
        while sites.len() <= idx {
            sites.push(Arc::new(SiteLive::default()));
        }
        sites[idx].specs.fetch_add(1, Ordering::Relaxed);
        sites[idx].spec_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Threads registered so far.
    pub fn n_threads(&self) -> usize {
        self.slots.read().unwrap().len()
    }

    /// A coherent point-in-time view while workers keep dispatching:
    /// counters summed across slots, the miss-path histogram merged,
    /// per-site specialization costs copied.
    pub fn snapshot(&self) -> LiveSnapshot {
        let slots = self.slots.read().unwrap();
        let mut counters = [0u64; N_LIVE_METRICS];
        let mut miss_ns = LatencyHistogram::new();
        for slot in slots.iter() {
            for (i, c) in counters.iter_mut().enumerate() {
                *c += slot.counters[i].load(Ordering::Relaxed);
            }
            miss_ns.merge(&slot.miss_ns.snapshot());
        }
        let threads = slots.len();
        drop(slots);
        let sites = self
            .sites
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let specs = s.specs.load(Ordering::Relaxed);
                (specs > 0).then(|| SiteCost {
                    site: i as u32,
                    specs,
                    spec_cycles: s.spec_cycles.load(Ordering::Relaxed),
                })
            })
            .collect();
        LiveSnapshot {
            t_ns: now_ns(),
            counters,
            miss_ns,
            sites,
            threads,
        }
    }
}

/// A point-in-time view of a [`LiveRegistry`].
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    /// When the snapshot was taken ([`crate::now_ns`]).
    pub t_ns: u64,
    /// Cumulative counter values, indexed by [`LiveMetric`].
    pub counters: [u64; N_LIVE_METRICS],
    /// Cumulative miss-path latency histogram.
    pub miss_ns: LatencyHistogram,
    /// Per-site specialization costs (sites with at least one spec).
    pub sites: Vec<SiteCost>,
    /// Worker threads registered at snapshot time.
    pub threads: usize,
}

impl LiveSnapshot {
    /// One counter's value.
    pub fn get(&self, m: LiveMetric) -> u64 {
        self.counters[m as usize]
    }
}

/// Words one flight-ring slot occupies (one encoded [`Event`]).
const EVENT_WORDS: usize = 8;

/// A cross-thread-readable event ring: the flight recorder's per-thread
/// buffer. Unlike [`crate::Recorder`] (which is `&mut`-owned by its
/// thread and unreadable until the run ends), this ring is written with
/// relaxed atomic stores and a `Release` head bump, so the watchdog can
/// capture its tail mid-run.
///
/// Single writer per ring (its owning thread); any number of readers.
/// A reader racing the writer may observe a slot mid-overwrite (torn
/// between two events); such slots are detected by an out-of-range
/// kind index or skipped as a benign mixed payload — the capture is a
/// diagnostic tail, not an exact log, and tearing affects at most the
/// oldest slot of a full ring.
#[derive(Debug)]
pub struct FlightRing {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    cap: usize,
    thread: u32,
}

fn kind_code(kind: EventKind) -> u64 {
    // O(|ALL_KINDS|) scan — miss-path-only, never on the warm path.
    ALL_KINDS.iter().position(|&k| k == kind).unwrap_or(0) as u64
}

impl FlightRing {
    fn new(cap: usize, thread: u32) -> FlightRing {
        let cap = cap.max(16);
        FlightRing {
            slots: (0..cap * EVENT_WORDS).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            cap,
            thread,
        }
    }

    /// Record one event: eight relaxed stores plus a `Release` head
    /// bump. Allocation-free; overwrites the oldest slot when full.
    #[inline]
    pub fn record(&self, kind: EventKind, site: u32, key: u64, cycle: u64, a: u64, b: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let base = (h as usize % self.cap) * EVENT_WORDS;
        let s = &self.slots;
        s[base].store(kind_code(kind), Ordering::Relaxed);
        s[base + 1].store(u64::from(site), Ordering::Relaxed);
        s[base + 2].store(key, Ordering::Relaxed);
        s[base + 3].store(h, Ordering::Relaxed);
        s[base + 4].store(now_ns(), Ordering::Relaxed);
        s[base + 5].store(cycle, Ordering::Relaxed);
        s[base + 6].store(a, Ordering::Relaxed);
        s[base + 7].store(b, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }

    /// The resident tail, oldest first. Slots whose kind word is out of
    /// range (a torn read racing the writer) are skipped.
    pub fn tail(&self) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        let n = (h as usize).min(self.cap);
        let mut out = Vec::with_capacity(n);
        for i in (h - n as u64)..h {
            let base = (i as usize % self.cap) * EVENT_WORDS;
            let s = &self.slots;
            let code = s[base].load(Ordering::Relaxed) as usize;
            let Some(&kind) = ALL_KINDS.get(code) else {
                continue;
            };
            out.push(Event {
                kind,
                site: s[base + 1].load(Ordering::Relaxed) as u32,
                thread: self.thread,
                key: s[base + 2].load(Ordering::Relaxed),
                seq: s[base + 3].load(Ordering::Relaxed),
                t_ns: s[base + 4].load(Ordering::Relaxed),
                cycle: s[base + 5].load(Ordering::Relaxed),
                a: s[base + 6].load(Ordering::Relaxed),
                b: s[base + 7].load(Ordering::Relaxed),
            });
        }
        out
    }

    /// Events ever recorded into this ring.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// The flight recorder: one [`FlightRing`] per registered thread,
/// capturable as a merged timeline at any moment. Only *miss-path*
/// events are ringed (dispatch misses, flight waits/fallbacks, GE-exec
/// spans, evictions, policy decisions, native installs) — hits are
/// metered in [`LiveSlot`] counters, so the warm path never touches
/// the ring.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: RwLock<Vec<Arc<FlightRing>>>,
    cap: usize,
}

impl FlightRecorder {
    /// A recorder whose per-thread rings hold `cap` events each
    /// (minimum 16).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            rings: RwLock::new(Vec::new()),
            cap,
        }
    }

    /// Register one thread's ring (cold path).
    pub fn register(&self, thread: u32) -> Arc<FlightRing> {
        let ring = Arc::new(FlightRing::new(self.cap, thread));
        self.rings.write().unwrap().push(Arc::clone(&ring));
        ring
    }

    /// Capture the tail of every thread's ring as one merged timeline
    /// (ordered by wall time, thread, sequence) — the incident dump's
    /// event stream.
    pub fn capture(&self) -> Vec<Event> {
        let rings = self.rings.read().unwrap();
        crate::recorder::merge(rings.iter().map(|r| r.tail()).collect())
    }
}

/// Everything a runtime needs to feed the live layer: the counter
/// registry plus (optionally) the flight recorder. `Clone` is shallow —
/// clones share the same registry — so the handles can be passed to a
/// runtime (`SharedRuntime::attach_live`) while the sampler keeps its
/// own copy.
#[derive(Debug, Clone, Default)]
pub struct LiveHandles {
    /// The shared counter/histogram registry.
    pub registry: Arc<LiveRegistry>,
    /// The flight recorder, when incident capture is wanted.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl LiveHandles {
    /// Counters only (no flight recorder).
    pub fn new() -> LiveHandles {
        LiveHandles::default()
    }

    /// Counters plus a flight recorder with `cap`-event rings.
    pub fn with_flight(cap: usize) -> LiveHandles {
        LiveHandles {
            registry: Arc::new(LiveRegistry::new()),
            flight: Some(Arc::new(FlightRecorder::new(cap))),
        }
    }

    /// Wire up one worker thread: register its counter slot and (when
    /// the flight recorder is on) its event ring.
    pub fn thread(&self, tid: u32) -> LiveThread {
        LiveThread {
            slot: self.registry.register_thread(),
            registry: Arc::clone(&self.registry),
            ring: self.flight.as_ref().map(|f| f.register(tid)),
        }
    }
}

/// One worker thread's live-telemetry wiring: its private counter
/// slot, the registry (for per-site spec-cost attribution), and its
/// flight ring when the recorder is armed.
#[derive(Debug, Clone)]
pub struct LiveThread {
    /// The thread's private padded counter slot.
    pub slot: Arc<LiveSlot>,
    /// The shared registry ([`LiveRegistry::note_spec`] target).
    pub registry: Arc<LiveRegistry>,
    /// The thread's flight ring, if incident capture is armed.
    pub ring: Option<Arc<FlightRing>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn live_metric_names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = LIVE_METRICS.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_LIVE_METRICS);
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{n} not snake_case"
            );
        }
        for (i, m) in LIVE_METRICS.iter().enumerate() {
            assert_eq!(*m as usize, i, "LIVE_METRICS out of declaration order");
        }
    }

    #[test]
    fn slots_do_not_share_cache_lines() {
        assert_eq!(std::mem::align_of::<LiveSlot>(), 128);
        assert!(std::mem::size_of::<LiveSlot>() >= 128);
    }

    #[test]
    fn registry_snapshot_sums_across_threads() {
        let reg = LiveRegistry::new();
        let a = reg.register_thread();
        let b = reg.register_thread();
        a.add(LiveMetric::Dispatches, 10);
        a.add(LiveMetric::Hits, 7);
        a.add(LiveMetric::Misses, 3);
        a.record_miss_ns(1_000);
        b.add(LiveMetric::Dispatches, 5);
        b.add(LiveMetric::Hits, 5);
        b.record_miss_ns(2_000);
        b.record_miss_ns(3_000);
        reg.note_spec(2, 700);
        reg.note_spec(2, 300);
        reg.note_spec(0, 50);
        let s = reg.snapshot();
        assert_eq!(s.threads, 2);
        assert_eq!(s.get(LiveMetric::Dispatches), 15);
        assert_eq!(s.get(LiveMetric::Hits), 12);
        assert_eq!(s.get(LiveMetric::Misses), 3);
        assert_eq!(s.miss_ns.count(), 3);
        assert_eq!(s.miss_ns.sum(), 6_000);
        assert_eq!(s.sites.len(), 2);
        assert_eq!((s.sites[0].site, s.sites[0].specs), (0, 1));
        assert_eq!((s.sites[1].site, s.sites[1].spec_cycles), (2, 1_000));
        assert!((s.sites[1].avg_spec_cycles() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_mutable_recording() {
        let ah = AtomicHistogram::new();
        let mut h = LatencyHistogram::new();
        for v in [0u64, 5, 90, 1_234, 999_999] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.sum(), h.sum());
        assert_eq!(snap.max(), h.max());
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(snap.percentile(p), h.percentile(p));
        }
    }

    #[test]
    fn flight_ring_tail_keeps_the_newest_events_in_order() {
        let ring = FlightRing::new(16, 3);
        for i in 0..40u64 {
            ring.record(EventKind::DispatchMiss, i as u32, i, i * 10, i, 0);
        }
        let tail = ring.tail();
        assert_eq!(tail.len(), 16);
        assert_eq!(ring.recorded(), 40);
        for (j, e) in tail.iter().enumerate() {
            assert_eq!(e.seq, 24 + j as u64, "tail not the newest window");
            assert_eq!(e.site, 24 + j as u32);
            assert_eq!(e.thread, 3);
            assert_eq!(e.kind, EventKind::DispatchMiss);
        }
    }

    #[test]
    fn flight_ring_round_trips_every_kind() {
        let ring = FlightRing::new(64, 0);
        for (i, kind) in ALL_KINDS.into_iter().enumerate() {
            ring.record(kind, i as u32, i as u64, 0, 7, 9);
        }
        let tail = ring.tail();
        assert_eq!(tail.len(), ALL_KINDS.len());
        for (i, e) in tail.iter().enumerate() {
            assert_eq!(e.kind, ALL_KINDS[i]);
            assert_eq!((e.a, e.b), (7, 9));
        }
    }

    #[test]
    fn recorder_capture_merges_rings_while_writers_run() {
        let rec = Arc::new(FlightRecorder::new(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u32)
            .map(|t| {
                let ring = rec.register(t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ring.record(EventKind::CacheEvict, 1, n, 0, 0, 0);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        // Capture repeatedly mid-run: every capture must be readable
        // and time-ordered (torn slots skipped, not crashed on).
        for _ in 0..50 {
            let events = rec.capture();
            for w in events.windows(2) {
                assert!(w[0].t_ns <= w[1].t_ns, "capture not time-ordered");
            }
        }
        stop.store(true, Ordering::Relaxed);
        let counts: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();
        assert!(counts.iter().all(|&n| n > 0));
        // Quiesced capture is exact: the resident tail of each ring.
        let quiesced = rec.capture();
        let expect: usize = counts.iter().map(|&n| (n as usize).min(1024)).sum();
        assert_eq!(quiesced.len(), expect);
    }
}
