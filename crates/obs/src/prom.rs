//! Prometheus-style text exposition (version 0.0.4) for named meters.
//!
//! `dycstat` renders the runtime's counter sets ([`crate::SiteProfile`]
//! fields, `RtStats`, the concurrent runtime's global snapshot) in the
//! standard scrape format so a run's numbers can be diffed, plotted, or
//! shipped to any Prometheus-compatible tooling without bespoke
//! parsing.

use crate::json::escape;

/// The metric's exposition type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count (events, cycles, probes).
    Counter,
    /// Point-in-time level (resident entries, ring occupancy).
    Gauge,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sample: a metric name, help text, kind, label set, and value.
/// Samples sharing a name (e.g. one per site) share one
/// `# HELP`/`# TYPE` header and differ by labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`snake_case`, conventionally `dyc_`-prefixed).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Metric {
    /// A counter sample.
    pub fn counter(name: &str, help: &str, labels: &[(&str, String)], value: f64) -> Metric {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Counter,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            value,
        }
    }

    /// A gauge sample.
    pub fn gauge(name: &str, help: &str, labels: &[(&str, String)], value: f64) -> Metric {
        Metric {
            kind: MetricKind::Gauge,
            ..Metric::counter(name, help, labels, value)
        }
    }
}

/// Escape help text per the text-format spec: `\` as `\\` and newline
/// as `\n` (help is otherwise raw — only label *values* get the full
/// quoted escaping).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render samples in the Prometheus text format. Consecutive samples
/// with the same name are grouped under one header; pass samples
/// already ordered by name for a well-formed exposition.
pub fn render_metrics(metrics: &[Metric]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in metrics {
        if last_name != Some(m.name.as_str()) {
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.name()));
            last_name = Some(m.name.as_str());
        }
        out.push_str(&m.name);
        if !m.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in m.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}={}", k, escape(v)));
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(&render_value(m.value));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grouped_families() {
        let ms = vec![
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "0".to_string())],
                12.0,
            ),
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "1".to_string())],
                3.0,
            ),
            Metric::gauge("dyc_ring_events", "Resident events.", &[], 1.5),
        ];
        let text = render_metrics(&ms);
        assert_eq!(
            text,
            "# HELP dyc_site_hits_total Cache hits per site.\n\
             # TYPE dyc_site_hits_total counter\n\
             dyc_site_hits_total{site=\"0\"} 12\n\
             dyc_site_hits_total{site=\"1\"} 3\n\
             # HELP dyc_ring_events Resident events.\n\
             # TYPE dyc_ring_events gauge\n\
             dyc_ring_events 1.5\n"
        );
    }

    #[test]
    fn integral_values_render_without_fraction() {
        assert_eq!(render_value(42.0), "42");
        assert_eq!(render_value(0.25), "0.25");
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metric::counter("x_total", "h", &[("k", "a\"b".to_string())], 1.0);
        let text = render_metrics(&[m]);
        assert!(text.contains("x_total{k=\"a\\\"b\"} 1\n"));
    }

    #[test]
    fn help_text_is_escaped() {
        let m = Metric::counter("x_total", "line one\nwith \\ slash", &[], 1.0);
        let text = render_metrics(&[m]);
        assert!(text.contains("# HELP x_total line one\\nwith \\\\ slash\n"));
        // The exposition stays one-sample-per-line.
        assert_eq!(text.lines().count(), 3);
    }

    // --- text-format grammar validation -----------------------------
    //
    // A miniature checker for the Prometheus text format (version
    // 0.0.4): metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
    // match [a-zA-Z_][a-zA-Z0-9_]*, label values are double-quoted with
    // \\, \", \n escapes, values parse as floats, and every sample line
    // is preceded by its family's # HELP and # TYPE lines.

    fn is_metric_name(s: &str) -> bool {
        let mut cs = s.chars();
        cs.next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && cs.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    fn is_label_name(s: &str) -> bool {
        let mut cs = s.chars();
        cs.next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && cs.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }

    /// Parse a quoted label value, returning the rest after the close
    /// quote. Panics on an illegal escape or unterminated string.
    fn skip_label_value(s: &str) -> &str {
        let mut cs = s.char_indices();
        assert_eq!(
            cs.next().map(|(_, c)| c),
            Some('"'),
            "label value must open with a quote"
        );
        while let Some((i, c)) = cs.next() {
            match c {
                '"' => return &s[i + 1..],
                '\\' => {
                    let (_, e) = cs.next().expect("dangling escape");
                    assert!(matches!(e, '\\' | '"' | 'n'), "illegal escape \\{e}");
                }
                '\n' => panic!("raw newline in label value"),
                _ => {}
            }
        }
        panic!("unterminated label value");
    }

    /// Validate a full exposition against the grammar. Returns the
    /// number of sample lines checked.
    fn validate_exposition(text: &str) -> usize {
        use std::collections::HashSet;
        let mut headered: HashSet<String> = HashSet::new();
        let mut samples = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(is_metric_name(name), "bad HELP name {name:?}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                assert!(is_metric_name(name), "bad TYPE name {name:?}");
                let kind = it.next().unwrap();
                assert!(matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ));
                headered.insert(name.to_string());
                continue;
            }
            // Sample line: name[{labels}] value
            let name_end = line.find(['{', ' ']).expect("sample line has no value");
            let name = &line[..name_end];
            assert!(is_metric_name(name), "bad metric name {name:?}");
            assert!(
                headered.contains(name),
                "sample for {name:?} precedes its # TYPE"
            );
            let mut rest = &line[name_end..];
            if let Some(body) = rest.strip_prefix('{') {
                let mut cur = body;
                loop {
                    let eq = cur.find('=').expect("label without =");
                    assert!(is_label_name(&cur[..eq]), "bad label name {:?}", &cur[..eq]);
                    cur = skip_label_value(&cur[eq + 1..]);
                    match cur.as_bytes().first() {
                        Some(b',') => cur = &cur[1..],
                        Some(b'}') => {
                            rest = &cur[1..];
                            break;
                        }
                        other => panic!("unexpected {other:?} after label value"),
                    }
                }
            }
            let value = rest.trim_start_matches(' ');
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value {value:?}"));
            samples += 1;
        }
        samples
    }

    #[test]
    fn exposition_conforms_to_the_text_format_grammar() {
        let ms = vec![
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "0".to_string()), ("mode", "cache_all".to_string())],
                12.0,
            ),
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "1".to_string())],
                3.0,
            ),
            Metric::gauge("dyc_ring_events", "Resident\nevents \\ now.", &[], 1.5),
            Metric::gauge(
                "dyc_weird_label",
                "Label value with every escape.",
                &[("path", "a\"b\\c\nd".to_string())],
                -0.125,
            ),
        ];
        let text = render_metrics(&ms);
        assert_eq!(validate_exposition(&text), 4);
    }

    #[test]
    fn live_metric_families_use_legal_names() {
        for m in crate::LIVE_METRICS {
            assert!(is_metric_name(&format!("dyc_live_{}_total", m.name())));
        }
    }

    #[test]
    fn grammar_checker_rejects_bad_names() {
        assert!(!is_metric_name("9starts_with_digit"));
        assert!(!is_metric_name("has-dash"));
        assert!(!is_metric_name(""));
        assert!(is_metric_name("dyc_live_dispatches_total"));
        assert!(!is_label_name("with:colon"));
        assert!(is_label_name("site"));
    }
}
