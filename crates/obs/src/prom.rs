//! Prometheus-style text exposition (version 0.0.4) for named meters.
//!
//! `dycstat` renders the runtime's counter sets ([`crate::SiteProfile`]
//! fields, `RtStats`, the concurrent runtime's global snapshot) in the
//! standard scrape format so a run's numbers can be diffed, plotted, or
//! shipped to any Prometheus-compatible tooling without bespoke
//! parsing.

use crate::json::escape;

/// The metric's exposition type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count (events, cycles, probes).
    Counter,
    /// Point-in-time level (resident entries, ring occupancy).
    Gauge,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sample: a metric name, help text, kind, label set, and value.
/// Samples sharing a name (e.g. one per site) share one
/// `# HELP`/`# TYPE` header and differ by labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`snake_case`, conventionally `dyc_`-prefixed).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Metric {
    /// A counter sample.
    pub fn counter(name: &str, help: &str, labels: &[(&str, String)], value: f64) -> Metric {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Counter,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            value,
        }
    }

    /// A gauge sample.
    pub fn gauge(name: &str, help: &str, labels: &[(&str, String)], value: f64) -> Metric {
        Metric {
            kind: MetricKind::Gauge,
            ..Metric::counter(name, help, labels, value)
        }
    }
}

fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render samples in the Prometheus text format. Consecutive samples
/// with the same name are grouped under one header; pass samples
/// already ordered by name for a well-formed exposition.
pub fn render_metrics(metrics: &[Metric]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in metrics {
        if last_name != Some(m.name.as_str()) {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.name()));
            last_name = Some(m.name.as_str());
        }
        out.push_str(&m.name);
        if !m.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in m.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}={}", k, escape(v)));
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(&render_value(m.value));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grouped_families() {
        let ms = vec![
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "0".to_string())],
                12.0,
            ),
            Metric::counter(
                "dyc_site_hits_total",
                "Cache hits per site.",
                &[("site", "1".to_string())],
                3.0,
            ),
            Metric::gauge("dyc_ring_events", "Resident events.", &[], 1.5),
        ];
        let text = render_metrics(&ms);
        assert_eq!(
            text,
            "# HELP dyc_site_hits_total Cache hits per site.\n\
             # TYPE dyc_site_hits_total counter\n\
             dyc_site_hits_total{site=\"0\"} 12\n\
             dyc_site_hits_total{site=\"1\"} 3\n\
             # HELP dyc_ring_events Resident events.\n\
             # TYPE dyc_ring_events gauge\n\
             dyc_ring_events 1.5\n"
        );
    }

    #[test]
    fn integral_values_render_without_fraction() {
        assert_eq!(render_value(42.0), "42");
        assert_eq!(render_value(0.25), "0.25");
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metric::counter("x_total", "h", &[("k", "a\"b".to_string())], 1.0);
        let text = render_metrics(&[m]);
        assert!(text.contains("x_total{k=\"a\\\"b\"} 1\n"));
    }
}
