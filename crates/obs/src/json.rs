//! A minimal recursive-descent JSON parser.
//!
//! The workspace is dependency-free by policy, so the trace tooling
//! (`dycstat read`/`check`, the CI validation step) parses its own
//! output with this ~150-line parser instead of pulling in serde. It
//! accepts standard JSON (RFC 8259): objects, arrays, strings with
//! escapes, numbers as `f64`, booleans, null.

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != b.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(c) = self.b.get(self.at) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.push((k, v));
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.b.get(self.at).ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.at += 4;
                            // Surrogate pairs are not produced by our
                            // exporter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", *other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = &self.b[self.at..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.b.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self
            .b
            .get(self.at)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Escape a string for embedding in JSON output (quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let a = v.get("a").unwrap().arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].num(), Some(2.0));
        assert_eq!(a[2].get("b").unwrap().str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(Json::parse(r#""é\tA""#).unwrap(), Json::Str("é\tA".into()));
        let esc = escape("a\"b\\c\nd\u{1}");
        assert_eq!(esc, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(
            Json::parse(&esc).unwrap(),
            Json::Str("a\"b\\c\nd\u{1}".into())
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
