//! A fixed-footprint log-linear latency histogram.
//!
//! The serving harness needs miss-path tail latency (p50/p95/p99) over
//! runs of 10⁶–10⁸ dispatches. The event ring ([`crate::Recorder`]) holds
//! only the newest window of a run, so percentiles computed from events
//! alone silently degrade to "the last few seconds". This histogram is
//! the complement: every sample lands in one of a fixed set of buckets —
//! recording is a handful of integer ops and **never allocates**, so the
//! runtime can fold every miss into it without perturbing the warm path,
//! and merging per-thread histograms after a run is exact.
//!
//! Buckets are log-linear (HdrHistogram-style): values below 2^[`SUB_BITS`]
//! are exact; above that, each power-of-two octave is split into
//! 2^[`SUB_BITS`] linear sub-buckets, bounding the relative quantization
//! error at 1/2^[`SUB_BITS`] (12.5%) across the full `u64` range.

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, so reported quantiles are within `1/2^SUB_BITS` (12.5%) of
/// the true value.
pub const SUB_BITS: u32 = 3;

const SUBS: usize = 1 << SUB_BITS;
/// Bucket count: the exact region (`2^SUB_BITS` buckets) plus
/// `2^SUB_BITS` buckets for each of the `64 - SUB_BITS` remaining
/// octaves. Every consumer of the histogram's buckets (the live
/// sampler's atomic mirror, `dycstat`'s reports) indexes against this
/// same constant.
pub const BUCKET_COUNT: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// The shared bucket-boundary table: `BUCKET_FLOORS[i]` is the lower
/// bound of the value range bucket `i` covers, i.e.
/// `bucket_lower_bound(i)` for every index. There is exactly one
/// bucketing scheme in the workspace — every histogram (mutable or
/// atomic) and every report quantizes against this table.
pub const BUCKET_FLOORS: [u64; BUCKET_COUNT] = {
    let mut t = [0u64; BUCKET_COUNT];
    let mut i = 0;
    while i < BUCKET_COUNT {
        t[i] = bucket_lower_bound(i);
        i += 1;
    }
    t
};

/// A log-linear histogram of `u64` samples (nanoseconds, by convention).
///
/// # Error bound
///
/// Reported percentiles are the lower bound of the bucket holding the
/// ranked sample ([`BUCKET_FLOORS`]), so a reported quantile `q`
/// satisfies `q ≤ true value < q + q/2^SUB_BITS + 1` — the relative
/// error is below 1/2^[`SUB_BITS`] (12.5%), one-sided (never above the
/// true value). Values below `2^SUB_BITS`, the maximum, and counts/sums
/// are exact; only quantiles between are quantized.
///
/// # Examples
///
/// ```
/// use dyc_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 400, 10_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 10_000);
/// // The median sample is 300; the reported value is its bucket's
/// // lower bound, within 12.5% below.
/// let p50 = h.percentile(50.0);
/// assert!((263..=300).contains(&p50), "p50 within 12.5% of 300: {p50}");
/// assert_eq!(h.percentile(99.9), 10_000); // top rank: exact max
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKET_COUNT]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// The bucket a sample lands in: values below `2^SUB_BITS` map to
/// their own bucket (exact); above that, bucket = octave × sub-bucket.
/// The inverse (to bucket resolution) is [`bucket_lower_bound`].
pub const fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
    ((octave - SUB_BITS + 1) as usize) * SUBS + sub as usize
}

/// Lower bound of the value range bucket `i` covers (its reported
/// representative value). `BUCKET_FLOORS` tabulates this for every
/// index.
pub const fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let octave = (i / SUBS - 1) as u32 + SUB_BITS;
    let sub = (i % SUBS) as u64;
    (1u64 << octave) | (sub << (octave - SUB_BITS))
}

impl LatencyHistogram {
    /// An empty histogram. One heap allocation (~4 KB), here and never
    /// again.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new([0; BUCKET_COUNT]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuild a histogram from raw parts — the bridge from the live
    /// layer's atomic bucket mirror, which shares [`BUCKET_FLOORS`].
    /// The count is recomputed from the buckets so the
    /// `count == Σ buckets` identity holds by construction even if the
    /// caller read its totals racily.
    pub(crate) fn from_parts(
        buckets: Box<[u64; BUCKET_COUNT]>,
        sum: u64,
        max: u64,
    ) -> LatencyHistogram {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Fold one sample in: two shifts, a mask, three adds. No
    /// allocation, no branches on the histogram's state.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram's samples into this one (exact — buckets
    /// are positionally identical).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The windowed delta `self − earlier`: the samples recorded between
    /// two cumulative snapshots of the same histogram. Buckets, count,
    /// and sum subtract (saturating, so racy snapshot pairs degrade to
    /// empty buckets rather than wrapping); the `max` is carried over
    /// from `self` because only the cumulative maximum is tracked —
    /// window quantiles stay exact, the window max is an upper bound.
    pub fn diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = Box::new([0u64; BUCKET_COUNT]);
        for (i, d) in buckets.iter_mut().enumerate() {
            *d = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at or below which `p` percent of samples fall, to
    /// bucket resolution (the bucket's lower bound; within 12.5% of the
    /// true value). Returns 0 for an empty histogram; `p` is clamped to
    /// `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        if rank >= self.count {
            // The highest-ranked sample is the max, which is tracked
            // exactly — skip the bucket walk and its quantization.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The max is tracked exactly; never report a quantile
                // above it.
                return BUCKET_FLOORS[i].min(self.max);
            }
        }
        self.max
    }

    /// Convenience tuple: (p50, p95, p99, max).
    pub fn quantiles(&self) -> (u64, u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of_within_resolution() {
        for v in [8u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let f = bucket_lower_bound(bucket_index(v));
            assert!(f <= v, "floor {f} above sample {v}");
            // Next bucket starts within 12.5% above the floor.
            assert!(
                v - f <= f / SUBS as u64 + 1,
                "sample {v} quantized too coarsely (floor {f})"
            );
        }
    }

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut last = 0;
        for v in (0..60).map(|s| 1u64 << s) {
            let b = bucket_index(v);
            assert!(b >= last && b < BUCKET_COUNT);
            last = b;
        }
        assert!(bucket_index(u64::MAX) < BUCKET_COUNT);
    }

    #[test]
    fn shared_floor_table_matches_the_functions_everywhere() {
        let mut prev = None;
        for (i, &floor) in BUCKET_FLOORS.iter().enumerate() {
            assert_eq!(floor, bucket_lower_bound(i), "table diverges at {i}");
            // The table is its own inverse through bucket_index: every
            // floor is the smallest value landing in its bucket.
            assert_eq!(bucket_index(floor), i, "floor {floor} not in bucket {i}");
            if let Some(p) = prev {
                assert!(floor > p, "floors not strictly increasing at {i}");
            }
            prev = Some(floor);
        }
        assert_eq!(BUCKET_FLOORS.len(), BUCKET_COUNT);
    }

    #[test]
    fn diff_recovers_a_window_between_snapshots() {
        let mut cum = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            cum.record(v);
        }
        let earlier = cum.clone();
        for v in [40u64, 50_000] {
            cum.record(v);
        }
        let w = cum.diff(&earlier);
        assert_eq!(w.count(), 2);
        assert_eq!(w.sum(), 40 + 50_000);
        // Window max is the cumulative max (upper bound, documented).
        assert_eq!(w.max(), 50_000);
        assert!(w.percentile(99.0) >= 40_000, "window p99 lost the spike");
        // Degenerate (older-than) pair saturates to empty, not wraps.
        let empty = earlier.diff(&cum);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn from_parts_recomputes_count_from_buckets() {
        let mut buckets = Box::new([0u64; BUCKET_COUNT]);
        buckets[bucket_index(100)] = 3;
        buckets[bucket_index(9_999)] = 1;
        let h = LatencyHistogram::from_parts(buckets, 10_299, 9_999);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 9_999);
        assert_eq!(h.percentile(100.0), 9_999);
    }

    #[test]
    fn percentiles_order_and_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let (p50, p95, p99, max) = h.quantiles();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert_eq!(max, 100_000);
        // p50 of uniform 100..=100_000 is ~50_000; allow quantization.
        assert!((40_000..=56_250).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 86_000, "p99 = {p99}");
        assert_eq!(h.percentile(100.0), max);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.quantiles(), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }
}
