//! A fixed-footprint log-linear latency histogram.
//!
//! The serving harness needs miss-path tail latency (p50/p95/p99) over
//! runs of 10⁶–10⁸ dispatches. The event ring ([`crate::Recorder`]) holds
//! only the newest window of a run, so percentiles computed from events
//! alone silently degrade to "the last few seconds". This histogram is
//! the complement: every sample lands in one of a fixed set of buckets —
//! recording is a handful of integer ops and **never allocates**, so the
//! runtime can fold every miss into it without perturbing the warm path,
//! and merging per-thread histograms after a run is exact.
//!
//! Buckets are log-linear (HdrHistogram-style): values below 2^[`SUB_BITS`]
//! are exact; above that, each power-of-two octave is split into
//! 2^[`SUB_BITS`] linear sub-buckets, bounding the relative quantization
//! error at 1/2^[`SUB_BITS`] (12.5%) across the full `u64` range.

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, so reported quantiles are within `1/2^SUB_BITS` (12.5%) of
/// the true value.
pub const SUB_BITS: u32 = 3;

const SUBS: usize = 1 << SUB_BITS;
/// Bucket count: the exact region (`SUBS` buckets) plus `SUBS` buckets
/// for each of the `64 - SUB_BITS` remaining octaves.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log-linear histogram of `u64` samples (nanoseconds, by convention).
///
/// # Examples
///
/// ```
/// use dyc_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 400, 10_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 10_000);
/// // The median sample is 300; the reported value is its bucket's
/// // lower bound, within 12.5% below.
/// let p50 = h.percentile(50.0);
/// assert!((263..=300).contains(&p50), "p50 within 12.5% of 300: {p50}");
/// assert_eq!(h.percentile(99.9), 10_000); // top rank: exact max
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
    ((octave - SUB_BITS + 1) as usize) * SUBS + sub as usize
}

/// Lower bound of the value range bucket `i` covers (its reported
/// representative value).
fn bucket_floor(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let octave = (i / SUBS - 1) as u32 + SUB_BITS;
    let sub = (i % SUBS) as u64;
    (1u64 << octave) | (sub << (octave - SUB_BITS))
}

impl LatencyHistogram {
    /// An empty histogram. One heap allocation (~4 KB), here and never
    /// again.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Fold one sample in: two shifts, a mask, three adds. No
    /// allocation, no branches on the histogram's state.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram's samples into this one (exact — buckets
    /// are positionally identical).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at or below which `p` percent of samples fall, to
    /// bucket resolution (the bucket's lower bound; within 12.5% of the
    /// true value). Returns 0 for an empty histogram; `p` is clamped to
    /// `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        if rank >= self.count {
            // The highest-ranked sample is the max, which is tracked
            // exactly — skip the bucket walk and its quantization.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The max is tracked exactly; never report a quantile
                // above it.
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience tuple: (p50, p95, p99, max).
    pub fn quantiles(&self) -> (u64, u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of_within_resolution() {
        for v in [8u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let f = bucket_floor(bucket_of(v));
            assert!(f <= v, "floor {f} above sample {v}");
            // Next bucket starts within 12.5% above the floor.
            assert!(
                v - f <= f / SUBS as u64 + 1,
                "sample {v} quantized too coarsely (floor {f})"
            );
        }
    }

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut last = 0;
        for v in (0..60).map(|s| 1u64 << s) {
            let b = bucket_of(v);
            assert!(b >= last && b < BUCKETS);
            last = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_order_and_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let (p50, p95, p99, max) = h.quantiles();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert_eq!(max, 100_000);
        // p50 of uniform 100..=100_000 is ~50_000; allow quantization.
        assert!((40_000..=56_250).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 86_000, "p99 = {p99}");
        assert_eq!(h.percentile(100.0), max);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.quantiles(), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }
}
