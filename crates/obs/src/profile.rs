//! The aggregation pass: events → per-site profiles, the threaded
//! contention summary, and the miss-path latency histogram.

use crate::event::{Event, EventKind};
use crate::hist::LatencyHistogram;

/// Everything a recorded run says about one dispatch site — the row of
/// `dycstat`'s paper-style table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteProfile {
    /// The site id.
    pub site: u32,
    /// Specializations started here ([`EventKind::GeExecBegin`]).
    pub specializations: u64,
    /// Distinct cache-key hashes seen across misses — the cached
    /// variants the site accumulated (eviction can later shrink the
    /// resident set below this).
    pub variants: u64,
    /// Cache hits, all policies.
    pub hits: u64,
    /// Dispatch misses.
    pub misses: u64,
    /// Hits served unchecked (`cache_one_unchecked`).
    pub unchecked: u64,
    /// Hits served by array indexing (§3.1).
    pub indexed: u64,
    /// Hits served by the hashed `cache_all` table.
    pub hashed: u64,
    /// Total probes across hashed lookups (hits and misses).
    pub probes: u64,
    /// Cycles charged to dispatching at this site.
    pub dispatch_cycles: u64,
    /// Dynamic-compilation cycles charged by this site's
    /// specializations ([`EventKind::GeExecEnd`] payloads).
    pub dyncomp_cycles: u64,
    /// VM instructions those specializations generated.
    pub instrs_generated: u64,
    /// Instructions contributed by copy-and-patch templates.
    pub template_instrs: u64,
    /// Template holes patched.
    pub holes_patched: u64,
    /// Bounded-cache evictions at this site.
    pub evictions: u64,
    /// Explicit invalidations of this site.
    pub invalidations: u64,
    /// Internal promotion sites created while specializing this site.
    pub promotions: u64,
    /// Specializations restored from a snapshot bundle at warm-start.
    /// Each restored variant serves hits without this run ever paying
    /// its specialization cost, so break-even accounting must treat the
    /// site's `dyncomp_cycles` as covering only the *non*-restored
    /// variants.
    pub warm_loads: u64,
    /// Single-flight waits at this site (concurrent runs).
    pub waits: u64,
    /// Wall nanoseconds spent in those waits.
    pub wait_ns: u64,
    /// Single-flight generic-continuation fallbacks (concurrent runs).
    pub fallbacks: u64,
    /// Specializations additionally installed as native x86-64 machine
    /// code at this site.
    pub native_installs: u64,
    /// Total machine-code bytes those installs published.
    pub native_bytes: u64,
    /// Specializations that stayed on the VM backend despite the native
    /// config (lowering declined, or no backend on this platform).
    pub native_fallbacks: u64,
    /// Adaptive-policy deferrals: below-threshold misses that ran the
    /// generic continuation instead of specializing.
    pub policy_defers: u64,
    /// Adaptive-policy promotions: (site, key) pairs that crossed the
    /// break-even threshold and specialized after earlier deferrals.
    pub policy_promotes: u64,
    /// Adaptive-policy throttles: internal-site misses routed to the
    /// generic continuation because the site's specializations never
    /// got re-dispatched.
    pub policy_throttled: u64,
}

impl SiteProfile {
    /// Dispatches through the site (hits + misses).
    pub fn uses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean probes per hashed lookup (0 when the site never hashed).
    pub fn probe_rate(&self) -> f64 {
        let lookups = self.hashed + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.probes as f64 / lookups as f64
        }
    }

    /// The §4.2 break-even estimate: how many uses of the region pay
    /// off this site's dynamic-compilation investment, given the cycles
    /// each specialized use saves over the static build. `None` when
    /// the savings are non-positive (specialization never pays off) —
    /// a *finite* break-even exists exactly when `saved_per_use > 0`.
    pub fn break_even(&self, saved_per_use: f64) -> Option<f64> {
        if saved_per_use > 0.0 {
            Some(self.dyncomp_cycles as f64 / saved_per_use)
        } else {
            None
        }
    }
}

/// Aggregate a merged event stream into per-site profiles, ordered by
/// site id. Sites appear if any event mentions them.
pub fn site_profiles(events: &[Event]) -> Vec<SiteProfile> {
    fn at(site: u32, out: &mut Vec<SiteProfile>, variant_keys: &mut Vec<Vec<u64>>) -> usize {
        match out.binary_search_by_key(&site, |p| p.site) {
            Ok(i) => i,
            Err(i) => {
                out.insert(
                    i,
                    SiteProfile {
                        site,
                        ..SiteProfile::default()
                    },
                );
                variant_keys.insert(i, Vec::new());
                i
            }
        }
    }
    let mut out: Vec<SiteProfile> = Vec::new();
    let mut variant_keys: Vec<Vec<u64>> = Vec::new();
    for e in events {
        let i = at(e.site, &mut out, &mut variant_keys);
        let p = &mut out[i];
        match e.kind {
            EventKind::DispatchHit => {
                p.hits += 1;
                p.hashed += 1;
                p.probes += e.b;
                p.dispatch_cycles += e.a;
            }
            EventKind::DispatchMiss => {
                p.misses += 1;
                p.probes += e.b;
                p.dispatch_cycles += e.a;
                let keys = &mut variant_keys[i];
                if let Err(j) = keys.binary_search(&e.key) {
                    keys.insert(j, e.key);
                    p.variants += 1;
                }
            }
            EventKind::DispatchUnchecked => {
                p.hits += 1;
                p.unchecked += 1;
                p.dispatch_cycles += e.a;
            }
            EventKind::DispatchIndexed => {
                p.hits += 1;
                p.indexed += 1;
                p.dispatch_cycles += e.a;
            }
            EventKind::FlightWait => {
                p.waits += 1;
                p.wait_ns += e.a;
            }
            EventKind::FlightFallback => p.fallbacks += 1,
            EventKind::GeExecBegin => p.specializations += 1,
            EventKind::GeExecEnd => {
                p.dyncomp_cycles += e.a;
                p.instrs_generated += e.b;
            }
            EventKind::TemplateCopy => p.template_instrs += e.a,
            EventKind::HolePatch => p.holes_patched += e.a,
            EventKind::CacheEvict => p.evictions += 1,
            EventKind::CacheInvalidate => p.invalidations += 1,
            EventKind::Promotion => p.promotions += 1,
            EventKind::CacheWarmLoad => p.warm_loads += 1,
            EventKind::NativeInstall => {
                p.native_installs += 1;
                p.native_bytes += e.a;
            }
            EventKind::NativeFallback => p.native_fallbacks += 1,
            EventKind::PolicyDefer => p.policy_defers += 1,
            EventKind::PolicyPromote => p.policy_promotes += 1,
            EventKind::PolicyThrottle => p.policy_throttled += 1,
        }
    }
    out
}

/// One thread's share of a concurrent run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadLoad {
    /// The thread id.
    pub thread: u32,
    /// Events this thread recorded.
    pub events: u64,
    /// Dispatch misses it took.
    pub misses: u64,
    /// Single-flight waits it suffered.
    pub waits: u64,
    /// Wall nanoseconds spent waiting.
    pub wait_ns: u64,
    /// Generic-continuation fallbacks it took.
    pub fallbacks: u64,
}

/// The threaded contention summary: per-thread loads, ordered by
/// thread id.
pub fn contention(events: &[Event]) -> Vec<ThreadLoad> {
    let mut out: Vec<ThreadLoad> = Vec::new();
    for e in events {
        let i = match out.binary_search_by_key(&e.thread, |t| t.thread) {
            Ok(i) => i,
            Err(i) => {
                out.insert(
                    i,
                    ThreadLoad {
                        thread: e.thread,
                        ..ThreadLoad::default()
                    },
                );
                i
            }
        };
        let t = &mut out[i];
        t.events += 1;
        match e.kind {
            EventKind::DispatchMiss => t.misses += 1,
            EventKind::FlightWait => {
                t.waits += 1;
                t.wait_ns += e.a;
            }
            EventKind::FlightFallback => t.fallbacks += 1,
            _ => {}
        }
    }
    out
}

/// Miss-path latency spans recoverable from an event stream: each
/// GE-executor run ([`EventKind::GeExecBegin`]→[`EventKind::GeExecEnd`]
/// wall time, paired per thread, nesting-aware for internal promotion)
/// and each single-flight wait ([`EventKind::FlightWait`]'s wall-ns
/// payload). Together these are the two ways a dispatch miss stalls a
/// serving thread.
///
/// Note the ring-buffer caveat: a [`crate::Recorder`] keeps only the
/// newest [`crate::DEFAULT_CAPACITY`] events, so on long runs this
/// histogram covers the trailing window. The serving harness instead
/// uses the runtime's always-on per-thread histogram for whole-run
/// percentiles; this aggregation is `dycstat`'s view over a recorded
/// trace.
pub fn miss_latency(events: &[Event]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    // Per-thread stacks of open GeExecBegin timestamps (promotion can
    // nest a specialization inside a specialization on one thread).
    let mut open: Vec<(u32, Vec<u64>)> = Vec::new();
    let stack = |open: &mut Vec<(u32, Vec<u64>)>, thread: u32| -> usize {
        match open.binary_search_by_key(&thread, |(t, _)| *t) {
            Ok(i) => i,
            Err(i) => {
                open.insert(i, (thread, Vec::new()));
                i
            }
        }
    };
    for e in events {
        match e.kind {
            EventKind::GeExecBegin => {
                let i = stack(&mut open, e.thread);
                open[i].1.push(e.t_ns);
            }
            EventKind::GeExecEnd => {
                let i = stack(&mut open, e.thread);
                if let Some(t0) = open[i].1.pop() {
                    h.record(e.t_ns.saturating_sub(t0));
                }
            }
            EventKind::FlightWait => h.record(e.a),
            _ => {}
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, site: u32, key: u64, a: u64, b: u64) -> Event {
        Event {
            kind,
            site,
            key,
            a,
            b,
            ..Event::default()
        }
    }

    #[test]
    fn profiles_aggregate_per_site() {
        let events = vec![
            ev(EventKind::DispatchMiss, 0, 11, 90, 1),
            ev(EventKind::GeExecBegin, 0, 11, 0, 0),
            ev(EventKind::TemplateCopy, 0, 11, 5, 0),
            ev(EventKind::HolePatch, 0, 11, 3, 0),
            ev(EventKind::GeExecEnd, 0, 11, 700, 12),
            ev(EventKind::DispatchHit, 0, 11, 90, 1),
            ev(EventKind::DispatchMiss, 0, 22, 98, 2),
            ev(EventKind::GeExecBegin, 0, 22, 0, 0),
            ev(EventKind::GeExecEnd, 0, 22, 300, 6),
            ev(EventKind::DispatchMiss, 1, 11, 10, 0),
            ev(EventKind::DispatchUnchecked, 1, 11, 10, 0),
        ];
        let ps = site_profiles(&events);
        assert_eq!(ps.len(), 2);
        let p0 = &ps[0];
        assert_eq!(p0.site, 0);
        assert_eq!(p0.specializations, 2);
        assert_eq!(p0.variants, 2);
        assert_eq!((p0.hits, p0.misses), (1, 2));
        assert_eq!(p0.dyncomp_cycles, 1000);
        assert_eq!(p0.instrs_generated, 18);
        assert_eq!(p0.template_instrs, 5);
        assert_eq!(p0.holes_patched, 3);
        assert_eq!(p0.dispatch_cycles, 90 + 90 + 98);
        assert_eq!(p0.uses(), 3);
        // 4 probes over 3 hashed lookups (1 hashed hit + 2 misses).
        assert!((p0.probe_rate() - 4.0 / 3.0).abs() < 1e-9);
        let p1 = &ps[1];
        assert_eq!(p1.site, 1);
        assert_eq!((p1.unchecked, p1.misses), (1, 1));
        // A repeated miss key is one variant.
        assert_eq!(p1.variants, 1);
    }

    #[test]
    fn break_even_is_finite_iff_savings_positive() {
        let p = SiteProfile {
            dyncomp_cycles: 1000,
            ..SiteProfile::default()
        };
        assert_eq!(p.break_even(50.0), Some(20.0));
        assert_eq!(p.break_even(0.0), None);
        assert_eq!(p.break_even(-3.0), None);
    }

    #[test]
    fn miss_latency_pairs_spans_per_thread_and_counts_waits() {
        let span = |kind, thread, t_ns| Event {
            kind,
            thread,
            t_ns,
            ..Event::default()
        };
        let events = vec![
            // Thread 0: a 1000 ns specialization with a nested (promoted)
            // 200 ns specialization inside it.
            span(EventKind::GeExecBegin, 0, 100),
            span(EventKind::GeExecBegin, 0, 500),
            span(EventKind::GeExecEnd, 0, 700),
            span(EventKind::GeExecEnd, 0, 1100),
            // Thread 1: a 300 ns specialization, interleaved in time.
            span(EventKind::GeExecBegin, 1, 400),
            span(EventKind::GeExecEnd, 1, 700),
            // Thread 2: a single-flight wait of 5000 ns.
            Event {
                kind: EventKind::FlightWait,
                thread: 2,
                a: 5000,
                ..Event::default()
            },
            // A dangling End (its Begin fell off the ring) is dropped.
            span(EventKind::GeExecEnd, 3, 900),
        ];
        let h = miss_latency(&events);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.sum(), 1000 + 200 + 300 + 5000);
    }

    #[test]
    fn contention_groups_by_thread() {
        let mut e1 = ev(EventKind::FlightWait, 0, 0, 500, 0);
        e1.thread = 1;
        let mut e2 = ev(EventKind::DispatchMiss, 0, 0, 90, 1);
        e2.thread = 0;
        let mut e3 = ev(EventKind::FlightFallback, 0, 0, 0, 0);
        e3.thread = 1;
        let loads = contention(&[e1, e2, e3]);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].thread, 0);
        assert_eq!(loads[0].misses, 1);
        assert_eq!(loads[1].thread, 1);
        assert_eq!(
            (loads[1].waits, loads[1].wait_ns, loads[1].fallbacks),
            (1, 500, 1)
        );
    }
}
