//! The typed events the run-time system records.

/// What happened. Every variant maps to one [`Category`]; the payload
/// words `a`/`b` on [`Event`] are kind-specific (documented per
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventKind {
    /// Hashed (`cache_all`/`cache_all(k)`, or indexed-overflow) dispatch
    /// that hit cached code. `a` = dispatch cycles charged, `b` =
    /// probes.
    #[default]
    DispatchHit,
    /// Dispatch that missed and triggered a specialization (or, in the
    /// concurrent runtime, entered the single-flight miss path). `a` =
    /// dispatch cycles charged, `b` = probes (0 for non-hashed
    /// policies).
    DispatchMiss,
    /// `cache_one_unchecked` dispatch that hit. `a` = dispatch cycles.
    DispatchUnchecked,
    /// Array-indexed (§3.1) dispatch that hit. `a` = dispatch cycles.
    DispatchIndexed,
    /// Concurrent only: this thread blocked on another thread's
    /// in-flight specialization of the same (site, key). `a` = wall
    /// nanoseconds spent waiting.
    FlightWait,
    /// Concurrent only: this thread, racing an in-flight
    /// specialization, ran the generic continuation instead of waiting.
    FlightFallback,
    /// A specialization (GE execution) started at this site.
    GeExecBegin,
    /// The specialization finished. `a` = dynamic-compilation cycles it
    /// charged, `b` = VM instructions generated.
    GeExecEnd,
    /// Copy-and-patch templates contributed instructions to a sealed
    /// unit (post dead-assignment elimination, matching
    /// `RtStats::template_instrs`). `a` = instructions copied.
    TemplateCopy,
    /// Template holes were patched in a sealed unit (matching
    /// `RtStats::holes_patched`). `a` = holes patched.
    HolePatch,
    /// A bounded `cache_all(k)` site evicted a resident specialization.
    /// The event's `key` is the hash of the *evicted* key; `a` = the
    /// victim's clock slot.
    CacheEvict,
    /// All cached code for the site was explicitly invalidated.
    CacheInvalidate,
    /// An internal dynamic-to-static promotion created a new dispatch
    /// site mid-specialization. The event's `site` is the parent
    /// (specializing) site; `a` = the new site's id.
    Promotion,
    /// A cached specialization was restored from a snapshot bundle at
    /// warm-start (no GE execution ran). `a` = instructions in the
    /// restored code.
    CacheWarmLoad,
    /// A specialization was additionally lowered to native x86-64
    /// machine code and installed in the executable arena. `a` = bytes
    /// of machine code published.
    NativeInstall,
    /// A specialization stayed on the VM backend despite the native
    /// config — the lowering declined or the platform has no native
    /// backend.
    NativeFallback,
    /// Adaptive policy deferred a below-threshold miss to the generic
    /// continuation instead of specializing. `a` = the (site, key)
    /// dispatch count so far.
    PolicyDefer,
    /// Adaptive policy promoted a (site, key) past its break-even
    /// threshold: this miss specializes after earlier deferrals. `a` =
    /// the dispatch count at promotion.
    PolicyPromote,
    /// Adaptive policy throttled an internal-promotion site whose
    /// specializations never get re-dispatched; the generic
    /// continuation ran instead. `a` = the (site, key) dispatch count.
    PolicyThrottle,
}

/// Event categories — the `cat` field of the Chrome trace, and the
/// granularity at which CI's `dycstat check` asserts coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Dispatch hits and misses, all policies.
    Dispatch,
    /// Single-flight waits and fallbacks.
    Flight,
    /// GE-executor (specialization) begin/end spans.
    Spec,
    /// Template copies and hole patches.
    Template,
    /// Cache evictions and invalidations.
    Cache,
    /// Internal dynamic-to-static promotions.
    Promote,
    /// Adaptive-policy decisions: defers, promotions past break-even,
    /// and internal-site throttles.
    Policy,
}

impl Category {
    /// The category's stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Dispatch => "dispatch",
            Category::Flight => "flight",
            Category::Spec => "spec",
            Category::Template => "template",
            Category::Cache => "cache",
            Category::Promote => "promote",
            Category::Policy => "policy",
        }
    }
}

impl EventKind {
    /// The kind's stable kebab-case name (the Chrome trace's `name`
    /// field, except that [`EventKind::GeExecBegin`]/[`EventKind::GeExecEnd`]
    /// share the name `ge-exec` so Chrome pairs them into a span).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DispatchHit => "dispatch-hit",
            EventKind::DispatchMiss => "dispatch-miss",
            EventKind::DispatchUnchecked => "dispatch-unchecked",
            EventKind::DispatchIndexed => "dispatch-indexed",
            EventKind::FlightWait => "flight-wait",
            EventKind::FlightFallback => "flight-fallback",
            EventKind::GeExecBegin | EventKind::GeExecEnd => "ge-exec",
            EventKind::TemplateCopy => "template-copy",
            EventKind::HolePatch => "hole-patch",
            EventKind::CacheEvict => "cache-evict",
            EventKind::CacheInvalidate => "cache-invalidate",
            EventKind::Promotion => "promotion",
            EventKind::CacheWarmLoad => "cache-warm-load",
            EventKind::NativeInstall => "native-install",
            EventKind::NativeFallback => "native-fallback",
            EventKind::PolicyDefer => "policy-defer",
            EventKind::PolicyPromote => "policy-promote",
            EventKind::PolicyThrottle => "policy-throttle",
        }
    }

    /// The kind's [`Category`].
    pub fn category(self) -> Category {
        match self {
            EventKind::DispatchHit
            | EventKind::DispatchMiss
            | EventKind::DispatchUnchecked
            | EventKind::DispatchIndexed => Category::Dispatch,
            EventKind::FlightWait | EventKind::FlightFallback => Category::Flight,
            EventKind::GeExecBegin
            | EventKind::GeExecEnd
            | EventKind::NativeInstall
            | EventKind::NativeFallback => Category::Spec,
            EventKind::TemplateCopy | EventKind::HolePatch => Category::Template,
            EventKind::CacheEvict | EventKind::CacheInvalidate | EventKind::CacheWarmLoad => {
                Category::Cache
            }
            EventKind::Promotion => Category::Promote,
            EventKind::PolicyDefer | EventKind::PolicyPromote | EventKind::PolicyThrottle => {
                Category::Policy
            }
        }
    }
}

/// One recorded event: 72 bytes, `Copy`, written into the ring buffer
/// without any allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The dispatch site (for [`EventKind::Promotion`], the parent
    /// site).
    pub site: u32,
    /// Recording thread (0 for the single-threaded runtime; assigned
    /// per thread handle in the concurrent one).
    pub thread: u32,
    /// FNV-1a hash of the cache-key words ([`crate::key_hash`]).
    pub key: u64,
    /// Strictly increasing per-recorder sequence number.
    pub seq: u64,
    /// Wall nanoseconds since the process trace epoch
    /// ([`crate::now_ns`]).
    pub t_ns: u64,
    /// Model-cycle stamp: the recording VM's cumulative cycle count at
    /// record time (0 where no VM is in reach, e.g. explicit
    /// invalidation from outside a run).
    pub cycle: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

/// Every kind, in declaration order (test and exporter support).
pub const ALL_KINDS: [EventKind; 19] = [
    EventKind::DispatchHit,
    EventKind::DispatchMiss,
    EventKind::DispatchUnchecked,
    EventKind::DispatchIndexed,
    EventKind::FlightWait,
    EventKind::FlightFallback,
    EventKind::GeExecBegin,
    EventKind::GeExecEnd,
    EventKind::TemplateCopy,
    EventKind::HolePatch,
    EventKind::CacheEvict,
    EventKind::CacheInvalidate,
    EventKind::Promotion,
    EventKind::CacheWarmLoad,
    EventKind::NativeInstall,
    EventKind::NativeFallback,
    EventKind::PolicyDefer,
    EventKind::PolicyPromote,
    EventKind::PolicyThrottle,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_except_the_span_pair() {
        let mut names: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        // 19 kinds, but begin/end share "ge-exec".
        assert_eq!(names.len(), ALL_KINDS.len() - 1);
    }

    #[test]
    fn every_category_is_covered() {
        for c in [
            Category::Dispatch,
            Category::Flight,
            Category::Spec,
            Category::Template,
            Category::Cache,
            Category::Promote,
            Category::Policy,
        ] {
            assert!(
                ALL_KINDS.iter().any(|k| k.category() == c),
                "no kind maps to {:?}",
                c.name()
            );
        }
    }
}
