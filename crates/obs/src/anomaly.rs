//! The anomaly watchdog: rules over sampler windows with hysteresis.
//!
//! The watchdog looks at each completed [`Window`]
//! and decides whether the run has entered a pathological regime. Four
//! rules cover the failure modes the serving campaign (DESIGN.md §15)
//! actually hit:
//!
//! * **Eviction storm** — a bounded `cache_all(k)` whose bound is far
//!   below the live key set thrashes: evictions per window approach
//!   dispatches per window.
//! * **Flight convoy** — threads pile up behind single-flight
//!   specializations (the stampede pathology): waits dominate
//!   dispatches.
//! * **Break-even regression** — a site's mean specialization cost
//!   drifts far above its first-observed baseline, so the §4.2
//!   break-even point recedes mid-run.
//! * **Specialization-latency spike** — the windowed miss-path p99
//!   jumps an order of magnitude over the recent median.
//!
//! Thresholds are *ratios* (share of window dispatches, factor over
//! baseline), not absolute rates, so the rules behave identically on a
//! fast release box and a slow CI runner. Each rule is a latch with
//! hysteresis: it fires after `trigger_after` consecutive offending
//! windows, then stays latched (no re-fire) until `clear_after`
//! consecutive clean windows re-arm it — a sustained storm produces
//! exactly one incident, not one per window.

use crate::sampler::Window;
use crate::LiveMetric;
use std::collections::HashMap;
use std::collections::VecDeque;

/// The anomaly classes the watchdog detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Bounded-cache thrash: evictions ≈ dispatches in a window.
    EvictionStorm,
    /// Single-flight pile-up: waits dominate a window's dispatches.
    FlightConvoy,
    /// A site's mean specialization cost drifted far above its
    /// first-observed baseline.
    BreakEvenRegression,
    /// Windowed miss-path p99 spiked over the recent median.
    SpecLatencySpike,
}

/// Every anomaly kind, in declaration order.
pub const ALL_ANOMALIES: [AnomalyKind; 4] = [
    AnomalyKind::EvictionStorm,
    AnomalyKind::FlightConvoy,
    AnomalyKind::BreakEvenRegression,
    AnomalyKind::SpecLatencySpike,
];

impl AnomalyKind {
    /// The kind's stable kebab-case name (incident-file stem).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::EvictionStorm => "eviction-storm",
            AnomalyKind::FlightConvoy => "flight-convoy",
            AnomalyKind::BreakEvenRegression => "break-even-regression",
            AnomalyKind::SpecLatencySpike => "spec-latency-spike",
        }
    }
}

/// Watchdog thresholds. All ratio-based (wall-clock independent); a
/// rule can be disabled outright by setting its factor/share to
/// `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Eviction storm: evictions ≥ this share of window dispatches…
    pub evict_share: f64,
    /// …and at least this many evictions (absolute floor, so idle
    /// windows can't trigger on noise).
    pub evict_min: u64,
    /// Flight convoy: waits ≥ this share of window dispatches…
    pub convoy_share: f64,
    /// …and at least this many waits.
    pub convoy_min: u64,
    /// Break-even regression: a site's cumulative mean spec cycles ≥
    /// this factor × its first-observed baseline.
    pub break_even_factor: f64,
    /// A site's baseline is recorded (and the rule evaluated) only once
    /// it has at least this many specializations.
    pub break_even_min_specs: u64,
    /// Latency spike: windowed miss p99 ≥ this factor × the median p99
    /// of recent windows.
    pub spike_factor: f64,
    /// The spike rule only looks at windows with at least this many
    /// misses (thin windows have meaningless p99s).
    pub spike_min_misses: u64,
    /// Prior p99 observations needed before the spike rule arms.
    pub spike_history: usize,
    /// Consecutive offending windows before a rule fires.
    pub trigger_after: usize,
    /// Consecutive clean windows before a latched rule re-arms.
    pub clear_after: usize,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            evict_share: 0.25,
            evict_min: 64,
            convoy_share: 0.5,
            convoy_min: 64,
            break_even_factor: 4.0,
            break_even_min_specs: 8,
            spike_factor: 16.0,
            spike_min_misses: 256,
            spike_history: 4,
            trigger_after: 2,
            clear_after: 2,
        }
    }
}

/// One fired anomaly: what, when, and how far over threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Which rule fired.
    pub kind: AnomalyKind,
    /// Index of the window that completed the trigger streak.
    pub window: u64,
    /// End timestamp of that window ([`crate::now_ns`] domain).
    pub t_ns: u64,
    /// The measured value (share, factor, or p99 ratio).
    pub value: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
    /// Human-readable one-liner for the incident record.
    pub detail: String,
}

/// Per-rule latch state.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    /// Consecutive offending windows seen while armed.
    over: usize,
    /// Consecutive clean windows seen while latched.
    clean: usize,
    /// True after firing, until `clear_after` clean windows.
    latched: bool,
}

impl RuleState {
    /// Advance the latch with one window's verdict; returns true when
    /// the rule fires (transition into latched).
    fn step(&mut self, offending: bool, cfg: &WatchdogConfig) -> bool {
        if self.latched {
            if offending {
                self.clean = 0;
            } else {
                self.clean += 1;
                if self.clean >= cfg.clear_after {
                    *self = RuleState::default();
                }
            }
            return false;
        }
        if offending {
            self.over += 1;
            if self.over >= cfg.trigger_after {
                self.latched = true;
                self.clean = 0;
                return true;
            }
        } else {
            self.over = 0;
        }
        false
    }
}

/// The watchdog: feed it each completed window with [`Watchdog::observe`];
/// it returns the anomalies that fired on that window.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    states: [RuleState; ALL_ANOMALIES.len()],
    /// First-observed mean spec cycles per site (the drift baseline).
    site_base: HashMap<u32, f64>,
    /// Recent windowed miss p99s (spike baseline; bounded).
    p99s: VecDeque<u64>,
}

impl Watchdog {
    /// A watchdog with the given thresholds, fully re-armed.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            states: [RuleState::default(); ALL_ANOMALIES.len()],
            site_base: HashMap::new(),
            p99s: VecDeque::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Judge one completed window. Returns the anomalies fired by this
    /// window (empty for clean or already-latched regimes).
    pub fn observe(&mut self, w: &Window) -> Vec<Anomaly> {
        let cfg = self.cfg;
        let dispatches = w.get(LiveMetric::Dispatches);
        let mut fired = Vec::new();
        let mut judge = |states: &mut [RuleState],
                         kind: AnomalyKind,
                         over: bool,
                         value: f64,
                         threshold: f64,
                         detail: String| {
            let idx = ALL_ANOMALIES.iter().position(|&k| k == kind).unwrap();
            if states[idx].step(over, &cfg) {
                fired.push(Anomaly {
                    kind,
                    window: w.index,
                    t_ns: w.t1_ns,
                    value,
                    threshold,
                    detail,
                });
            }
        };

        // Eviction storm.
        let evictions = w.get(LiveMetric::Evictions);
        let evict_ratio = if dispatches == 0 {
            0.0
        } else {
            evictions as f64 / dispatches as f64
        };
        judge(
            &mut self.states,
            AnomalyKind::EvictionStorm,
            evictions >= cfg.evict_min && evict_ratio >= cfg.evict_share,
            evict_ratio,
            cfg.evict_share,
            format!("{evictions} evictions over {dispatches} dispatches in one window"),
        );

        // Flight convoy.
        let waits = w.get(LiveMetric::FlightWaits);
        let wait_ratio = if dispatches == 0 {
            0.0
        } else {
            waits as f64 / dispatches as f64
        };
        judge(
            &mut self.states,
            AnomalyKind::FlightConvoy,
            waits >= cfg.convoy_min && wait_ratio >= cfg.convoy_share,
            wait_ratio,
            cfg.convoy_share,
            format!("{waits} single-flight waits over {dispatches} dispatches in one window"),
        );

        // Break-even regression: worst drift factor across sites with
        // an established baseline.
        let mut worst: Option<(u32, f64)> = None;
        for s in &w.sites {
            if s.cum_specs < cfg.break_even_min_specs {
                continue;
            }
            let avg = s.cum_avg_cycles;
            let base = *self.site_base.entry(s.site).or_insert(avg);
            if base > 0.0 {
                let factor = avg / base;
                if worst.is_none_or(|(_, f)| factor > f) {
                    worst = Some((s.site, factor));
                }
            }
        }
        let (site, factor) = worst.unwrap_or((0, 0.0));
        judge(
            &mut self.states,
            AnomalyKind::BreakEvenRegression,
            factor >= cfg.break_even_factor,
            factor,
            cfg.break_even_factor,
            format!("site {site} mean spec cycles drifted {factor:.2}x over its baseline"),
        );

        // Specialization-latency spike: window p99 vs recent median.
        let misses = w.get(LiveMetric::Misses);
        let p99 = w.miss_ns.percentile(99.0);
        let thick = misses >= cfg.spike_min_misses;
        let mut spike = false;
        let mut ratio = 0.0;
        if thick && self.p99s.len() >= cfg.spike_history {
            let mut hist: Vec<u64> = self.p99s.iter().copied().collect();
            hist.sort_unstable();
            let median = hist[hist.len() / 2];
            if median > 0 {
                ratio = p99 as f64 / median as f64;
                spike = ratio >= cfg.spike_factor;
            }
        }
        judge(
            &mut self.states,
            AnomalyKind::SpecLatencySpike,
            spike,
            ratio,
            cfg.spike_factor,
            format!("windowed miss p99 {p99} ns is {ratio:.1}x the recent median"),
        );
        if thick {
            self.p99s.push_back(p99);
            if self.p99s.len() > 64 {
                self.p99s.pop_front();
            }
        }

        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::live::N_LIVE_METRICS;
    use crate::sampler::SiteWindow;

    /// A synthetic window: only the fields a rule reads are populated.
    fn window(index: u64, fill: impl Fn(&mut Window)) -> Window {
        let mut w = Window {
            index,
            t0_ns: index * 1_000,
            t1_ns: (index + 1) * 1_000,
            counters: [0; N_LIVE_METRICS],
            miss_ns: LatencyHistogram::new(),
            sites: Vec::new(),
        };
        fill(&mut w);
        w
    }

    fn set(w: &mut Window, m: LiveMetric, v: u64) {
        w.counters[m as usize] = v;
    }

    #[test]
    fn eviction_storm_fires_once_and_rearms_after_clean_windows() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 2,
            clear_after: 2,
            ..WatchdogConfig::default()
        });
        let stormy = |i| {
            window(i, |w| {
                set(w, LiveMetric::Dispatches, 1_000);
                set(w, LiveMetric::Evictions, 600);
            })
        };
        let calm = |i| {
            window(i, |w| {
                set(w, LiveMetric::Dispatches, 1_000);
                set(w, LiveMetric::Evictions, 1);
            })
        };
        // One offending window: not yet (trigger_after = 2).
        assert!(wd.observe(&stormy(0)).is_empty());
        // Second consecutive: fires exactly one EvictionStorm.
        let fired = wd.observe(&stormy(1));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::EvictionStorm);
        assert_eq!(fired[0].window, 1);
        assert!(fired[0].value >= fired[0].threshold);
        // Sustained storm: latched, no re-fire.
        for i in 2..10 {
            assert!(wd.observe(&stormy(i)).is_empty(), "re-fired while latched");
        }
        // One clean window is not enough to re-arm…
        assert!(wd.observe(&calm(10)).is_empty());
        assert!(wd.observe(&stormy(11)).is_empty(), "re-armed too early");
        // …but clear_after consecutive clean windows are.
        assert!(wd.observe(&calm(12)).is_empty());
        assert!(wd.observe(&calm(13)).is_empty());
        assert!(wd.observe(&stormy(14)).is_empty()); // streak 1 of 2
        let again = wd.observe(&stormy(15));
        assert_eq!(again.len(), 1, "did not re-fire after re-arm");
    }

    #[test]
    fn storm_needs_the_absolute_floor_too() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            ..WatchdogConfig::default()
        });
        // 50% share but only 8 evictions: under evict_min, no fire.
        let w = window(0, |w| {
            set(w, LiveMetric::Dispatches, 16);
            set(w, LiveMetric::Evictions, 8);
        });
        assert!(wd.observe(&w).is_empty());
    }

    #[test]
    fn flight_convoy_fires_on_wait_share() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            ..WatchdogConfig::default()
        });
        let w = window(0, |w| {
            set(w, LiveMetric::Dispatches, 1_000);
            set(w, LiveMetric::FlightWaits, 700);
        });
        let fired = wd.observe(&w);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::FlightConvoy);
    }

    #[test]
    fn break_even_regression_tracks_drift_from_first_baseline() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            break_even_min_specs: 4,
            break_even_factor: 4.0,
            ..WatchdogConfig::default()
        });
        let site = |specs: u64, avg: f64| SiteWindow {
            site: 7,
            specs: 1,
            spec_cycles: 0,
            cum_specs: specs,
            cum_avg_cycles: avg,
        };
        // Establishes the baseline (1000 cycles/spec): clean.
        let w0 = window(0, |w| w.sites.push(site(8, 1_000.0)));
        assert!(wd.observe(&w0).is_empty());
        // 2x drift: still clean.
        let w1 = window(1, |w| w.sites.push(site(16, 2_000.0)));
        assert!(wd.observe(&w1).is_empty());
        // 5x drift: fires.
        let w2 = window(2, |w| w.sites.push(site(32, 5_000.0)));
        let fired = wd.observe(&w2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::BreakEvenRegression);
        assert!((fired[0].value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn below_min_specs_never_establishes_a_baseline() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            break_even_min_specs: 8,
            ..WatchdogConfig::default()
        });
        let w = window(0, |w| {
            w.sites.push(SiteWindow {
                site: 1,
                specs: 2,
                spec_cycles: 0,
                cum_specs: 2,
                cum_avg_cycles: 1e9,
            })
        });
        assert!(wd.observe(&w).is_empty());
        assert!(wd.site_base.is_empty());
    }

    #[test]
    fn latency_spike_needs_history_and_thickness() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            spike_history: 3,
            spike_min_misses: 100,
            spike_factor: 16.0,
            ..WatchdogConfig::default()
        });
        let with_p99 = |i: u64, misses: u64, lat: u64| {
            window(i, |w| {
                set(w, LiveMetric::Dispatches, misses * 2);
                set(w, LiveMetric::Misses, misses);
                for _ in 0..misses {
                    w.miss_ns.record(lat);
                }
            })
        };
        // Build 3 windows of ~1µs history.
        for i in 0..3 {
            assert!(wd.observe(&with_p99(i, 200, 1_000)).is_empty());
        }
        // A thin spike window is ignored (too few misses).
        assert!(wd.observe(&with_p99(3, 10, 1_000_000)).is_empty());
        // A thick 100x spike fires.
        let fired = wd.observe(&with_p99(4, 200, 100_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::SpecLatencySpike);
        assert!(fired[0].value >= 16.0);
    }

    #[test]
    fn infinite_thresholds_disable_a_rule() {
        let mut wd = Watchdog::new(WatchdogConfig {
            trigger_after: 1,
            evict_share: f64::INFINITY,
            ..WatchdogConfig::default()
        });
        let w = window(0, |w| {
            set(w, LiveMetric::Dispatches, 100);
            set(w, LiveMetric::Evictions, 100);
        });
        assert!(wd.observe(&w).is_empty());
    }

    #[test]
    fn anomaly_names_are_stable_kebab_case() {
        for k in ALL_ANOMALIES {
            assert!(k.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
