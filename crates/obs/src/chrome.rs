//! Chrome `trace_event` JSON export and re-import.
//!
//! The exporter writes the "JSON object format": a `traceEvents` array
//! plus an `otherData` metadata object, loadable directly in
//! `chrome://tracing` or Perfetto. Specialization begin/end become
//! `B`/`E` duration spans (both named `ge-exec` so the viewer pairs
//! them); every other kind becomes a thread-scoped instant (`i`).
//!
//! The full [`Event`] payload rides in `args`, so
//! [`parse_chrome_trace`] can rebuild the exact event stream from the
//! file alone — `dycstat read` and the CI validation step run entirely
//! off dumped traces.

use crate::event::{Event, EventKind, ALL_KINDS};
use crate::json::{escape, Json};

/// A re-imported trace: the reconstructed event stream (in file order)
/// and the `otherData` metadata pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    /// The reconstructed events.
    pub events: Vec<Event>,
    /// `otherData` metadata (string values, source order).
    pub meta: Vec<(String, String)>,
}

fn phase(kind: EventKind) -> char {
    match kind {
        EventKind::GeExecBegin => 'B',
        EventKind::GeExecEnd => 'E',
        _ => 'i',
    }
}

fn kind_for(name: &str, ph: &str) -> Option<EventKind> {
    if name == "ge-exec" {
        return match ph {
            "B" => Some(EventKind::GeExecBegin),
            "E" => Some(EventKind::GeExecEnd),
            _ => None,
        };
    }
    ALL_KINDS
        .into_iter()
        .find(|k| k.name() == name && phase(*k) == 'i')
}

/// Render an event stream (already merged across threads) as Chrome
/// `trace_event` JSON. `meta` key/value pairs land in `otherData`.
pub fn chrome_trace(events: &[Event], meta: &[(String, String)]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = phase(e.kind);
        // Timestamps are microseconds; keep nanosecond precision in the
        // fraction so parse-back is exact.
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            escape(e.kind.name()),
            e.kind.category().name(),
            ph,
            e.t_ns as f64 / 1000.0,
            e.thread,
        ));
        if ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        // The key hash is a full 64-bit word — JSON numbers are f64, so
        // it travels as a hex string.
        out.push_str(&format!(
            ",\"args\":{{\"site\":{},\"key\":\"{:#x}\",\"seq\":{},\"cycle\":{},\"a\":{},\"b\":{}}}}}",
            e.site, e.key, e.seq, e.cycle, e.a, e.b
        ));
    }
    out.push_str("\n],\"otherData\":{");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", escape(k), escape(v)));
    }
    out.push_str("}}\n");
    out
}

fn req_num(o: &Json, key: &str) -> Result<u64, String> {
    o.get(key)
        .and_then(Json::num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Parse a trace produced by [`chrome_trace`] back into its event
/// stream and metadata.
///
/// # Errors
///
/// Rejects JSON that does not parse, lacks a `traceEvents` array, or
/// contains events this exporter could not have written (unknown
/// name/phase, missing `args` fields).
pub fn parse_chrome_trace(text: &str) -> Result<ChromeTrace, String> {
    let doc = Json::parse(text)?;
    let evs = doc
        .get("traceEvents")
        .and_then(Json::arr)
        .ok_or("no traceEvents array")?;
    let mut events = Vec::with_capacity(evs.len());
    for (i, ev) in evs.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::str)
            .ok_or_else(|| format!("event {i}: no name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::str)
            .ok_or_else(|| format!("event {i}: no ph"))?;
        let kind =
            kind_for(name, ph).ok_or_else(|| format!("event {i}: unknown kind {name:?}/{ph:?}"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::num)
            .ok_or_else(|| format!("event {i}: no ts"))?;
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i}: no args"))?;
        let key_hex = args
            .get("key")
            .and_then(Json::str)
            .ok_or_else(|| format!("event {i}: no key"))?;
        let key = u64::from_str_radix(key_hex.trim_start_matches("0x"), 16)
            .map_err(|e| format!("event {i}: bad key {key_hex:?}: {e}"))?;
        events.push(Event {
            kind,
            site: req_num(args, "site").map_err(|e| format!("event {i}: {e}"))? as u32,
            thread: req_num(ev, "tid").map_err(|e| format!("event {i}: {e}"))? as u32,
            key,
            seq: req_num(args, "seq").map_err(|e| format!("event {i}: {e}"))?,
            t_ns: (ts * 1000.0).round() as u64,
            cycle: req_num(args, "cycle").map_err(|e| format!("event {i}: {e}"))?,
            a: req_num(args, "a").map_err(|e| format!("event {i}: {e}"))?,
            b: req_num(args, "b").map_err(|e| format!("event {i}: {e}"))?,
        });
    }
    let mut meta = Vec::new();
    if let Some(Json::Obj(m)) = doc.get("otherData") {
        for (k, v) in m {
            if let Json::Str(s) = v {
                meta.push((k.clone(), s.clone()));
            }
        }
    }
    Ok(ChromeTrace { events, meta })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        ALL_KINDS
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                kind,
                site: i as u32,
                thread: (i % 3) as u32,
                key: 0xdead_beef_0000_0000 | i as u64,
                seq: i as u64,
                t_ns: 1_000 * i as u64 + 123,
                cycle: 77 * i as u64,
                a: i as u64,
                b: 2 * i as u64,
            })
            .collect()
    }

    #[test]
    fn round_trips_every_kind() {
        let events = sample_events();
        let meta = vec![
            ("workload".to_string(), "chebyshev".to_string()),
            ("threads".to_string(), "8".to_string()),
        ];
        let text = chrome_trace(&events, &meta);
        let back = parse_chrome_trace(&text).unwrap();
        assert_eq!(back.events, events);
        assert_eq!(back.meta, meta);
    }

    #[test]
    fn span_pair_shares_a_name_with_distinct_phases() {
        let events = sample_events();
        let text = chrome_trace(&events, &[]);
        assert!(text.contains("\"name\":\"ge-exec\",\"cat\":\"spec\",\"ph\":\"B\""));
        assert!(text.contains("\"name\":\"ge-exec\",\"cat\":\"spec\",\"ph\":\"E\""));
        // Instants carry a thread scope for the viewer.
        assert!(text.contains("\"ph\":\"i\",\"ts\":0.123,\"pid\":1,\"tid\":0,\"s\":\"t\""));
    }

    #[test]
    fn output_is_valid_json() {
        let text = chrome_trace(&sample_events(), &[("a".into(), "b\"c".into())]);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::arr).map(|a| a.len()),
            Some(ALL_KINDS.len())
        );
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("a"))
                .and_then(Json::str),
            Some("b\"c")
        );
    }

    /// Every kind added since the original exporter (warm-start loads
    /// in PR 6, native installs/fallbacks in PR 7, the adaptive-policy
    /// events in PR 8) must keep its exact wire name, category, and
    /// phase — a rename or a missed `kind_for` arm would silently break
    /// every dumped trace.
    #[test]
    fn recent_kinds_are_pinned_on_the_wire() {
        use crate::event::Category;
        let pinned: &[(EventKind, &str, Category)] = &[
            (EventKind::CacheWarmLoad, "cache-warm-load", Category::Cache),
            (EventKind::NativeInstall, "native-install", Category::Spec),
            (EventKind::NativeFallback, "native-fallback", Category::Spec),
            (EventKind::PolicyDefer, "policy-defer", Category::Policy),
            (EventKind::PolicyPromote, "policy-promote", Category::Policy),
            (
                EventKind::PolicyThrottle,
                "policy-throttle",
                Category::Policy,
            ),
        ];
        for &(kind, name, cat) in pinned {
            assert!(ALL_KINDS.contains(&kind), "{name} missing from ALL_KINDS");
            assert_eq!(kind.name(), name);
            assert_eq!(kind.category(), cat);
            assert_eq!(phase(kind), 'i', "{name} must export as an instant");
            assert_eq!(kind_for(name, "i"), Some(kind), "{name} must parse back");
            let ev = Event {
                kind,
                site: 3,
                thread: 1,
                key: 0xabcd,
                seq: 9,
                t_ns: 4_567,
                cycle: 11,
                a: 1,
                b: 2,
            };
            let text = chrome_trace(std::slice::from_ref(&ev), &[]);
            assert!(
                text.contains(&format!("\"name\":\"{name}\",\"cat\":\"{}\"", cat.name())),
                "wire form changed for {name}"
            );
            let back = parse_chrome_trace(&text).unwrap();
            assert_eq!(back.events, vec![ev]);
        }
    }

    #[test]
    fn rejects_foreign_traces() {
        assert!(parse_chrome_trace("[]").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\"}]}").is_err());
        // ge-exec with an instant phase was never written by us.
        assert!(parse_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"ge-exec\",\"ph\":\"i\",\"ts\":0,\"tid\":0,\
             \"args\":{\"site\":0,\"key\":\"0x0\",\"seq\":0,\"cycle\":0,\"a\":0,\"b\":0}}]}"
        )
        .is_err());
    }
}
