//! The per-thread ring-buffer recorder and its zero-cost-when-off
//! wrapper.

use crate::event::{Event, EventKind};
use crate::now_ns;

/// Default ring capacity: 65 536 events (≈4.7 MB). Old events are
/// overwritten once the ring is full — a trace always holds the
/// *newest* window of the run.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A fixed-capacity event ring buffer owned by exactly one thread.
/// Recording is lock-free and allocation-free: the buffer is sized at
/// construction and never grows; when full, the oldest event is
/// overwritten and `dropped` counts the loss.
///
/// # Examples
///
/// ```
/// use dyc_obs::{EventKind, Recorder};
///
/// let mut r = Recorder::with_capacity(4, 0);
/// for site in 0..6u32 {
///     r.record(EventKind::DispatchHit, site, 0, 0, 0, 0);
/// }
/// // Capacity 4: the two oldest events were overwritten.
/// let ev = r.events();
/// assert_eq!(ev.len(), 4);
/// assert_eq!(r.dropped(), 2);
/// assert_eq!(ev[0].site, 2); // oldest surviving
/// assert_eq!(ev[3].site, 5); // newest
/// ```
#[derive(Debug)]
pub struct Recorder {
    ring: Box<[Event]>,
    /// Next write position.
    head: usize,
    /// Events currently resident (≤ capacity).
    len: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Next sequence number (strictly increasing for this recorder's
    /// lifetime, surviving overwrites).
    seq: u64,
    thread: u32,
}

impl Recorder {
    /// A recorder for `thread` holding at most `cap` events
    /// (minimum 1).
    pub fn with_capacity(cap: usize, thread: u32) -> Recorder {
        Recorder {
            ring: vec![Event::default(); cap.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
            seq: 0,
            thread,
        }
    }

    /// Record one event. Allocation-free: writes into the preallocated
    /// ring, overwriting the oldest event when full.
    #[inline]
    pub fn record(&mut self, kind: EventKind, site: u32, key: u64, cycle: u64, a: u64, b: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.ring[self.head] = Event {
            kind,
            site,
            thread: self.thread,
            key,
            seq,
            t_ns: now_ns(),
            cycle,
            a,
            b,
        };
        self.head = (self.head + 1) % self.ring.len();
        if self.len < self.ring.len() {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The resident events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let cap = self.ring.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len)
            .map(|i| self.ring[(start + i) % cap])
            .collect()
    }

    /// Events currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (resident + dropped).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// The recording thread's id.
    pub fn thread(&self) -> u32 {
        self.thread
    }
}

/// An optional [`Recorder`]: the runtime knob. When off (the default),
/// [`Trace::rec`] is a single branch on a `None` — no recorder is
/// allocated at all, so tracing is zero-cost for untraced runs.
#[derive(Debug, Default)]
pub struct Trace(Option<Box<Recorder>>);

impl Trace {
    /// Tracing disabled (records nothing).
    pub fn off() -> Trace {
        Trace(None)
    }

    /// Tracing enabled for `thread` with [`DEFAULT_CAPACITY`].
    pub fn on(thread: u32) -> Trace {
        Trace::with_capacity(DEFAULT_CAPACITY, thread)
    }

    /// Tracing enabled with an explicit ring capacity.
    pub fn with_capacity(cap: usize, thread: u32) -> Trace {
        Trace(Some(Box::new(Recorder::with_capacity(cap, thread))))
    }

    /// True if events are being recorded.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Record one event (no-op when off).
    #[inline]
    pub fn rec(&mut self, kind: EventKind, site: u32, key: u64, cycle: u64, a: u64, b: u64) {
        if let Some(r) = &mut self.0 {
            r.record(kind, site, key, cycle, a, b);
        }
    }

    /// The underlying recorder, if tracing is on.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.0.as_deref()
    }

    /// The resident events, oldest first (empty when off).
    pub fn events(&self) -> Vec<Event> {
        self.0.as_deref().map(Recorder::events).unwrap_or_default()
    }

    /// Events lost to overwriting (0 when off).
    pub fn dropped(&self) -> u64 {
        self.0.as_deref().map(Recorder::dropped).unwrap_or(0)
    }
}

/// Merge per-thread event streams into one timeline, ordered by
/// (wall time, thread, sequence) — the order the exporters and the
/// aggregation pass expect.
pub fn merge(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.t_ns, e.thread, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let mut r = Recorder::with_capacity(8, 3);
        for i in 0..20u64 {
            r.record(EventKind::DispatchHit, i as u32, i, 0, i, 0);
        }
        let ev = r.events();
        assert_eq!(ev.len(), 8);
        assert_eq!(r.dropped(), 12);
        assert_eq!(r.recorded(), 20);
        // The surviving window is exactly the last 8 records, in order.
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.site, 12 + i as u32);
            assert_eq!(e.thread, 3);
        }
    }

    #[test]
    fn ordering_is_monotone_per_thread() {
        let mut r = Recorder::with_capacity(64, 0);
        for i in 0..200u32 {
            r.record(EventKind::DispatchMiss, i, 0, u64::from(i), 0, 0);
        }
        let ev = r.events();
        for w in ev.windows(2) {
            assert!(w[1].seq == w[0].seq + 1, "seq strictly increasing");
            assert!(w[1].t_ns >= w[0].t_ns, "wall clock non-decreasing");
        }
    }

    #[test]
    fn partial_fill_returns_in_insertion_order() {
        let mut r = Recorder::with_capacity(16, 0);
        r.record(EventKind::GeExecBegin, 1, 0, 0, 0, 0);
        r.record(EventKind::GeExecEnd, 1, 0, 0, 9, 0);
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::GeExecBegin);
        assert_eq!(ev[1].kind, EventKind::GeExecEnd);
        assert_eq!(ev[1].a, 9);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn trace_off_records_nothing() {
        let mut t = Trace::off();
        t.rec(EventKind::DispatchHit, 0, 0, 0, 0, 0);
        assert!(!t.is_on());
        assert!(t.events().is_empty());
        assert!(t.recorder().is_none());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn trace_on_records() {
        let mut t = Trace::with_capacity(4, 7);
        t.rec(EventKind::CacheEvict, 2, 99, 0, 1, 0);
        assert!(t.is_on());
        let ev = t.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].thread, 7);
        assert_eq!(ev[0].key, 99);
    }

    #[test]
    fn merge_orders_across_threads() {
        let mut a = Recorder::with_capacity(8, 0);
        let mut b = Recorder::with_capacity(8, 1);
        a.record(EventKind::DispatchHit, 0, 0, 0, 0, 0);
        b.record(EventKind::DispatchHit, 1, 0, 0, 0, 0);
        a.record(EventKind::DispatchHit, 2, 0, 0, 0, 0);
        let merged = merge(vec![a.events(), b.events()]);
        assert_eq!(merged.len(), 3);
        for w in merged.windows(2) {
            assert!((w[0].t_ns, w[0].thread, w[0].seq) <= (w[1].t_ns, w[1].thread, w[1].seq));
        }
    }
}
