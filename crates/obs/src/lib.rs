//! # dyc-obs — staged-pipeline observability
//!
//! The paper's whole evaluation (Tables 2–5, the §4.2 break-even
//! analysis, the §4.4.3 dispatch costs) is an observability exercise
//! over the staged pipeline. This crate is the lens: a low-overhead,
//! cycle-stamped event-tracing layer the run-time system records into,
//! plus everything needed to turn a recorded run back into paper-style
//! numbers.
//!
//! * [`Event`]/[`EventKind`] — the typed events the runtime records:
//!   dispatch hit/miss/unchecked/indexed, single-flight wait/fallback,
//!   GE-exec begin/end, template copy + hole patch, cache
//!   eviction/invalidation, internal promotion. Each is tagged with
//!   (site, key hash, thread, wall nanos, model-cycle stamp).
//! * [`Recorder`]/[`Trace`] — a per-thread fixed-capacity ring buffer.
//!   No locks, no heap allocation on the record path, and a no-op (one
//!   branch on a `None`) when tracing is off.
//! * [`SiteProfile`]/[`site_profiles`] — the aggregation pass: per-site
//!   specializations, cached variants, cumulative dyncomp/dispatch
//!   cycles, probe rates, and the §4.2 break-even estimate
//!   (dyncomp cycles ÷ cycles saved per use).
//! * [`LatencyHistogram`] — a fixed-footprint log-linear histogram for
//!   whole-run tail latency (p50/p95/p99) where the ring would have
//!   dropped all but the newest window; [`miss_latency`] rebuilds one
//!   from a recorded event stream.
//! * [`chrome_trace`]/[`parse_chrome_trace`] — Chrome `trace_event`
//!   JSON, loadable in `chrome://tracing` or Perfetto, with enough
//!   metadata embedded to rebuild the profiles from the file alone.
//! * [`render_metrics`] — Prometheus-style text exposition of any set
//!   of named meters.
//! * [`LiveRegistry`]/[`Sampler`]/[`Watchdog`] — the live-telemetry
//!   layer: per-thread sharded atomic counters and histograms that can
//!   be snapshotted while workers keep dispatching, a sampler thread
//!   folding snapshots into a bounded ring of windowed deltas, and an
//!   anomaly watchdog that dumps the flight recorder (every thread's
//!   event-ring tail) as a Chrome trace + JSON incident on trigger.
//!
//! The crate is dependency-free in both directions (it depends on
//! nothing and knows nothing about the runtime), so `dyc-rt` can record
//! into it and `dyc-bench`'s `dycstat` can report from it without a
//! cycle.

#![deny(missing_docs)]

pub mod anomaly;
pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
pub mod live;
pub mod profile;
pub mod prom;
pub mod recorder;
pub mod sampler;

pub use anomaly::{Anomaly, AnomalyKind, Watchdog, WatchdogConfig, ALL_ANOMALIES};
pub use chrome::{chrome_trace, parse_chrome_trace, ChromeTrace};
pub use event::ALL_KINDS;
pub use event::{Category, Event, EventKind};
pub use hist::LatencyHistogram;
pub use json::Json;
pub use live::{
    AtomicHistogram, FlightRecorder, FlightRing, LiveHandles, LiveMetric, LiveRegistry, LiveSlot,
    LiveSnapshot, LiveThread, SiteCost, LIVE_METRICS, N_LIVE_METRICS,
};
pub use profile::{contention, miss_latency, site_profiles, SiteProfile, ThreadLoad};
pub use prom::{render_metrics, Metric, MetricKind};
pub use recorder::{merge, Recorder, Trace, DEFAULT_CAPACITY};
pub use sampler::{IncidentRecord, Sampler, SamplerConfig, SamplerView, SiteWindow, Window};

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Wall-clock nanoseconds since the process's trace epoch (the first
/// call wins the race to define time zero). All threads share the
/// epoch, so cross-thread timelines line up in the Chrome trace.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// FNV-1a over the key words — the key *hash* recorded on events, so a
/// trace never contains raw key values, only stable 64-bit identities.
/// The empty key hashes to the FNV offset basis (the identity recorded
/// by `cache_one_unchecked` dispatches, which never build a key).
pub fn key_hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= *w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn key_hash_is_stable_and_discriminates() {
        assert_eq!(key_hash(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash(&[1, 2]), key_hash(&[1, 2]));
        assert_ne!(key_hash(&[1, 2]), key_hash(&[2, 1]));
    }
}
