//! The sampler thread: interval snapshots of a [`LiveRegistry`],
//! windowed deltas, and anomaly-triggered incident dumps.
//!
//! The sampler wakes every `interval`, takes a [`LiveRegistry`]
//! snapshot, and folds the delta against the previous snapshot into a
//! [`Window`]: throughput, hit rate, windowed miss-path percentiles,
//! evictions/waits/races per second, and per-site break-even drift.
//! Windows are retained in a bounded ring; an optional
//! [`Watchdog`] judges each one and, on
//! trigger, the sampler captures the flight recorder's tail as a Chrome
//! trace plus a JSON incident record (written to `incident_dir` when
//! set, always retained in memory).
//!
//! The sampler never touches the runtime — it reads the registry's
//! atomics, so stopping or crashing it cannot perturb a serving run
//! (the observer-effect-free obligation in [`crate::live`]).

use crate::anomaly::{Anomaly, Watchdog, WatchdogConfig};
use crate::chrome::chrome_trace;
use crate::hist::LatencyHistogram;
use crate::json::escape;
use crate::live::{
    FlightRecorder, LiveMetric, LiveRegistry, LiveSnapshot, LIVE_METRICS, N_LIVE_METRICS,
};
use crate::prom::{render_metrics, Metric};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One site's share of a [`Window`], plus its cumulative economics.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteWindow {
    /// The dispatch site id.
    pub site: u32,
    /// Specializations published during this window.
    pub specs: u64,
    /// Dynamic-compilation cycles charged during this window.
    pub spec_cycles: u64,
    /// Cumulative specializations at window end.
    pub cum_specs: u64,
    /// Cumulative mean spec cycles at window end — the watchdog's
    /// break-even-drift input.
    pub cum_avg_cycles: f64,
}

/// One completed sampler window: the delta between two consecutive
/// registry snapshots.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotone window index (0-based, counts all windows ever taken,
    /// including ones the bounded ring has since dropped).
    pub index: u64,
    /// Window start ([`crate::now_ns`] domain).
    pub t0_ns: u64,
    /// Window end.
    pub t1_ns: u64,
    /// Counter deltas, indexed by [`LiveMetric`].
    pub counters: [u64; N_LIVE_METRICS],
    /// Miss-path latency of samples recorded during this window
    /// (bucket-diffed; the max is the cumulative max, see
    /// [`LatencyHistogram::diff`]).
    pub miss_ns: LatencyHistogram,
    /// Per-site activity (sites with any cumulative specs).
    pub sites: Vec<SiteWindow>,
}

impl Window {
    /// The delta window between two snapshots of the same registry.
    pub fn between(index: u64, prev: &LiveSnapshot, cur: &LiveSnapshot) -> Window {
        let mut counters = [0u64; N_LIVE_METRICS];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = cur.counters[i].saturating_sub(prev.counters[i]);
        }
        let sites = cur
            .sites
            .iter()
            .map(|s| {
                let before = prev.sites.iter().find(|p| p.site == s.site);
                SiteWindow {
                    site: s.site,
                    specs: s.specs.saturating_sub(before.map_or(0, |p| p.specs)),
                    spec_cycles: s
                        .spec_cycles
                        .saturating_sub(before.map_or(0, |p| p.spec_cycles)),
                    cum_specs: s.specs,
                    cum_avg_cycles: s.avg_spec_cycles(),
                }
            })
            .collect();
        Window {
            index,
            t0_ns: prev.t_ns,
            t1_ns: cur.t_ns,
            counters,
            miss_ns: cur.miss_ns.diff(&prev.miss_ns),
            sites,
        }
    }

    /// One counter's delta.
    pub fn get(&self, m: LiveMetric) -> u64 {
        self.counters[m as usize]
    }

    /// Window length in seconds.
    pub fn secs(&self) -> f64 {
        self.t1_ns.saturating_sub(self.t0_ns) as f64 / 1e9
    }

    /// A counter's per-second rate over this window (0 for a
    /// zero-length window).
    pub fn per_s(&self, m: LiveMetric) -> f64 {
        let s = self.secs();
        if s > 0.0 {
            self.get(m) as f64 / s
        } else {
            0.0
        }
    }

    /// Dispatches per second.
    pub fn throughput(&self) -> f64 {
        self.per_s(LiveMetric::Dispatches)
    }

    /// Hit rate over the window's dispatches (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let d = self.get(LiveMetric::Dispatches);
        if d == 0 {
            0.0
        } else {
            self.get(LiveMetric::Hits) as f64 / d as f64
        }
    }

    /// True if nothing moved during the window.
    pub fn is_idle(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Snapshot interval.
    pub interval: Duration,
    /// Windows retained in the bounded ring.
    pub ring: usize,
    /// Arm the anomaly watchdog with these thresholds.
    pub watchdog: Option<WatchdogConfig>,
    /// Directory for incident dumps (`incident-<n>-<kind>.json` plus
    /// the Chrome trace). Incidents are always retained in memory;
    /// files are written only when this is set.
    pub incident_dir: Option<PathBuf>,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: Duration::from_millis(250),
            ring: 240,
            watchdog: None,
            incident_dir: None,
        }
    }
}

/// One retained incident: the anomaly, its JSON record, and the Chrome
/// trace captured from the flight recorder at trigger time.
#[derive(Debug, Clone)]
pub struct IncidentRecord {
    /// The anomaly that fired.
    pub anomaly: Anomaly,
    /// The JSON incident record (kind, window, value, threshold,
    /// recent-window summary).
    pub record_json: String,
    /// The flight-recorder capture as Chrome `trace_event` JSON
    /// (empty-event trace when no flight recorder was attached).
    pub trace_json: String,
    /// Files written (empty when `incident_dir` was unset or a write
    /// failed; a failed dump never kills the sampler).
    pub paths: Vec<PathBuf>,
}

#[derive(Debug)]
struct Shared {
    registry: Arc<LiveRegistry>,
    flight: Option<Arc<FlightRecorder>>,
    ring: usize,
    incident_dir: Option<PathBuf>,
    windows: Mutex<VecDeque<Window>>,
    incidents: Mutex<Vec<IncidentRecord>>,
    total_windows: AtomicU64,
    stop: AtomicBool,
}

/// A cloneable read handle onto a running (or stopped) [`Sampler`]:
/// the live exposition endpoint and `dycstat watch` read through this.
#[derive(Debug, Clone)]
pub struct SamplerView(Arc<Shared>);

impl SamplerView {
    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        self.0.windows.lock().unwrap().iter().cloned().collect()
    }

    /// The most recent completed window.
    pub fn latest(&self) -> Option<Window> {
        self.0.windows.lock().unwrap().back().cloned()
    }

    /// Windows ever completed (including ring-dropped ones).
    pub fn total_windows(&self) -> u64 {
        self.0.total_windows.load(Ordering::Relaxed)
    }

    /// All retained incidents, in firing order.
    pub fn incidents(&self) -> Vec<IncidentRecord> {
        self.0.incidents.lock().unwrap().clone()
    }

    /// The full live exposition in Prometheus text format: cumulative
    /// counters, latest-window gauges, per-site spec economics, and
    /// incident/window totals.
    pub fn prometheus(&self) -> String {
        let snap = self.0.registry.snapshot();
        let mut ms = Vec::new();
        for m in LIVE_METRICS {
            ms.push(Metric::counter(
                &format!("dyc_live_{}_total", m.name()),
                match m {
                    LiveMetric::Dispatches => "Dispatches served since start",
                    LiveMetric::Hits => "Dispatches served from the code cache",
                    LiveMetric::Misses => "Dispatches that took the miss path",
                    LiveMetric::Specializations => "Specializations published",
                    LiveMetric::Evictions => "Bounded-cache evictions",
                    LiveMetric::FlightWaits => "Single-flight waits",
                    LiveMetric::FlightFallbacks => "Single-flight generic fallbacks",
                    LiveMetric::FlightRaces => "Single-flight lost races",
                    LiveMetric::PolicyDefers => "Adaptive-policy deferrals",
                    LiveMetric::PolicyPromotes => "Adaptive-policy promotions",
                    LiveMetric::PolicyThrottles => "Adaptive-policy throttled misses",
                },
                &[],
                snap.get(m) as f64,
            ));
        }
        ms.push(Metric::gauge(
            "dyc_live_threads",
            "Worker threads registered with the live registry",
            &[],
            snap.threads as f64,
        ));
        ms.push(Metric::counter(
            "dyc_live_windows_total",
            "Sampler windows completed",
            &[],
            self.total_windows() as f64,
        ));
        ms.push(Metric::counter(
            "dyc_live_incidents_total",
            "Anomaly incidents fired",
            &[],
            self.0.incidents.lock().unwrap().len() as f64,
        ));
        if let Some(w) = self.latest() {
            let (p50, p95, p99, _) = w.miss_ns.quantiles();
            let g = |name: &str, help: &str, v: f64| Metric::gauge(name, help, &[], v);
            ms.push(g(
                "dyc_live_window_throughput",
                "Dispatches per second over the latest window",
                w.throughput(),
            ));
            ms.push(g(
                "dyc_live_window_hit_rate",
                "Cache hit rate over the latest window",
                w.hit_rate(),
            ));
            ms.push(g(
                "dyc_live_window_miss_p50_ns",
                "Windowed miss-path p50 latency (ns)",
                p50 as f64,
            ));
            ms.push(g(
                "dyc_live_window_miss_p95_ns",
                "Windowed miss-path p95 latency (ns)",
                p95 as f64,
            ));
            ms.push(g(
                "dyc_live_window_miss_p99_ns",
                "Windowed miss-path p99 latency (ns)",
                p99 as f64,
            ));
            ms.push(g(
                "dyc_live_window_evictions_per_s",
                "Evictions per second over the latest window",
                w.per_s(LiveMetric::Evictions),
            ));
            ms.push(g(
                "dyc_live_window_waits_per_s",
                "Single-flight waits per second over the latest window",
                w.per_s(LiveMetric::FlightWaits),
            ));
            ms.push(g(
                "dyc_live_window_races_per_s",
                "Single-flight lost races per second over the latest window",
                w.per_s(LiveMetric::FlightRaces),
            ));
        }
        for s in &snap.sites {
            ms.push(Metric::gauge(
                "dyc_live_site_spec_cycles_avg",
                "Mean dynamic-compilation cycles per specialization at the site",
                &[("site", s.site.to_string())],
                s.avg_spec_cycles(),
            ));
        }
        render_metrics(&ms)
    }
}

/// The sampler: owns the background thread. Construct with
/// [`Sampler::spawn`], read through [`Sampler::view`], and call
/// [`Sampler::stop`] to join (which takes one final flush window so
/// even a run shorter than one interval yields a complete view).
#[derive(Debug)]
pub struct Sampler {
    shared: Arc<Shared>,
    handle: JoinHandle<()>,
}

impl Sampler {
    /// Start sampling `registry` (and capturing `flight` on anomaly)
    /// on a background thread.
    pub fn spawn(
        registry: Arc<LiveRegistry>,
        flight: Option<Arc<FlightRecorder>>,
        cfg: SamplerConfig,
    ) -> Sampler {
        let shared = Arc::new(Shared {
            registry,
            flight,
            ring: cfg.ring.max(1),
            incident_dir: cfg.incident_dir.clone(),
            windows: Mutex::new(VecDeque::new()),
            incidents: Mutex::new(Vec::new()),
            total_windows: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let runner = Arc::clone(&shared);
        let interval = cfg.interval;
        let mut watchdog = cfg.watchdog.map(Watchdog::new);
        let handle = std::thread::Builder::new()
            .name("dyc-sampler".into())
            .spawn(move || {
                let mut prev = runner.registry.snapshot();
                loop {
                    let stopping = sleep_watching_stop(&runner.stop, interval);
                    tick(&runner, &mut prev, &mut watchdog, stopping);
                    if stopping {
                        break;
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler { shared, handle }
    }

    /// A cloneable read handle (usable after `stop`, too).
    pub fn view(&self) -> SamplerView {
        SamplerView(Arc::clone(&self.shared))
    }

    /// Stop and join the sampler. The final flush window covers
    /// everything since the last tick, so short runs still produce at
    /// least one window. Returns the retained windows and incidents.
    pub fn stop(self) -> (Vec<Window>, Vec<IncidentRecord>) {
        self.shared.stop.store(true, Ordering::Release);
        self.handle.join().expect("sampler thread panicked");
        let view = SamplerView(self.shared);
        (view.windows(), view.incidents())
    }
}

/// Sleep for `interval` in short steps, returning early (true) when the
/// stop flag rises.
fn sleep_watching_stop(stop: &AtomicBool, interval: Duration) -> bool {
    let step = Duration::from_millis(5).min(interval);
    let mut left = interval;
    while !left.is_zero() {
        if stop.load(Ordering::Acquire) {
            return true;
        }
        let d = step.min(left);
        std::thread::sleep(d);
        left -= d;
    }
    stop.load(Ordering::Acquire)
}

/// Take one window and run it past the watchdog. On the final (stop)
/// tick an all-idle window is skipped, so quiescent shutdown doesn't
/// append an empty window.
fn tick(shared: &Shared, prev: &mut LiveSnapshot, watchdog: &mut Option<Watchdog>, flush: bool) {
    let cur = shared.registry.snapshot();
    let index = shared.total_windows.load(Ordering::Relaxed);
    let w = Window::between(index, prev, &cur);
    *prev = cur;
    if flush && w.is_idle() {
        return;
    }
    shared.total_windows.store(index + 1, Ordering::Relaxed);
    if let Some(wd) = watchdog {
        for anomaly in wd.observe(&w) {
            let incident = build_incident(shared, anomaly, &w);
            shared.incidents.lock().unwrap().push(incident);
        }
    }
    let mut ring = shared.windows.lock().unwrap();
    ring.push_back(w);
    while ring.len() > shared.ring {
        ring.pop_front();
    }
}

/// Capture the flight recorder and render the incident artifacts.
fn build_incident(shared: &Shared, anomaly: Anomaly, w: &Window) -> IncidentRecord {
    let events = shared
        .flight
        .as_ref()
        .map(|f| f.capture())
        .unwrap_or_default();
    let meta = [
        ("incident".to_string(), anomaly.kind.name().to_string()),
        ("window".to_string(), anomaly.window.to_string()),
    ];
    let trace_json = chrome_trace(&events, &meta);
    let mut rec = String::new();
    let _ = writeln!(rec, "{{");
    let _ = writeln!(rec, "  \"kind\": {},", escape(anomaly.kind.name()));
    let _ = writeln!(rec, "  \"window\": {},", anomaly.window);
    let _ = writeln!(rec, "  \"t_ns\": {},", anomaly.t_ns);
    let _ = writeln!(rec, "  \"value\": {},", anomaly.value);
    let _ = writeln!(rec, "  \"threshold\": {},", anomaly.threshold);
    let _ = writeln!(rec, "  \"detail\": {},", escape(&anomaly.detail));
    let _ = writeln!(rec, "  \"flight_events\": {},", events.len());
    let (p50, p95, p99, _) = w.miss_ns.quantiles();
    let _ = writeln!(
        rec,
        "  \"window_stats\": {{ \"dispatches\": {}, \"hit_rate\": {:.6}, \
         \"evictions\": {}, \"flight_waits\": {}, \"miss_p50_ns\": {}, \
         \"miss_p95_ns\": {}, \"miss_p99_ns\": {} }}",
        w.get(LiveMetric::Dispatches),
        w.hit_rate(),
        w.get(LiveMetric::Evictions),
        w.get(LiveMetric::FlightWaits),
        p50,
        p95,
        p99,
    );
    let _ = writeln!(rec, "}}");
    let mut paths = Vec::new();
    if let Some(dir) = &shared.incident_dir {
        let n = shared.incidents.lock().unwrap().len();
        let stem = format!("incident-{n}-{}", anomaly.kind.name());
        let _ = std::fs::create_dir_all(dir);
        let record_path = dir.join(format!("{stem}.json"));
        let trace_path = dir.join(format!("{stem}.trace.json"));
        if std::fs::write(&record_path, &rec).is_ok() {
            paths.push(record_path);
        }
        if std::fs::write(&trace_path, &trace_json).is_ok() {
            paths.push(trace_path);
        }
    }
    IncidentRecord {
        anomaly,
        record_json: rec,
        trace_json,
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveHandles;
    use crate::EventKind;

    #[test]
    fn window_between_computes_deltas_and_rates() {
        let reg = LiveRegistry::new();
        let slot = reg.register_thread();
        slot.add(LiveMetric::Dispatches, 100);
        slot.add(LiveMetric::Hits, 90);
        slot.add(LiveMetric::Misses, 10);
        slot.record_miss_ns(1_000);
        reg.note_spec(0, 800);
        let a = reg.snapshot();
        slot.add(LiveMetric::Dispatches, 50);
        slot.add(LiveMetric::Hits, 50);
        reg.note_spec(0, 1_200);
        let b = reg.snapshot();
        let w = Window::between(3, &a, &b);
        assert_eq!(w.index, 3);
        assert_eq!(w.get(LiveMetric::Dispatches), 50);
        assert_eq!(w.get(LiveMetric::Hits), 50);
        assert_eq!(w.get(LiveMetric::Misses), 0);
        assert_eq!(w.hit_rate(), 1.0);
        assert_eq!(w.miss_ns.count(), 0);
        assert_eq!(w.sites.len(), 1);
        assert_eq!(w.sites[0].specs, 1);
        assert_eq!(w.sites[0].spec_cycles, 1_200);
        assert_eq!(w.sites[0].cum_specs, 2);
        assert!((w.sites[0].cum_avg_cycles - 1_000.0).abs() < 1e-9);
        assert!(!w.is_idle());
    }

    #[test]
    fn sampler_final_flush_covers_a_short_run() {
        let handles = LiveHandles::new();
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            None,
            SamplerConfig {
                // Far longer than the test: only the flush window can
                // capture the activity.
                interval: Duration::from_secs(3600),
                ..SamplerConfig::default()
            },
        );
        let slot = handles.registry.register_thread();
        slot.add(LiveMetric::Dispatches, 10);
        slot.add(LiveMetric::Hits, 10);
        let (windows, incidents) = sampler.stop();
        assert_eq!(windows.len(), 1, "flush window missing");
        assert_eq!(windows[0].get(LiveMetric::Dispatches), 10);
        assert!(incidents.is_empty());
    }

    #[test]
    fn quiescent_stop_skips_the_empty_flush_window() {
        let handles = LiveHandles::new();
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            None,
            SamplerConfig {
                interval: Duration::from_secs(3600),
                ..SamplerConfig::default()
            },
        );
        let (windows, _) = sampler.stop();
        assert!(windows.is_empty());
    }

    #[test]
    fn window_ring_is_bounded_and_total_keeps_counting() {
        let handles = LiveHandles::new();
        let slot = handles.registry.register_thread();
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            None,
            SamplerConfig {
                interval: Duration::from_millis(1),
                ring: 4,
                ..SamplerConfig::default()
            },
        );
        // Keep the counters moving so windows are non-idle.
        for _ in 0..200 {
            slot.add(LiveMetric::Dispatches, 1);
            std::thread::sleep(Duration::from_millis(1));
        }
        let view = sampler.view();
        let (windows, _) = sampler.stop();
        assert!(windows.len() <= 4);
        assert!(view.total_windows() >= windows.len() as u64);
        // Ring order is oldest-first by index.
        for pair in windows.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }

    #[test]
    fn watchdog_trigger_dumps_an_incident_with_flight_capture() {
        let handles = LiveHandles::with_flight(256);
        let live = handles.thread(0);
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            handles.flight.clone(),
            SamplerConfig {
                interval: Duration::from_secs(3600),
                watchdog: Some(WatchdogConfig {
                    trigger_after: 1,
                    evict_min: 16,
                    evict_share: 0.25,
                    ..WatchdogConfig::default()
                }),
                ..SamplerConfig::default()
            },
        );
        // Simulate a storm: half the dispatches evict, with ring
        // events to capture.
        live.slot.add(LiveMetric::Dispatches, 100);
        live.slot.add(LiveMetric::Misses, 50);
        live.slot.add(LiveMetric::Evictions, 50);
        let ring = live.ring.as_ref().unwrap();
        for i in 0..20 {
            ring.record(EventKind::CacheEvict, 0, i, 0, 0, 0);
        }
        let (windows, incidents) = sampler.stop();
        assert_eq!(windows.len(), 1);
        assert_eq!(incidents.len(), 1, "expected exactly one incident");
        let inc = &incidents[0];
        assert_eq!(inc.anomaly.kind, crate::anomaly::AnomalyKind::EvictionStorm);
        // Both artifacts parse with our own parsers.
        let trace = crate::parse_chrome_trace(&inc.trace_json).expect("trace parses");
        assert_eq!(trace.events.len(), 20);
        assert!(trace
            .meta
            .iter()
            .any(|(k, v)| k == "incident" && v == "eviction-storm"));
        let rec = crate::Json::parse(&inc.record_json).expect("record parses");
        assert_eq!(
            rec.get("kind").and_then(crate::Json::str),
            Some("eviction-storm")
        );
        assert!(rec.get("window_stats").is_some());
        assert!(inc.paths.is_empty(), "no incident_dir set");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let handles = LiveHandles::new();
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            None,
            SamplerConfig {
                interval: Duration::from_secs(3600),
                ..SamplerConfig::default()
            },
        );
        let slot = handles.registry.register_thread();
        slot.add(LiveMetric::Dispatches, 42);
        slot.add(LiveMetric::Hits, 40);
        slot.add(LiveMetric::Misses, 2);
        slot.record_miss_ns(5_000);
        handles.registry.note_spec(1, 900);
        let view = sampler.view();
        let _ = sampler.stop();
        let text = view.prometheus();
        assert!(text.contains("# TYPE dyc_live_dispatches_total counter"));
        assert!(text.contains("dyc_live_dispatches_total 42"));
        assert!(text.contains("# TYPE dyc_live_window_throughput gauge"));
        assert!(text.contains("dyc_live_site_spec_cycles_avg{site=\"1\"} 900"));
        assert!(text.contains("dyc_live_windows_total 1"));
    }
}
