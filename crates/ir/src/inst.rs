//! IR instructions and terminators.
//!
//! Operation enums are shared with the VM ISA (`IAluOp`, `FAluOp`, `Cc`,
//! `UnOp`) so instruction selection is mostly one-to-one; what the IR adds
//! is virtual registers, explicit basic-block structure, typed loads/stores
//! with a `is_static` bit (the `@` annotation), call kinds, and DyC's
//! annotation pseudo-instructions.

use crate::ids::{BlockId, IrTy, VReg};
use dyc_lang::Policy;
use dyc_vm::{Cc, FAluOp, HostFn, IAluOp, UnOp};

/// What a call targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// A user function, by index into the program's function list.
    /// `is_static` records the `static` qualifier (pure; a *static call*
    /// candidate, §2.2.6).
    Func { index: usize, is_static: bool },
    /// A host function; purity comes from [`HostFn::is_pure`].
    Host(HostFn),
}

impl Callee {
    /// True if calls to this target with all-static arguments may be
    /// executed at dynamic compile time.
    pub fn is_pure(&self) -> bool {
        match self {
            Callee::Func { is_static, .. } => *is_static,
            Callee::Host(h) => h.is_pure(),
        }
    }
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = <int const>`
    ConstI { dst: VReg, v: i64 },
    /// `dst = <float const>`
    ConstF { dst: VReg, v: f64 },
    /// `dst = src` (same type).
    Copy { dst: VReg, src: VReg },
    /// Integer ALU.
    IBin {
        op: IAluOp,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Float ALU.
    FBin {
        op: FAluOp,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Integer comparison (produces int 0/1).
    ICmp { cc: Cc, dst: VReg, a: VReg, b: VReg },
    /// Float comparison (produces int 0/1).
    FCmp { cc: Cc, dst: VReg, a: VReg, b: VReg },
    /// Unary op / conversion.
    Un { op: UnOp, dst: VReg, src: VReg },
    /// `dst = mem[base + idx]`; `is_static` marks the `@` annotation.
    Load {
        ty: IrTy,
        dst: VReg,
        base: VReg,
        idx: VReg,
        is_static: bool,
    },
    /// `mem[base + idx] = src`.
    Store {
        ty: IrTy,
        base: VReg,
        idx: VReg,
        src: VReg,
    },
    /// Call; `dst` is `None` for void calls.
    Call {
        callee: Callee,
        dst: Option<VReg>,
        args: Vec<VReg>,
    },
    /// Annotation: begin specialization on these variables (§2.1).
    MakeStatic { vars: Vec<(VReg, Policy)> },
    /// Annotation: end specialization on these variables.
    MakeDynamic { vars: Vec<VReg> },
    /// Annotation: internal dynamic-to-static promotion point (§2.2.2).
    Promote { var: VReg },
}

impl Inst {
    /// The register defined, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::ConstI { dst, .. }
            | Inst::ConstF { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::IBin { dst, .. }
            | Inst::FBin { dst, .. }
            | Inst::ICmp { dst, .. }
            | Inst::FCmp { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers read.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::ConstI { .. } | Inst::ConstF { .. } => vec![],
            Inst::Copy { src, .. } | Inst::Un { src, .. } => vec![*src],
            Inst::IBin { a, b, .. }
            | Inst::FBin { a, b, .. }
            | Inst::ICmp { a, b, .. }
            | Inst::FCmp { a, b, .. } => vec![*a, *b],
            Inst::Load { base, idx, .. } => vec![*base, *idx],
            Inst::Store { base, idx, src, .. } => vec![*base, *idx, *src],
            Inst::Call { args, .. } => args.clone(),
            // Annotations read nothing at run time; they direct the BTA.
            Inst::MakeStatic { .. } | Inst::MakeDynamic { .. } | Inst::Promote { .. } => vec![],
        }
    }

    /// True if removable when `dst` is dead. Loads qualify (no volatile
    /// memory in the VM); calls do not unless the callee is pure.
    pub fn is_pure(&self) -> bool {
        match self {
            Inst::ConstI { .. }
            | Inst::ConstF { .. }
            | Inst::Copy { .. }
            | Inst::IBin { .. }
            | Inst::FBin { .. }
            | Inst::ICmp { .. }
            | Inst::FCmp { .. }
            | Inst::Un { .. }
            | Inst::Load { .. } => true,
            Inst::Call { callee, .. } => callee.is_pure(),
            Inst::Store { .. }
            | Inst::MakeStatic { .. }
            | Inst::MakeDynamic { .. }
            | Inst::Promote { .. } => false,
        }
    }

    /// True for annotation pseudo-instructions (no run-time effect).
    pub fn is_annotation(&self) -> bool {
        matches!(
            self,
            Inst::MakeStatic { .. } | Inst::MakeDynamic { .. } | Inst::Promote { .. }
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way branch on an int condition.
    Br { cond: VReg, t: BlockId, f: BlockId },
    /// Multi-way switch on an int value.
    Switch {
        on: VReg,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    },
    /// Function return.
    Ret(Option<VReg>),
}

impl Term {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Term::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Term::Br { cond, .. } => vec![*cond],
            Term::Switch { on, .. } => vec![*on],
            Term::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    /// Rewrite every successor through `f` (used by CFG simplification).
    pub fn map_succs(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Jmp(b) => *b = f(*b),
            Term::Br { t, f: fb, .. } => {
                *t = f(*t);
                *fb = f(*fb);
            }
            Term::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    *b = f(*b);
                }
                *default = f(*default);
            }
            Term::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_defs_and_uses() {
        let i = Inst::IBin {
            op: IAluOp::Add,
            dst: VReg(2),
            a: VReg(0),
            b: VReg(1),
        };
        assert_eq!(i.def(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn purity() {
        assert!(Inst::Load {
            ty: IrTy::Int,
            dst: VReg(0),
            base: VReg(1),
            idx: VReg(2),
            is_static: false
        }
        .is_pure());
        assert!(!Inst::Store {
            ty: IrTy::Int,
            base: VReg(1),
            idx: VReg(2),
            src: VReg(0)
        }
        .is_pure());
        let pure_call = Inst::Call {
            callee: Callee::Host(HostFn::Cos),
            dst: Some(VReg(0)),
            args: vec![VReg(1)],
        };
        assert!(pure_call.is_pure());
        let print = Inst::Call {
            callee: Callee::Host(HostFn::PrintI),
            dst: None,
            args: vec![VReg(1)],
        };
        assert!(!print.is_pure());
    }

    #[test]
    fn term_successors() {
        let t = Term::Switch {
            on: VReg(0),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(Term::Ret(None).successors(), vec![]);
    }

    #[test]
    fn map_succs_rewrites_all() {
        let mut t = Term::Br {
            cond: VReg(0),
            t: BlockId(1),
            f: BlockId(2),
        };
        t.map_succs(|b| BlockId(b.0 + 10));
        assert_eq!(
            t,
            Term::Br {
                cond: VReg(0),
                t: BlockId(11),
                f: BlockId(12)
            }
        );
    }
}
