//! Function and program containers, with basic CFG utilities.

use crate::ids::{BlockId, IrTy, VReg};
use crate::inst::{Inst, Term};
use std::collections::HashMap;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions, in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

impl Block {
    /// An empty block ending in a return (placeholder during construction).
    pub fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: Term::Ret(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// `static` (pure) qualifier from the source.
    pub is_static: bool,
    /// Parameter registers, in order.
    pub params: Vec<VReg>,
    /// Return type; `None` for void.
    pub ret_ty: Option<IrTy>,
    /// Type of every virtual register, indexed by register number.
    pub vreg_tys: Vec<IrTy>,
    /// The blocks; `BlockId` indexes this vector.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Names of source variables (diagnostics only).
    pub vreg_names: HashMap<VReg, String>,
}

impl FuncIr {
    /// A new function with no blocks yet.
    pub fn new(name: impl Into<String>) -> FuncIr {
        FuncIr {
            name: name.into(),
            is_static: false,
            params: Vec::new(),
            ret_ty: None,
            vreg_tys: Vec::new(),
            blocks: Vec::new(),
            entry: BlockId(0),
            vreg_names: HashMap::new(),
        }
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: IrTy) -> VReg {
        let r = VReg(self.vreg_tys.len() as u32);
        self.vreg_tys.push(ty);
        r
    }

    /// Allocate a fresh basic block.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        b
    }

    /// Access a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// The type of a register.
    pub fn ty(&self, r: VReg) -> IrTy {
        self.vreg_tys[r.index()]
    }

    /// Number of virtual registers.
    pub fn n_vregs(&self) -> usize {
        self.vreg_tys.len()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// omitted).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some((b, i)) = stack.last_mut() {
            let succs = self.block(*b).term.successors();
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(*b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Total instruction count (excluding annotations), a proxy for the
    /// paper's Table 1 "Instructions" column.
    pub fn instruction_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.iter().filter(|i| !i.is_annotation()).count() + 1)
            .sum()
    }

    /// True if the function contains any annotation (has a dynamic region).
    pub fn has_annotations(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| b.insts.iter().any(Inst::is_annotation))
    }
}

/// A lowered program: all functions, with call targets resolved by index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramIr {
    /// The functions; `Callee::Func.index` indexes this vector.
    pub funcs: Vec<FuncIr>,
}

impl ProgramIr {
    /// Find a function index by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncIr> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpo_visits_entry_first_and_skips_unreachable() {
        let mut f = FuncIr::new("t");
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let _unreachable = f.new_block();
        f.entry = b0;
        f.block_mut(b0).term = Term::Jmp(b1);
        f.block_mut(b1).term = Term::Jmp(b2);
        f.block_mut(b2).term = Term::Ret(None);
        let rpo = f.reverse_postorder();
        assert_eq!(rpo, vec![b0, b1, b2]);
    }

    #[test]
    fn predecessors_cover_branches() {
        let mut f = FuncIr::new("t");
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.entry = b0;
        let c = f.new_vreg(IrTy::Int);
        f.block_mut(b0).term = Term::Br {
            cond: c,
            t: b1,
            f: b2,
        };
        f.block_mut(b1).term = Term::Jmp(b2);
        f.block_mut(b2).term = Term::Ret(None);
        let preds = f.predecessors();
        assert_eq!(preds[b2.index()], vec![b0, b1]);
    }

    #[test]
    fn vreg_types_tracked() {
        let mut f = FuncIr::new("t");
        let a = f.new_vreg(IrTy::Int);
        let b = f.new_vreg(IrTy::Float);
        assert_eq!(f.ty(a), IrTy::Int);
        assert_eq!(f.ty(b), IrTy::Float);
        assert_eq!(f.n_vregs(), 2);
    }
}
