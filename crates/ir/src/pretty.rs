//! IR pretty printer (diagnostics and test assertions).

use crate::func::{FuncIr, ProgramIr};
use crate::ids::VReg;
use crate::inst::{Callee, Inst, Term};
use std::fmt::Write as _;

fn reg(f: &FuncIr, r: VReg) -> String {
    match f.vreg_names.get(&r) {
        Some(n) => format!("{r}({n})"),
        None => r.to_string(),
    }
}

/// Render one instruction.
pub fn inst_to_string(f: &FuncIr, i: &Inst) -> String {
    match i {
        Inst::ConstI { dst, v } => format!("{} = const {v}", reg(f, *dst)),
        Inst::ConstF { dst, v } => format!("{} = const {v:?}", reg(f, *dst)),
        Inst::Copy { dst, src } => format!("{} = {}", reg(f, *dst), reg(f, *src)),
        Inst::IBin { op, dst, a, b } => {
            format!("{} = {op:?}.i {}, {}", reg(f, *dst), reg(f, *a), reg(f, *b))
        }
        Inst::FBin { op, dst, a, b } => {
            format!("{} = {op:?}.f {}, {}", reg(f, *dst), reg(f, *a), reg(f, *b))
        }
        Inst::ICmp { cc, dst, a, b } => {
            format!(
                "{} = cmp.{cc:?}.i {}, {}",
                reg(f, *dst),
                reg(f, *a),
                reg(f, *b)
            )
        }
        Inst::FCmp { cc, dst, a, b } => {
            format!(
                "{} = cmp.{cc:?}.f {}, {}",
                reg(f, *dst),
                reg(f, *a),
                reg(f, *b)
            )
        }
        Inst::Un { op, dst, src } => format!("{} = {op:?} {}", reg(f, *dst), reg(f, *src)),
        Inst::Load {
            ty,
            dst,
            base,
            idx,
            is_static,
        } => format!(
            "{} = load.{ty}{} [{} + {}]",
            reg(f, *dst),
            if *is_static { "@" } else { "" },
            reg(f, *base),
            reg(f, *idx)
        ),
        Inst::Store { ty, base, idx, src } => {
            format!(
                "store.{ty} [{} + {}], {}",
                reg(f, *base),
                reg(f, *idx),
                reg(f, *src)
            )
        }
        Inst::Call { callee, dst, args } => {
            let target = match callee {
                Callee::Func { index, is_static } => {
                    format!("fn#{index}{}", if *is_static { " (static)" } else { "" })
                }
                Callee::Host(h) => format!("host {h}"),
            };
            let args: Vec<String> = args.iter().map(|a| reg(f, *a)).collect();
            match dst {
                Some(d) => format!("{} = call {target}({})", reg(f, *d), args.join(", ")),
                None => format!("call {target}({})", args.join(", ")),
            }
        }
        Inst::MakeStatic { vars } => {
            let parts: Vec<String> = vars
                .iter()
                .map(|(v, p)| format!("{} [{p:?}]", reg(f, *v)))
                .collect();
            format!("make_static({})", parts.join(", "))
        }
        Inst::MakeDynamic { vars } => {
            let parts: Vec<String> = vars.iter().map(|v| reg(f, *v)).collect();
            format!("make_dynamic({})", parts.join(", "))
        }
        Inst::Promote { var } => format!("promote({})", reg(f, *var)),
    }
}

/// Render a terminator.
pub fn term_to_string(f: &FuncIr, t: &Term) -> String {
    match t {
        Term::Jmp(b) => format!("jmp {b}"),
        Term::Br { cond, t, f: fb } => format!("br {} ? {t} : {fb}", reg(f, *cond)),
        Term::Switch { on, cases, default } => {
            let mut s = format!("switch {} [", reg(f, *on));
            for (k, b) in cases {
                let _ = write!(s, "{k} => {b}, ");
            }
            let _ = write!(s, "_ => {default}]");
            s
        }
        Term::Ret(Some(v)) => format!("ret {}", reg(f, *v)),
        Term::Ret(None) => "ret".into(),
    }
}

/// Render a function.
pub fn func_to_string(f: &FuncIr) -> String {
    let mut s = String::new();
    let params: Vec<String> = f.params.iter().map(|p| reg(f, *p)).collect();
    let _ = writeln!(
        s,
        "{}fn {}({}) -> {:?} (entry {}):",
        if f.is_static { "static " } else { "" },
        f.name,
        params.join(", "),
        f.ret_ty,
        f.entry
    );
    for (i, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "  bb{i}:");
        for inst in &b.insts {
            let _ = writeln!(s, "    {}", inst_to_string(f, inst));
        }
        let _ = writeln!(s, "    {}", term_to_string(f, &b.term));
    }
    s
}

/// Render a program.
pub fn program_to_string(p: &ProgramIr) -> String {
    let mut s = String::new();
    for f in &p.funcs {
        s.push_str(&func_to_string(f));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    #[test]
    fn renders_named_registers_and_blocks() {
        let ir = lower_program(&parse_program("int f(int a) { return a + 1; }").unwrap()).unwrap();
        let s = func_to_string(&ir.funcs[0]);
        assert!(s.contains("fn f"));
        assert!(s.contains("(a)"));
        assert!(s.contains("bb0"));
        assert!(s.contains("ret"));
    }
}
