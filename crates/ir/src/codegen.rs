//! Static code generation: IR → VM code, ignoring annotations.
//!
//! This produces the paper's "statically compiled version", which "is
//! compiled by ignoring the annotations in the application source" (§3.3).
//! Virtual registers map directly onto VM registers (register pressure is
//! outside the performance model); integer constants are folded into
//! immediate operand fields where all their uses allow it, mirroring what
//! any RISC compiler does with literal fields.

use crate::analysis::liveness;
use crate::func::{FuncIr, ProgramIr};
use crate::ids::{BlockId, VReg};
use crate::inst::{Callee, Inst, Term};
use dyc_vm::{CodeFunc, FuncId, Instr, Module, Operand};
use std::collections::HashMap;

/// A point at which the emitted code hands control to the run-time system:
/// the instruction at `(block, inst_idx)` (a `MakeStatic`) is replaced by a
/// `Dispatch` to site `point` passing the live variables `args`, followed
/// by a return of the dispatch result. This is how a *dynamic region entry*
/// is compiled into the otherwise-static code of an annotated function.
#[derive(Debug, Clone)]
pub struct DispatchSplice {
    /// Block containing the `make_static`.
    pub block: BlockId,
    /// Instruction index of the `make_static` within the block.
    pub inst_idx: usize,
    /// Run-time site id to dispatch to.
    pub point: u32,
    /// Live variables passed to the dispatch (key vars + pass-throughs).
    pub args: Vec<VReg>,
}

/// Generate a VM module for the whole program. Function `i` in the IR
/// becomes `FuncId(i)` in the module.
pub fn codegen_program(p: &ProgramIr) -> Module {
    let mut m = Module::new();
    for f in &p.funcs {
        let id = m.add_func(codegen_func(f));
        debug_assert_eq!(id, FuncId(p.func_index(&f.name).unwrap() as u32));
    }
    m
}

/// Generate VM code for one function, ignoring annotations.
pub fn codegen_func(f: &FuncIr) -> CodeFunc {
    codegen_func_with_splices(f, &[])
}

/// Generate VM code for one function, replacing each spliced `make_static`
/// site with a `Dispatch` to the run-time system (the *driver stub* used by
/// the dynamic build).
pub fn codegen_func_with_splices(f: &FuncIr, splices: &[DispatchSplice]) -> CodeFunc {
    let lv = liveness(f);
    // Scratch register for switch lowering.
    let scratch = f.n_vregs() as u32;
    let mut out = CodeFunc::new(f.name.clone(), f.params.len(), f.n_vregs() + 1);

    let layout = f.reverse_postorder();
    let mut block_start: HashMap<BlockId, u32> = HashMap::new();
    // (vm instruction index, target block) pairs needing patching.
    let mut fixups: Vec<(u32, BlockId)> = Vec::new();

    for (li, &b) in layout.iter().enumerate() {
        block_start.insert(b, out.len() as u32);
        let block = f.block(b);
        let live_out = &lv.live_out[b.index()];
        let splice = splices.iter().find(|s| s.block == b);
        let fold_ok = fold_analysis(block, live_out, splice);

        // Emit instructions, tracking current immediate bindings.
        let mut spliced = false;
        let mut imm: HashMap<VReg, i64> = HashMap::new();
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(s) = splice {
                if i == s.inst_idx {
                    // Replace the make_static with a region-entry dispatch.
                    let dst = f.ret_ty.map(|_| scratch);
                    out.push(Instr::Dispatch {
                        point: s.point,
                        dst,
                        args: s.args.iter().map(|v| v.0).collect(),
                    });
                    out.push(Instr::Ret { src: dst });
                    spliced = true;
                    break;
                }
            }
            emit_inst(
                f,
                &mut out,
                inst,
                &mut imm,
                fold_ok.get(&i).copied().unwrap_or(false),
            );
        }

        if spliced {
            continue;
        }
        // Terminator, with fallthrough to the next block in layout.
        let next = layout.get(li + 1).copied();
        emit_term(&mut out, &block.term, next, scratch, &mut fixups);
    }

    patch_branch_fixups(&mut out, &fixups, &block_start);
    out
}

/// Generate a *generic continuation* for a region: plain (unspecialized)
/// code that resumes execution at `(block, inst_idx)` — a region entry or
/// internal promotion point — taking `params` (the live variables the
/// dispatch passes, in dispatch-argument order) as its parameters.
/// `consts` carries the site's baked static context (an internal site's
/// `base_store`), materialized as literal moves in the preamble because
/// those values are *not* passed at dispatch. Annotations vanish exactly
/// as in the static build, so any later `make_static`/`promote` in the
/// region runs through unspecialized.
///
/// This is the concurrent runtime's single-flight *fallback* path: a
/// thread that loses the race to specialize a (site, key) can invoke this
/// continuation immediately instead of blocking on the winner.
pub fn codegen_region_generic(
    f: &FuncIr,
    entry: BlockId,
    inst_idx: usize,
    params: &[VReg],
    consts: &[(VReg, dyc_vm::Value)],
) -> CodeFunc {
    let lv = liveness(f);
    let scratch = f.n_vregs() as u32;
    // Registers: every vreg + the switch scratch + one relocation
    // temporary per parameter (see the preamble below).
    let name = format!("{}$generic_b{}_i{}", f.name, entry.index(), inst_idx);
    let mut out = CodeFunc::new(name, params.len(), f.n_vregs() + 1 + params.len());

    // Preamble: the VM places arguments in registers 0..n, but the region
    // body reads each value from its vreg's own register. A direct move
    // loop could clobber a still-pending source, so relocate in two
    // phases through the temporaries above the scratch register.
    if params.iter().enumerate().any(|(i, v)| v.0 != i as u32) {
        let mv = |dst: u32, src: u32, v: &VReg| {
            if f.ty(*v) == crate::ids::IrTy::Float {
                Instr::FMov { dst, src }
            } else {
                Instr::Mov { dst, src }
            }
        };
        for (i, v) in params.iter().enumerate() {
            out.push(mv(scratch + 1 + i as u32, i as u32, v));
        }
        for (i, v) in params.iter().enumerate() {
            out.push(mv(v.0, scratch + 1 + i as u32, v));
        }
    }
    // Baked static context (disjoint from `params` by construction).
    for (v, val) in consts {
        match val {
            dyc_vm::Value::I(i) => out.push(Instr::MovI { dst: v.0, imm: *i }),
            dyc_vm::Value::F(x) => out.push(Instr::MovF { dst: v.0, imm: *x }),
        };
    }

    let layout = f.reverse_postorder();
    let mut block_start: HashMap<BlockId, u32> = HashMap::new();
    let mut fixups: Vec<(u32, BlockId)> = Vec::new();

    // The entry tail: the entry block from `inst_idx` on. Immediate
    // folding is disabled here — a constant defined before the entry
    // point arrives as a parameter, not as a known literal.
    {
        let block = f.block(entry);
        let mut imm: HashMap<VReg, i64> = HashMap::new();
        for inst in &block.insts[inst_idx..] {
            emit_inst(f, &mut out, inst, &mut imm, false);
        }
        emit_term(
            &mut out,
            &block.term,
            layout.first().copied(),
            scratch,
            &mut fixups,
        );
    }

    // Then every block in the normal layout: loop-back edges (including
    // into the entry block's own start) land on these full copies.
    for (li, &b) in layout.iter().enumerate() {
        block_start.insert(b, out.len() as u32);
        let block = f.block(b);
        let fold_ok = fold_analysis(block, &lv.live_out[b.index()], None);
        let mut imm: HashMap<VReg, i64> = HashMap::new();
        for (i, inst) in block.insts.iter().enumerate() {
            emit_inst(
                f,
                &mut out,
                inst,
                &mut imm,
                fold_ok.get(&i).copied().unwrap_or(false),
            );
        }
        let next = layout.get(li + 1).copied();
        emit_term(&mut out, &block.term, next, scratch, &mut fixups);
    }

    patch_branch_fixups(&mut out, &fixups, &block_start);
    out
}

/// Decide which in-block integer constants can live purely in immediate
/// fields (all uses are imm-capable and not live-out). Returns
/// `inst idx -> ok` for the block's `ConstI`s.
fn fold_analysis(
    block: &crate::func::Block,
    live_out: &std::collections::HashSet<VReg>,
    splice: Option<&DispatchSplice>,
) -> HashMap<usize, bool> {
    let mut fold_ok: HashMap<usize, bool> = HashMap::new(); // inst idx -> ok
    let mut latest_def: HashMap<VReg, usize> = HashMap::new(); // vreg -> inst idx
    for (i, inst) in block.insts.iter().enumerate() {
        if let Some(s) = splice {
            if i == s.inst_idx {
                // The dispatch reads every arg from a register, so a
                // constant feeding it must be materialized; nothing
                // past the splice is emitted.
                for a in &s.args {
                    if let Some(&di) = latest_def.get(a) {
                        fold_ok.insert(di, false);
                    }
                }
                return fold_ok;
            }
        }
        // Check uses first (an inst may read its own previous value).
        let imm_positions = imm_capable_uses(inst);
        for u in inst.uses() {
            if let Some(&di) = latest_def.get(&u) {
                if !imm_positions.contains(&u) {
                    fold_ok.insert(di, false);
                }
            }
        }
        crate::analysis::annotation_uses(inst, |v| {
            if let Some(&di) = latest_def.get(&v) {
                fold_ok.insert(di, false);
            }
        });
        if let Some(d) = inst.def() {
            if let Inst::ConstI { .. } = inst {
                fold_ok.insert(i, true);
                latest_def.insert(d, i);
            } else {
                latest_def.remove(&d);
            }
        }
    }
    for u in block.term.uses() {
        if let Some(&di) = latest_def.get(&u) {
            fold_ok.insert(di, false);
        }
    }
    for (v, di) in &latest_def {
        if live_out.contains(v) {
            fold_ok.insert(*di, false);
        }
    }
    fold_ok
}

/// Lower one IR instruction, tracking current immediate bindings in `imm`.
/// `fold_this` is the [`fold_analysis`] verdict for a `ConstI` at this
/// position.
fn emit_inst(
    f: &FuncIr,
    out: &mut CodeFunc,
    inst: &Inst,
    imm: &mut HashMap<VReg, i64>,
    fold_this: bool,
) {
    if let Some(d) = inst.def() {
        // A redefinition ends any immediate binding.
        if !matches!(inst, Inst::ConstI { .. }) {
            imm.remove(&d);
        }
    }
    match inst {
        Inst::ConstI { dst, v } => {
            if fold_this {
                imm.insert(*dst, *v);
            } else {
                imm.remove(dst);
                out.push(Instr::MovI {
                    dst: dst.0,
                    imm: *v,
                });
            }
        }
        Inst::ConstF { dst, v } => {
            out.push(Instr::MovF {
                dst: dst.0,
                imm: *v,
            });
        }
        Inst::Copy { dst, src } => {
            // Float moves run in the FP pipeline (and cost like an
            // FP op on the 21164) — keep both builds honest.
            if f.ty(*dst) == crate::ids::IrTy::Float {
                out.push(Instr::FMov {
                    dst: dst.0,
                    src: src.0,
                });
            } else {
                out.push(Instr::Mov {
                    dst: dst.0,
                    src: src.0,
                });
            }
        }
        Inst::IBin { op, dst, a, b } => {
            let bo = operand(imm, *b);
            out.push(Instr::IAlu {
                op: *op,
                dst: dst.0,
                a: a.0,
                b: bo,
            });
        }
        Inst::FBin { op, dst, a, b } => {
            out.push(Instr::FAlu {
                op: *op,
                dst: dst.0,
                a: a.0,
                b: b.0,
            });
        }
        Inst::ICmp { cc, dst, a, b } => {
            let bo = operand(imm, *b);
            out.push(Instr::ICmp {
                cc: *cc,
                dst: dst.0,
                a: a.0,
                b: bo,
            });
        }
        Inst::FCmp { cc, dst, a, b } => {
            out.push(Instr::FCmp {
                cc: *cc,
                dst: dst.0,
                a: a.0,
                b: b.0,
            });
        }
        Inst::Un { op, dst, src } => {
            out.push(Instr::Un {
                op: *op,
                dst: dst.0,
                src: src.0,
            });
        }
        Inst::Load {
            ty, dst, base, idx, ..
        } => {
            let io = operand(imm, *idx);
            out.push(Instr::Load {
                ty: ty.vm_ty(),
                dst: dst.0,
                base: base.0,
                idx: io,
            });
        }
        Inst::Store { ty, base, idx, src } => {
            let io = operand(imm, *idx);
            out.push(Instr::Store {
                ty: ty.vm_ty(),
                base: base.0,
                idx: io,
                src: src.0,
            });
        }
        Inst::Call { callee, dst, args } => {
            let args: Vec<u32> = args.iter().map(|a| a.0).collect();
            match callee {
                Callee::Func { index, .. } => out.push(Instr::Call {
                    func: FuncId(*index as u32),
                    dst: dst.map(|d| d.0),
                    args,
                }),
                Callee::Host(h) => out.push(Instr::CallHost {
                    f: *h,
                    dst: dst.map(|d| d.0),
                    args,
                }),
            };
        }
        // Annotations vanish in the static build.
        Inst::MakeStatic { .. } | Inst::MakeDynamic { .. } | Inst::Promote { .. } => {}
    }
}

/// Lower a block terminator, with fallthrough to `next` when possible.
fn emit_term(
    out: &mut CodeFunc,
    term: &Term,
    next: Option<BlockId>,
    scratch: u32,
    fixups: &mut Vec<(u32, BlockId)>,
) {
    match term {
        Term::Jmp(t) => {
            if Some(*t) != next {
                let at = out.push(Instr::Jmp { target: 0 });
                fixups.push((at, *t));
            }
        }
        Term::Br { cond, t, f: fb } => {
            if Some(*fb) == next {
                let at = out.push(Instr::Brnz {
                    cond: cond.0,
                    target: 0,
                });
                fixups.push((at, *t));
            } else if Some(*t) == next {
                let at = out.push(Instr::Brz {
                    cond: cond.0,
                    target: 0,
                });
                fixups.push((at, *fb));
            } else {
                let at = out.push(Instr::Brnz {
                    cond: cond.0,
                    target: 0,
                });
                fixups.push((at, *t));
                let at2 = out.push(Instr::Jmp { target: 0 });
                fixups.push((at2, *fb));
            }
        }
        Term::Switch { on, cases, default } => {
            // Compare-and-branch chain (sparse cases).
            for (k, target) in cases {
                out.push(Instr::ICmp {
                    cc: dyc_vm::Cc::Eq,
                    dst: scratch,
                    a: on.0,
                    b: Operand::Imm(*k),
                });
                let at = out.push(Instr::Brnz {
                    cond: scratch,
                    target: 0,
                });
                fixups.push((at, *target));
            }
            if Some(*default) != next {
                let at = out.push(Instr::Jmp { target: 0 });
                fixups.push((at, *default));
            }
        }
        Term::Ret(v) => {
            out.push(Instr::Ret {
                src: v.map(|r| r.0),
            });
        }
    }
}

fn patch_branch_fixups(
    out: &mut CodeFunc,
    fixups: &[(u32, BlockId)],
    starts: &HashMap<BlockId, u32>,
) {
    for (at, target) in fixups {
        let dest = starts[target];
        match &mut out.code[*at as usize] {
            Instr::Jmp { target } | Instr::Brz { target, .. } | Instr::Brnz { target, .. } => {
                *target = dest;
            }
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }
}

/// Registers appearing in immediate-capable positions of `inst`.
fn imm_capable_uses(inst: &Inst) -> Vec<VReg> {
    match inst {
        Inst::IBin { b, .. } | Inst::ICmp { b, .. } => vec![*b],
        Inst::Load { idx, .. } => vec![*idx],
        Inst::Store { idx, .. } => vec![*idx],
        _ => vec![],
    }
}

fn operand(imm: &HashMap<VReg, i64>, r: VReg) -> Operand {
    match imm.get(&r) {
        Some(v) => Operand::Imm(*v),
        None => Operand::Reg(r.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::opt::optimize_program;
    use dyc_lang::parse_program;
    use dyc_vm::{CostModel, Value, Vm};

    fn compile(src: &str) -> (Module, FuncId) {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        optimize_program(&mut ir);
        crate::verify::verify_program(&ir).unwrap();
        let m = codegen_program(&ir);
        (m, FuncId(0))
    }

    fn run_int(src: &str, args: &[Value]) -> i64 {
        let (mut m, id) = compile(src);
        let mut vm = Vm::without_icache(CostModel::unit());
        vm.set_step_limit(1_000_000);
        vm.call(&mut m, id, args).unwrap().unwrap().as_i()
    }

    #[test]
    fn compiles_and_runs_arithmetic() {
        assert_eq!(
            run_int(
                "int f(int a, int b) { return a * b + 3; }",
                &[Value::I(6), Value::I(7)]
            ),
            45
        );
    }

    #[test]
    fn compiles_loops() {
        assert_eq!(
            run_int(
                "int f(int n) { int s = 0; for (int i = 1; i <= n; ++i) { s += i; } return s; }",
                &[Value::I(100)]
            ),
            5050
        );
    }

    #[test]
    fn compiles_branches_and_logic() {
        let src = "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } else { return 0; } }";
        assert_eq!(run_int(src, &[Value::I(1), Value::I(2)]), 1);
        assert_eq!(run_int(src, &[Value::I(1), Value::I(0)]), 0);
        assert_eq!(run_int(src, &[Value::I(0), Value::I(5)]), 0);
    }

    #[test]
    fn short_circuit_protects_division() {
        let src = "int f(int a, int b) { return b != 0 && a / b > 1; }";
        assert_eq!(run_int(src, &[Value::I(10), Value::I(0)]), 0);
        assert_eq!(run_int(src, &[Value::I(10), Value::I(4)]), 1);
    }

    #[test]
    fn compiles_switch() {
        let src = "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return 30; } return 0; }";
        assert_eq!(run_int(src, &[Value::I(1)]), 10);
        assert_eq!(run_int(src, &[Value::I(2)]), 20);
        assert_eq!(run_int(src, &[Value::I(9)]), 30);
    }

    #[test]
    fn compiles_memory_and_arrays() {
        let src =
            "float f(float a[][c], int c, int i, int j) { a[i][j] = 2.5; return a[i][j] * 2.0; }";
        let (mut m, id) = compile(src);
        let mut vm = Vm::without_icache(CostModel::unit());
        let base = vm.mem.alloc(16);
        let out = vm
            .call(
                &mut m,
                id,
                &[Value::I(base), Value::I(4), Value::I(2), Value::I(3)],
            )
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::F(5.0));
        assert_eq!(vm.mem.read_float(base + 11), 2.5);
    }

    #[test]
    fn compiles_calls_between_functions() {
        let src = "int sq(int x) { return x * x; } int f(int a) { return sq(a) + sq(a + 1); }";
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        optimize_program(&mut ir);
        let mut m = codegen_program(&ir);
        let f_id = m.func_by_name("f").unwrap();
        let mut vm = Vm::without_icache(CostModel::unit());
        assert_eq!(
            vm.call(&mut m, f_id, &[Value::I(3)])
                .unwrap()
                .unwrap()
                .as_i(),
            9 + 16
        );
    }

    #[test]
    fn constants_fold_into_immediates() {
        let (m, id) = compile("int f(int x) { return x + 1; }");
        let code = &m.func(id).code;
        // `x + 1` should be a single IAlu with an immediate — no MovI.
        assert!(code.iter().any(|i| matches!(
            i,
            Instr::IAlu {
                b: Operand::Imm(1),
                ..
            }
        )));
        assert!(!code.iter().any(|i| matches!(i, Instr::MovI { .. })));
    }

    #[test]
    fn annotations_do_not_emit_code() {
        let (m, id) =
            compile("int f(int x) { make_static(x); promote(x); make_dynamic(x); return x; }");
        // Only a Ret (and possibly a Mov) — no trace of annotations.
        assert!(m.func(id).len() <= 2);
    }

    #[test]
    fn host_calls_compile() {
        let src = "float f(float x) { return sqrt(x) + 1.0; }";
        let (mut m, id) = compile(src);
        let mut vm = Vm::without_icache(CostModel::unit());
        let out = vm.call(&mut m, id, &[Value::F(9.0)]).unwrap().unwrap();
        assert_eq!(out, Value::F(4.0));
    }

    #[test]
    fn float_pipeline_end_to_end() {
        let src = r#"
            float f(float a[n], int n) {
                float s = 0.0;
                for (int i = 0; i < n; ++i) { s += a[i] * 2.0; }
                return s;
            }
        "#;
        let (mut m, id) = compile(src);
        let mut vm = Vm::without_icache(CostModel::unit());
        let base = vm.mem.alloc(4);
        vm.mem.write_floats(base, &[1.0, 2.0, 3.0, 4.0]);
        let out = vm
            .call(&mut m, id, &[Value::I(base), Value::I(4)])
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::F(20.0));
    }
}
