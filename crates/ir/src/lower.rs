//! Lowering: DyCL AST → typed CFG IR.
//!
//! Performs C-style type checking (implicit `int`→`float` widening, `int`
//! condition values), lowers short-circuit `&&`/`||` to control flow,
//! flattens 2-D array accesses to row-major addressing, and turns DyC
//! annotations into pseudo-instructions at their exact program points.

use crate::func::{FuncIr, ProgramIr};
use crate::ids::{BlockId, IrTy, VReg};
use crate::inst::{Callee, Inst, Term};
use dyc_lang::{AssignOp, BinOp, Expr, Function, LValue, Program, Stmt, Type, UnaryOp};
use dyc_vm::{Cc, FAluOp, HostFn, IAluOp, UnOp};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A type or name-resolution error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description of the problem.
    pub message: String,
    /// Function being lowered.
    pub function: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function '{}': {}", self.function, self.message)
    }
}

impl Error for LowerError {}

/// Signature collected in the first pass.
#[derive(Debug, Clone)]
struct Sig {
    index: usize,
    is_static: bool,
    ret: Option<IrTy>,
    /// Parameter IR types (arrays are `Int` base addresses).
    params: Vec<IrTy>,
}

/// Lower a whole program.
///
/// # Errors
///
/// Returns a [`LowerError`] for unknown names, arity mismatches, type
/// errors, or misuse of annotations.
pub fn lower_program(p: &Program) -> Result<ProgramIr, LowerError> {
    let mut sigs: HashMap<String, Sig> = HashMap::new();
    for (i, f) in p.functions.iter().enumerate() {
        let ret = match scalar_ty(&f.ret) {
            Some(t) => Some(t),
            None if f.ret == Type::Void => None,
            None => {
                return Err(LowerError {
                    message: "functions must return int, float or void".into(),
                    function: f.name.clone(),
                })
            }
        };
        let params = f
            .params
            .iter()
            .map(|pa| {
                if pa.is_array() {
                    IrTy::Int
                } else {
                    scalar_ty(&pa.ty).unwrap_or(IrTy::Int)
                }
            })
            .collect();
        if sigs
            .insert(
                f.name.clone(),
                Sig {
                    index: i,
                    is_static: f.is_static,
                    ret,
                    params,
                },
            )
            .is_some()
        {
            return Err(LowerError {
                message: format!("duplicate function '{}'", f.name),
                function: f.name.clone(),
            });
        }
    }

    let mut out = ProgramIr::default();
    for f in &p.functions {
        out.funcs.push(lower_function(f, &sigs)?);
    }
    Ok(out)
}

fn scalar_ty(t: &Type) -> Option<IrTy> {
    match t {
        Type::Int => Some(IrTy::Int),
        Type::Float => Some(IrTy::Float),
        Type::Ptr(_) => Some(IrTy::Int),
        Type::Void => None,
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    vreg: VReg,
    ty: IrTy,
    /// For array parameters: element type and dimension expressions.
    array: Option<ArrayInfo>,
}

#[derive(Debug, Clone)]
struct ArrayInfo {
    elem: IrTy,
    dims: Vec<Option<Expr>>,
}

struct Lowerer<'a> {
    f: FuncIr,
    sigs: &'a HashMap<String, Sig>,
    scopes: Vec<HashMap<String, VarInfo>>,
    cur: BlockId,
    /// Whether each block's terminator has been set explicitly.
    term_set: Vec<bool>,
    /// (break target, continue target) stack; `continue` may be `None`
    /// inside a `switch`.
    loop_stack: Vec<(BlockId, Option<BlockId>)>,
    fname: String,
}

fn lower_function(src: &Function, sigs: &HashMap<String, Sig>) -> Result<FuncIr, LowerError> {
    let mut f = FuncIr::new(src.name.clone());
    f.is_static = src.is_static;
    f.ret_ty = sigs[&src.name].ret;

    let mut lw = Lowerer {
        f,
        sigs,
        scopes: vec![HashMap::new()],
        cur: BlockId(0),
        term_set: Vec::new(),
        loop_stack: Vec::new(),
        fname: src.name.clone(),
    };
    let entry = lw.new_block();
    lw.f.entry = entry;
    lw.cur = entry;

    // Parameters occupy registers 0..n in order (matching the VM call
    // convention).
    for pa in &src.params {
        let (ty, array) = if pa.is_array() {
            let elem = scalar_ty(&pa.ty).ok_or_else(|| lw.err("array of void"))?;
            (
                IrTy::Int,
                Some(ArrayInfo {
                    elem,
                    dims: pa.dims.clone(),
                }),
            )
        } else {
            (
                scalar_ty(&pa.ty).ok_or_else(|| lw.err("void parameter"))?,
                None,
            )
        };
        let vreg = lw.f.new_vreg(ty);
        lw.f.params.push(vreg);
        lw.f.vreg_names.insert(vreg, pa.name.clone());
        lw.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(pa.name.clone(), VarInfo { vreg, ty, array });
    }

    for st in &src.body {
        lw.stmt(st)?;
    }
    // Implicit return at the end of the function. A non-void function
    // that falls off the end returns a defined zero: the region-entry
    // dispatch stub unconditionally forwards a return register for
    // non-void functions, so an undefined fall-off value would let the
    // specialized and unspecialized builds disagree.
    if !lw.term_set[lw.cur.index()] {
        match lw.f.ret_ty {
            None => lw.set_term(Term::Ret(None)),
            Some(ty) => {
                let dst = lw.temp(ty);
                match ty {
                    IrTy::Int => lw.emit(Inst::ConstI { dst, v: 0 }),
                    IrTy::Float => lw.emit(Inst::ConstF { dst, v: 0.0 }),
                }
                lw.set_term(Term::Ret(Some(dst)));
            }
        }
    }
    Ok(lw.f)
}

impl<'a> Lowerer<'a> {
    fn err(&self, msg: impl Into<String>) -> LowerError {
        LowerError {
            message: msg.into(),
            function: self.fname.clone(),
        }
    }

    fn new_block(&mut self) -> BlockId {
        let b = self.f.new_block();
        self.term_set.push(false);
        b
    }

    fn emit(&mut self, inst: Inst) {
        if !self.term_set[self.cur.index()] {
            self.f.block_mut(self.cur).insts.push(inst);
        }
    }

    fn set_term(&mut self, t: Term) {
        if !self.term_set[self.cur.index()] {
            self.f.block_mut(self.cur).term = t;
            self.term_set[self.cur.index()] = true;
        }
    }

    /// Jump to `b` (if the current block is still open) and make `b`
    /// current.
    fn goto(&mut self, b: BlockId) {
        self.set_term(Term::Jmp(b));
        self.cur = b;
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &str, ty: IrTy) -> VReg {
        let vreg = self.f.new_vreg(ty);
        self.f.vreg_names.insert(vreg, name.to_string());
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(
                name.to_string(),
                VarInfo {
                    vreg,
                    ty,
                    array: None,
                },
            );
        vreg
    }

    fn temp(&mut self, ty: IrTy) -> VReg {
        self.f.new_vreg(ty)
    }

    /// Coerce `(reg, ty)` to `want`, inserting a conversion if needed.
    fn coerce(&mut self, reg: VReg, ty: IrTy, want: IrTy) -> Result<VReg, LowerError> {
        if ty == want {
            return Ok(reg);
        }
        let dst = self.temp(want);
        let op = match (ty, want) {
            (IrTy::Int, IrTy::Float) => UnOp::IToF,
            (IrTy::Float, IrTy::Int) => UnOp::FToI,
            _ => unreachable!(),
        };
        self.emit(Inst::Un { op, dst, src: reg });
        Ok(dst)
    }

    // ---- statements ----

    fn stmt(&mut self, st: &Stmt) -> Result<(), LowerError> {
        match st {
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl { ty, inits } => {
                let ity = scalar_ty(ty).ok_or_else(|| self.err("cannot declare void variable"))?;
                for (name, init) in inits {
                    let init_val = match init {
                        Some(e) => {
                            let (r, t) = self.expr(e)?;
                            Some(self.coerce(r, t, ity)?)
                        }
                        None => None,
                    };
                    let vreg = self.declare(name, ity);
                    match init_val {
                        Some(src) => self.emit(Inst::Copy { dst: vreg, src }),
                        None => {
                            // Zero-initialize so the IR has no undefined reads.
                            match ity {
                                IrTy::Int => self.emit(Inst::ConstI { dst: vreg, v: 0 }),
                                IrTy::Float => self.emit(Inst::ConstF { dst: vreg, v: 0.0 }),
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::Assign { lv, op, rhs } => self.assign(lv, *op, rhs),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.cond_value(cond)?;
                let tb = self.new_block();
                let eb = self.new_block();
                let merge = if else_branch.is_some() {
                    self.new_block()
                } else {
                    eb
                };
                self.set_term(Term::Br {
                    cond: c,
                    t: tb,
                    f: eb,
                });
                self.cur = tb;
                self.stmt(then_branch)?;
                self.goto(merge);
                if let Some(e) = else_branch {
                    self.cur = eb;
                    self.stmt(e)?;
                    self.goto(merge);
                }
                self.cur = merge;
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.new_block();
                let body_b = self.new_block();
                let exit = self.new_block();
                self.goto(head);
                let c = self.cond_value(cond)?;
                self.set_term(Term::Br {
                    cond: c,
                    t: body_b,
                    f: exit,
                });
                self.cur = body_b;
                self.loop_stack.push((exit, Some(head)));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.goto(head);
                self.cur = exit;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let exit = self.new_block();
                self.goto(head);
                match cond {
                    Some(c) => {
                        let cv = self.cond_value(c)?;
                        self.set_term(Term::Br {
                            cond: cv,
                            t: body_b,
                            f: exit,
                        });
                    }
                    None => self.set_term(Term::Jmp(body_b)),
                }
                self.cur = body_b;
                self.loop_stack.push((exit, Some(step_b)));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.goto(step_b);
                if let Some(s) = step {
                    self.stmt(s)?;
                }
                self.goto(head);
                self.cur = exit;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let (on, ty) = self.expr(scrutinee)?;
                if ty != IrTy::Int {
                    return Err(self.err("switch scrutinee must be int"));
                }
                let exit = self.new_block();
                let mut case_blocks = Vec::new();
                for (k, _) in cases {
                    case_blocks.push((*k, self.new_block()));
                }
                let default_b = if default.is_empty() {
                    exit
                } else {
                    self.new_block()
                };
                self.set_term(Term::Switch {
                    on,
                    cases: case_blocks.clone(),
                    default: default_b,
                });
                for ((_, body), (_, b)) in cases.iter().zip(&case_blocks) {
                    self.cur = *b;
                    // `break` inside a case exits the switch (C semantics).
                    self.loop_stack
                        .push((exit, self.loop_stack.last().and_then(|l| l.1)));
                    self.scopes.push(HashMap::new());
                    for s in body {
                        self.stmt(s)?;
                    }
                    self.scopes.pop();
                    self.loop_stack.pop();
                    self.goto(exit);
                }
                if !default.is_empty() {
                    self.cur = default_b;
                    self.loop_stack
                        .push((exit, self.loop_stack.last().and_then(|l| l.1)));
                    self.scopes.push(HashMap::new());
                    for s in default {
                        self.stmt(s)?;
                    }
                    self.scopes.pop();
                    self.loop_stack.pop();
                    self.goto(exit);
                }
                self.cur = exit;
                Ok(())
            }
            Stmt::Break => {
                let (target, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("break outside loop"))?;
                self.set_term(Term::Jmp(target));
                // Continue lowering into a fresh (unreachable) block.
                let dead = self.new_block();
                self.cur = dead;
                Ok(())
            }
            Stmt::Continue => {
                let target = self
                    .loop_stack
                    .iter()
                    .rev()
                    .find_map(|(_, c)| *c)
                    .ok_or_else(|| self.err("continue outside loop"))?;
                self.set_term(Term::Jmp(target));
                let dead = self.new_block();
                self.cur = dead;
                Ok(())
            }
            Stmt::Return(e) => {
                let v = match (e, self.f.ret_ty) {
                    (Some(e), Some(want)) => {
                        let (r, t) = self.expr(e)?;
                        Some(self.coerce(r, t, want)?)
                    }
                    (None, None) => None,
                    (Some(_), None) => return Err(self.err("void function returns a value")),
                    (None, Some(_)) => return Err(self.err("non-void function returns no value")),
                };
                self.set_term(Term::Ret(v));
                let dead = self.new_block();
                self.cur = dead;
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::MakeStatic(vars) => {
                let mut out = Vec::new();
                for (name, policy) in vars {
                    let info = self.lookup(name).ok_or_else(|| {
                        self.err(format!("make_static of unknown variable '{name}'"))
                    })?;
                    out.push((info.vreg, *policy));
                }
                self.emit(Inst::MakeStatic { vars: out });
                Ok(())
            }
            Stmt::MakeDynamic(vars) => {
                let mut out = Vec::new();
                for name in vars {
                    let info = self.lookup(name).ok_or_else(|| {
                        self.err(format!("make_dynamic of unknown variable '{name}'"))
                    })?;
                    out.push(info.vreg);
                }
                self.emit(Inst::MakeDynamic { vars: out });
                Ok(())
            }
            Stmt::Promote(name) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("promote of unknown variable '{name}'")))?;
                self.emit(Inst::Promote { var: info.vreg });
                Ok(())
            }
        }
    }

    fn assign(&mut self, lv: &LValue, op: AssignOp, rhs: &Expr) -> Result<(), LowerError> {
        let bin = match op {
            AssignOp::Set => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
        };
        match lv {
            LValue::Var(name) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("assignment to unknown variable '{name}'")))?
                    .clone();
                if info.array.is_some() {
                    return Err(self.err(format!("cannot assign to array '{name}'")));
                }
                let (rv, rt) = match bin {
                    None => self.expr(rhs)?,
                    Some(b) => {
                        let lhs_e = Expr::Var(name.clone());
                        self.binary(b, &lhs_e, rhs)?
                    }
                };
                let src = self.coerce(rv, rt, info.ty)?;
                self.emit(Inst::Copy {
                    dst: info.vreg,
                    src,
                });
                Ok(())
            }
            LValue::Elem { base, indices } => {
                let (base_reg, idx, elem) = self.element_addr(base, indices)?;
                let (rv, rt) = match bin {
                    None => self.expr(rhs)?,
                    Some(b) => {
                        let lhs_e = Expr::Index {
                            base: base.clone(),
                            indices: indices.clone(),
                            is_static: false,
                        };
                        self.binary(b, &lhs_e, rhs)?
                    }
                };
                let src = self.coerce(rv, rt, elem)?;
                self.emit(Inst::Store {
                    ty: elem,
                    base: base_reg,
                    idx,
                    src,
                });
                Ok(())
            }
        }
    }

    /// Lower the address computation of `base[indices...]`, returning
    /// `(base register, flat index register, element type)`.
    fn element_addr(
        &mut self,
        base: &str,
        indices: &[Expr],
    ) -> Result<(VReg, VReg, IrTy), LowerError> {
        let info = self
            .lookup(base)
            .ok_or_else(|| self.err(format!("indexing unknown variable '{base}'")))?
            .clone();
        let arr = info
            .array
            .ok_or_else(|| self.err(format!("'{base}' is not an array")))?;
        if indices.len() != arr.dims.len() {
            return Err(self.err(format!(
                "'{base}' has {} dimension(s) but {} index(es) were given",
                arr.dims.len(),
                indices.len()
            )));
        }
        let flat = match indices.len() {
            1 => {
                let (i, it) = self.expr(&indices[0])?;
                self.coerce(i, it, IrTy::Int)?
            }
            2 => {
                // Row-major: i * ncols + j.
                let ncols_e = arr.dims[1]
                    .clone()
                    .ok_or_else(|| self.err(format!("'{base}' is missing its column dimension")))?;
                let (i, it) = self.expr(&indices[0])?;
                let i = self.coerce(i, it, IrTy::Int)?;
                let (n, nt) = self.expr(&ncols_e)?;
                let n = self.coerce(n, nt, IrTy::Int)?;
                let (j, jt) = self.expr(&indices[1])?;
                let j = self.coerce(j, jt, IrTy::Int)?;
                let row = self.temp(IrTy::Int);
                self.emit(Inst::IBin {
                    op: IAluOp::Mul,
                    dst: row,
                    a: i,
                    b: n,
                });
                let sum = self.temp(IrTy::Int);
                self.emit(Inst::IBin {
                    op: IAluOp::Add,
                    dst: sum,
                    a: row,
                    b: j,
                });
                sum
            }
            n => return Err(self.err(format!("{n}-dimensional arrays are not supported"))),
        };
        Ok((info.vreg, flat, arr.elem))
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<(VReg, IrTy), LowerError> {
        match e {
            Expr::IntLit(v) => {
                let dst = self.temp(IrTy::Int);
                self.emit(Inst::ConstI { dst, v: *v });
                Ok((dst, IrTy::Int))
            }
            Expr::FloatLit(v) => {
                let dst = self.temp(IrTy::Float);
                self.emit(Inst::ConstF { dst, v: *v });
                Ok((dst, IrTy::Float))
            }
            Expr::Var(name) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable '{name}'")))?;
                Ok((info.vreg, info.ty))
            }
            Expr::Unary(op, inner) => self.unary(*op, inner),
            Expr::Binary(op, l, r) => self.binary(*op, l, r),
            Expr::Index {
                base,
                indices,
                is_static,
            } => {
                let (base_reg, idx, elem) = self.element_addr(base, indices)?;
                let dst = self.temp(elem);
                self.emit(Inst::Load {
                    ty: elem,
                    dst,
                    base: base_reg,
                    idx,
                    is_static: *is_static,
                });
                Ok((dst, elem))
            }
            Expr::Call { name, args } => self.call(name, args),
        }
    }

    fn unary(&mut self, op: UnaryOp, inner: &Expr) -> Result<(VReg, IrTy), LowerError> {
        let (r, t) = self.expr(inner)?;
        match op {
            UnaryOp::Neg => {
                let dst = self.temp(t);
                let uop = if t == IrTy::Int {
                    UnOp::NegI
                } else {
                    UnOp::NegF
                };
                self.emit(Inst::Un {
                    op: uop,
                    dst,
                    src: r,
                });
                Ok((dst, t))
            }
            UnaryOp::Not => {
                // !x  ==  (x == 0)
                let c = self.cond_reg_from(r, t)?;
                let zero = self.temp(IrTy::Int);
                self.emit(Inst::ConstI { dst: zero, v: 0 });
                let dst = self.temp(IrTy::Int);
                self.emit(Inst::ICmp {
                    cc: Cc::Eq,
                    dst,
                    a: c,
                    b: zero,
                });
                Ok((dst, IrTy::Int))
            }
            UnaryOp::BitNot => {
                if t != IrTy::Int {
                    return Err(self.err("bitwise not on a float"));
                }
                let dst = self.temp(IrTy::Int);
                self.emit(Inst::Un {
                    op: UnOp::NotI,
                    dst,
                    src: r,
                });
                Ok((dst, IrTy::Int))
            }
            UnaryOp::CastInt => Ok((self.coerce(r, t, IrTy::Int)?, IrTy::Int)),
            UnaryOp::CastFloat => Ok((self.coerce(r, t, IrTy::Float)?, IrTy::Float)),
        }
    }

    /// Normalize a value into an int condition register (floats compare
    /// against 0.0, C-style).
    fn cond_reg_from(&mut self, r: VReg, t: IrTy) -> Result<VReg, LowerError> {
        match t {
            IrTy::Int => Ok(r),
            IrTy::Float => {
                let zero = self.temp(IrTy::Float);
                self.emit(Inst::ConstF { dst: zero, v: 0.0 });
                let dst = self.temp(IrTy::Int);
                self.emit(Inst::FCmp {
                    cc: Cc::Ne,
                    dst,
                    a: r,
                    b: zero,
                });
                Ok(dst)
            }
        }
    }

    /// Lower an expression used as a branch condition.
    fn cond_value(&mut self, e: &Expr) -> Result<VReg, LowerError> {
        let (r, t) = self.expr(e)?;
        self.cond_reg_from(r, t)
    }

    fn binary(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<(VReg, IrTy), LowerError> {
        if op.is_logical() {
            return self.short_circuit(op, l, r);
        }
        let (lr, lt) = self.expr(l)?;
        let (rr, rt) = self.expr(r)?;
        let both_int = lt == IrTy::Int && rt == IrTy::Int;

        if op.is_comparison() {
            let dst = self.temp(IrTy::Int);
            let cc = match op {
                BinOp::Eq => Cc::Eq,
                BinOp::Ne => Cc::Ne,
                BinOp::Lt => Cc::Lt,
                BinOp::Le => Cc::Le,
                BinOp::Gt => Cc::Gt,
                BinOp::Ge => Cc::Ge,
                _ => unreachable!(),
            };
            if both_int {
                self.emit(Inst::ICmp {
                    cc,
                    dst,
                    a: lr,
                    b: rr,
                });
            } else {
                let a = self.coerce(lr, lt, IrTy::Float)?;
                let b = self.coerce(rr, rt, IrTy::Float)?;
                self.emit(Inst::FCmp { cc, dst, a, b });
            }
            return Ok((dst, IrTy::Int));
        }

        match op {
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr | BinOp::Rem => {
                if !both_int {
                    return Err(self.err("bitwise/shift/remainder operators require ints"));
                }
                let iop = match op {
                    BinOp::BitAnd => IAluOp::And,
                    BinOp::BitOr => IAluOp::Or,
                    BinOp::BitXor => IAluOp::Xor,
                    BinOp::Shl => IAluOp::Shl,
                    BinOp::Shr => IAluOp::Shr,
                    BinOp::Rem => IAluOp::Rem,
                    _ => unreachable!(),
                };
                let dst = self.temp(IrTy::Int);
                self.emit(Inst::IBin {
                    op: iop,
                    dst,
                    a: lr,
                    b: rr,
                });
                Ok((dst, IrTy::Int))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                if both_int {
                    let iop = match op {
                        BinOp::Add => IAluOp::Add,
                        BinOp::Sub => IAluOp::Sub,
                        BinOp::Mul => IAluOp::Mul,
                        BinOp::Div => IAluOp::Div,
                        _ => unreachable!(),
                    };
                    let dst = self.temp(IrTy::Int);
                    self.emit(Inst::IBin {
                        op: iop,
                        dst,
                        a: lr,
                        b: rr,
                    });
                    Ok((dst, IrTy::Int))
                } else {
                    let fop = match op {
                        BinOp::Add => FAluOp::Add,
                        BinOp::Sub => FAluOp::Sub,
                        BinOp::Mul => FAluOp::Mul,
                        BinOp::Div => FAluOp::Div,
                        _ => unreachable!(),
                    };
                    let a = self.coerce(lr, lt, IrTy::Float)?;
                    let b = self.coerce(rr, rt, IrTy::Float)?;
                    let dst = self.temp(IrTy::Float);
                    self.emit(Inst::FBin { op: fop, dst, a, b });
                    Ok((dst, IrTy::Float))
                }
            }
            _ => unreachable!("logical and comparison handled above"),
        }
    }

    fn short_circuit(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<(VReg, IrTy), LowerError> {
        // res = bool(l); if (need-rhs) res = bool(r);
        let res = self.temp(IrTy::Int);
        let lc = self.cond_value(l)?;
        let zero = self.temp(IrTy::Int);
        self.emit(Inst::ConstI { dst: zero, v: 0 });
        self.emit(Inst::ICmp {
            cc: Cc::Ne,
            dst: res,
            a: lc,
            b: zero,
        });
        let rhs_b = self.new_block();
        let merge = self.new_block();
        match op {
            BinOp::And => self.set_term(Term::Br {
                cond: res,
                t: rhs_b,
                f: merge,
            }),
            BinOp::Or => self.set_term(Term::Br {
                cond: res,
                t: merge,
                f: rhs_b,
            }),
            _ => unreachable!(),
        }
        self.cur = rhs_b;
        let rc = self.cond_value(r)?;
        let zero2 = self.temp(IrTy::Int);
        self.emit(Inst::ConstI { dst: zero2, v: 0 });
        self.emit(Inst::ICmp {
            cc: Cc::Ne,
            dst: res,
            a: rc,
            b: zero2,
        });
        self.goto(merge);
        Ok((res, IrTy::Int))
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(VReg, IrTy), LowerError> {
        // User functions shadow host functions.
        if let Some(sig) = self.sigs.get(name).cloned() {
            if args.len() != sig.params.len() {
                return Err(self.err(format!(
                    "'{name}' expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                )));
            }
            let mut arg_regs = Vec::new();
            for (a, want) in args.iter().zip(&sig.params) {
                let (r, t) = self.expr(a)?;
                arg_regs.push(self.coerce(r, t, *want)?);
            }
            let (dst, ty) = match sig.ret {
                Some(t) => (Some(self.temp(t)), t),
                // Void calls still need a placeholder result type for the
                // expression grammar; it is never read.
                None => (None, IrTy::Int),
            };
            self.emit(Inst::Call {
                callee: Callee::Func {
                    index: sig.index,
                    is_static: sig.is_static,
                },
                dst,
                args: arg_regs,
            });
            let r = dst.unwrap_or_else(|| self.temp(IrTy::Int));
            if dst.is_none() {
                self.emit(Inst::ConstI { dst: r, v: 0 });
            }
            return Ok((r, ty));
        }
        let host =
            HostFn::by_name(name).ok_or_else(|| self.err(format!("unknown function '{name}'")))?;
        if args.len() != host.arity() {
            return Err(self.err(format!(
                "'{name}' expects {} argument(s), got {}",
                host.arity(),
                args.len()
            )));
        }
        let want = match host {
            HostFn::IAbs | HostFn::PrintI => IrTy::Int,
            _ => IrTy::Float,
        };
        let mut arg_regs = Vec::new();
        for a in args {
            let (r, t) = self.expr(a)?;
            arg_regs.push(self.coerce(r, t, want)?);
        }
        let ret = match host {
            HostFn::IAbs => Some(IrTy::Int),
            HostFn::PrintI | HostFn::PrintF => None,
            _ => Some(IrTy::Float),
        };
        let (dst, ty) = match ret {
            Some(t) => (Some(self.temp(t)), t),
            None => (None, IrTy::Int),
        };
        self.emit(Inst::Call {
            callee: Callee::Host(host),
            dst,
            args: arg_regs,
        });
        let r = match dst {
            Some(d) => d,
            None => {
                let z = self.temp(IrTy::Int);
                self.emit(Inst::ConstI { dst: z, v: 0 });
                z
            }
        };
        Ok((r, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_lang::parse_program;

    fn lower(src: &str) -> ProgramIr {
        lower_program(&parse_program(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> LowerError {
        lower_program(&parse_program(src).unwrap()).unwrap_err()
    }

    #[test]
    fn lowers_arithmetic_function() {
        let ir = lower("int add(int a, int b) { return a + b; }");
        let f = &ir.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret_ty, Some(IrTy::Int));
        // entry block: one IBin and a Ret.
        let entry = f.block(f.entry);
        assert!(matches!(
            entry.insts[0],
            Inst::IBin {
                op: IAluOp::Add,
                ..
            }
        ));
        assert!(matches!(entry.term, Term::Ret(Some(_))));
    }

    #[test]
    fn int_to_float_widening() {
        let ir = lower("float f(int a, float b) { return a + b; }");
        let f = &ir.funcs[0];
        let entry = f.block(f.entry);
        assert!(entry
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Un { op: UnOp::IToF, .. })));
        assert!(entry.insts.iter().any(|i| matches!(
            i,
            Inst::FBin {
                op: FAluOp::Add,
                ..
            }
        )));
    }

    #[test]
    fn two_dim_indexing_is_row_major() {
        let ir = lower("float f(float m[][c], int c, int i, int j) { return m[i][j]; }");
        let f = &ir.funcs[0];
        let entry = f.block(f.entry);
        // i * c + j then a load.
        assert!(entry.insts.iter().any(|i| matches!(
            i,
            Inst::IBin {
                op: IAluOp::Mul,
                ..
            }
        )));
        assert!(entry.insts.iter().any(|i| matches!(
            i,
            Inst::IBin {
                op: IAluOp::Add,
                ..
            }
        )));
        assert!(entry.insts.iter().any(|i| matches!(
            i,
            Inst::Load {
                is_static: false,
                ..
            }
        )));
    }

    #[test]
    fn static_load_flag_propagates() {
        let ir = lower("float f(float m[n], int n, int i) { return m@[i]; }");
        let f = &ir.funcs[0];
        assert!(f.block(f.entry).insts.iter().any(|i| matches!(
            i,
            Inst::Load {
                is_static: true,
                ..
            }
        )));
    }

    #[test]
    fn while_loop_builds_cycle() {
        let ir = lower("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let f = &ir.funcs[0];
        let preds = f.predecessors();
        // The loop head has two predecessors: entry and the body.
        assert!(preds.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn annotations_become_pseudo_instructions() {
        let ir = lower("void f(int x) { make_static(x); promote(x); make_dynamic(x); }");
        let f = &ir.funcs[0];
        let insts = &f.block(f.entry).insts;
        assert!(matches!(insts[0], Inst::MakeStatic { .. }));
        assert!(matches!(insts[1], Inst::Promote { .. }));
        assert!(matches!(insts[2], Inst::MakeDynamic { .. }));
        assert!(f.has_annotations());
    }

    #[test]
    fn switch_lowers_to_switch_term() {
        let ir = lower(
            "int f(int x) { int r = 0; switch (x) { case 1: r = 10; break; case 2: r = 20; break; default: r = 30; } return r; }",
        );
        let f = &ir.funcs[0];
        assert!(f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Term::Switch { .. })));
    }

    #[test]
    fn short_circuit_creates_control_flow() {
        let ir = lower("int f(int a, int b) { return a && 10 / b; }");
        let f = &ir.funcs[0];
        // Must contain a branch so `10 / b` is skipped when a == 0.
        assert!(f.blocks.iter().any(|b| matches!(b.term, Term::Br { .. })));
    }

    #[test]
    fn calls_resolve_user_then_host() {
        let ir = lower(
            "static float half(float x) { return x / 2.0; } float g(float y) { return half(cos(y)); }",
        );
        let g = ir.func("g").unwrap();
        let mut saw_user = false;
        let mut saw_host = false;
        for b in &g.blocks {
            for i in &b.insts {
                if let Inst::Call { callee, .. } = i {
                    match callee {
                        Callee::Func {
                            index: 0,
                            is_static: true,
                        } => saw_user = true,
                        Callee::Host(HostFn::Cos) => saw_host = true,
                        other => panic!("unexpected callee {other:?}"),
                    }
                }
            }
        }
        assert!(saw_user && saw_host);
    }

    #[test]
    fn error_on_unknown_variable() {
        let e = lower_err("int f() { return nope; }");
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn error_on_bad_arity() {
        let e = lower_err("float f(float x) { return pow(x); }");
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn error_on_float_modulo() {
        let e = lower_err("float f(float x) { return x % 2.0; }");
        assert!(e.message.contains("require ints"));
    }

    #[test]
    fn error_on_wrong_dim_count() {
        let e = lower_err("float f(float m[][c], int c, int i) { return m[i]; }");
        assert!(e.message.contains("2 dimension"));
    }

    #[test]
    fn break_exits_switch_not_loop() {
        // A `break` inside a case inside a loop must target the switch.
        let ir = lower(
            "int f(int n) { int s = 0; while (n > 0) { switch (n) { case 1: s = 1; break; default: s = 2; } n -= 1; } return s; }",
        );
        // Just check it lowers and has a loop back edge.
        let f = &ir.funcs[0];
        assert!(f.blocks.len() > 4);
    }

    #[test]
    fn declarations_are_zero_initialized() {
        let ir = lower("int f() { int x; return x; }");
        let f = &ir.funcs[0];
        assert!(matches!(
            f.block(f.entry).insts[0],
            Inst::ConstI { v: 0, .. }
        ));
    }

    #[test]
    fn duplicate_function_rejected() {
        let e = lower_err("int f() { return 1; } int f() { return 2; }");
        assert!(e.message.contains("duplicate function"));
    }
}
