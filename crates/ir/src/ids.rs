//! Identifier newtypes for the IR.

use std::fmt;

/// A virtual register. Source variables keep one `VReg` for their whole
/// lifetime (the IR is deliberately not SSA — DyC's binding-time analysis
/// is formulated over variables at program points, and so is ours);
/// expression temporaries get fresh registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl VReg {
    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// IR-level scalar types. Addresses (array bases) are `Int`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrTy {
    /// 64-bit integer (also booleans and addresses).
    Int,
    /// 64-bit float.
    Float,
}

impl IrTy {
    /// The corresponding VM memory-access type.
    pub fn vm_ty(self) -> dyc_vm::Ty {
        match self {
            IrTy::Int => dyc_vm::Ty::Int,
            IrTy::Float => dyc_vm::Ty::Float,
        }
    }
}

impl fmt::Display for IrTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrTy::Int => write!(f, "int"),
            IrTy::Float => write!(f, "float"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VReg(3).to_string(), "v3");
        assert_eq!(BlockId(1).to_string(), "bb1");
        assert_eq!(IrTy::Float.to_string(), "float");
    }

    #[test]
    fn vm_type_mapping() {
        assert_eq!(IrTy::Int.vm_ty(), dyc_vm::Ty::Int);
        assert_eq!(IrTy::Float.vm_ty(), dyc_vm::Ty::Float);
    }
}
