//! IR verifier: structural and type sanity checks.
//!
//! Run after lowering and after every optimization pass in tests, so a
//! broken transformation fails close to its cause.

use crate::func::{FuncIr, ProgramIr};
use crate::ids::IrTy;
use crate::inst::{Callee, Inst, Term};
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Description of the inconsistency.
    pub message: String,
    /// Function in which it was found.
    pub function: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in '{}': {}", self.function, self.message)
    }
}

impl Error for VerifyError {}

/// Verify a whole program.
///
/// # Errors
///
/// Returns the first inconsistency found.
pub fn verify_program(p: &ProgramIr) -> Result<(), VerifyError> {
    for f in &p.funcs {
        verify_func(f, Some(p))?;
    }
    Ok(())
}

/// Verify one function; pass the program for call checking when available.
///
/// # Errors
///
/// Returns the first inconsistency found.
pub fn verify_func(f: &FuncIr, prog: Option<&ProgramIr>) -> Result<(), VerifyError> {
    let fail = |msg: String| {
        Err(VerifyError {
            message: msg,
            function: f.name.clone(),
        })
    };

    if f.blocks.is_empty() {
        return fail("function has no blocks".into());
    }
    if f.entry.index() >= f.blocks.len() {
        return fail("entry block out of range".into());
    }
    for p in &f.params {
        if p.index() >= f.n_vregs() {
            return fail(format!("parameter {p} out of range"));
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        let ctx = |msg: String| format!("bb{bi}: {msg}");
        for inst in &b.insts {
            for u in inst.uses().into_iter().chain(inst.def()) {
                if u.index() >= f.n_vregs() {
                    return fail(ctx(format!("register {u} out of range")));
                }
            }
            match inst {
                Inst::Copy { dst, src } if f.ty(*dst) != f.ty(*src) => {
                    return fail(ctx(format!("copy mixes types: {dst} = {src}")));
                }
                Inst::ConstI { dst, .. } if f.ty(*dst) != IrTy::Int => {
                    return fail(ctx(format!("int constant into float register {dst}")));
                }
                Inst::ConstF { dst, .. } if f.ty(*dst) != IrTy::Float => {
                    return fail(ctx(format!("float constant into int register {dst}")));
                }
                Inst::IBin { dst, a, b: rb, .. } => {
                    for r in [dst, a, rb] {
                        if f.ty(*r) != IrTy::Int {
                            return fail(ctx(format!("int ALU on float register {r}")));
                        }
                    }
                }
                Inst::FBin { dst, a, b: rb, .. } => {
                    for r in [dst, a, rb] {
                        if f.ty(*r) != IrTy::Float {
                            return fail(ctx(format!("float ALU on int register {r}")));
                        }
                    }
                }
                Inst::ICmp { dst, a, b: rb, .. }
                    if (f.ty(*dst) != IrTy::Int
                        || f.ty(*a) != IrTy::Int
                        || f.ty(*rb) != IrTy::Int) =>
                {
                    return fail(ctx("icmp type mismatch".into()));
                }
                Inst::FCmp { dst, a, b: rb, .. }
                    if (f.ty(*dst) != IrTy::Int
                        || f.ty(*a) != IrTy::Float
                        || f.ty(*rb) != IrTy::Float) =>
                {
                    return fail(ctx("fcmp type mismatch".into()));
                }
                Inst::Load {
                    ty, dst, base, idx, ..
                } => {
                    if f.ty(*dst) != *ty {
                        return fail(ctx("load type mismatch".into()));
                    }
                    if f.ty(*base) != IrTy::Int || f.ty(*idx) != IrTy::Int {
                        return fail(ctx("load address must be int".into()));
                    }
                }
                Inst::Store { ty, base, idx, src } => {
                    if f.ty(*src) != *ty {
                        return fail(ctx("store type mismatch".into()));
                    }
                    if f.ty(*base) != IrTy::Int || f.ty(*idx) != IrTy::Int {
                        return fail(ctx("store address must be int".into()));
                    }
                }
                Inst::Call { callee, dst, args } => match callee {
                    Callee::Func { index, .. } => {
                        if let Some(prog) = prog {
                            let Some(target) = prog.funcs.get(*index) else {
                                return fail(ctx(format!("call to unknown function #{index}")));
                            };
                            if target.params.len() != args.len() {
                                return fail(ctx(format!(
                                    "call to '{}' passes {} args, expects {}",
                                    target.name,
                                    args.len(),
                                    target.params.len()
                                )));
                            }
                            match (dst, target.ret_ty) {
                                (Some(d), Some(rt)) if f.ty(*d) != rt => {
                                    return fail(ctx("call result type mismatch".into()))
                                }
                                (Some(_), None) => {
                                    return fail(ctx("call captures void result".into()))
                                }
                                _ => {}
                            }
                        }
                    }
                    Callee::Host(h) => {
                        if args.len() != h.arity() {
                            return fail(ctx(format!("host call '{h}' arity mismatch")));
                        }
                        if dst.is_some() && !h.has_result() {
                            return fail(ctx(format!("host call '{h}' has no result")));
                        }
                    }
                },
                _ => {}
            }
        }
        for s in b.term.successors() {
            if s.index() >= f.blocks.len() {
                return fail(ctx(format!("terminator targets out-of-range {s}")));
            }
        }
        if let Term::Ret(v) = &b.term {
            match (v, f.ret_ty) {
                (Some(r), Some(rt)) if f.ty(*r) != rt => {
                    return fail(ctx("return type mismatch".into()));
                }
                (Some(_), None) => return fail(ctx("void function returns a value".into())),
                // Returning no value from a non-void function is allowed
                // only for the synthetic unreachable blocks lowering leaves
                // behind; the VM would fault if reached, and reachable cases
                // are caught by tests running the code.
                _ => {}
            }
        }
    }

    // A `static` (pure) function must be side-effect free: no stores and no
    // impure calls, since the specializer executes it at dynamic compile
    // time (§2.2.6 static calls).
    if f.is_static {
        for b in &f.blocks {
            for inst in &b.insts {
                match inst {
                    Inst::Store { .. } => {
                        return fail("static (pure) function contains a store".into())
                    }
                    Inst::Call { callee, .. } if !callee.is_pure() => {
                        return fail("static (pure) function calls an impure function".into())
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VReg;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    fn check(src: &str) -> Result<(), VerifyError> {
        verify_program(&lower_program(&parse_program(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_lowered_programs() {
        check("int f(int a, int b) { return a * b + 1; }").unwrap();
        check("float g(float m[][c], int c, int i, int j) { return m@[i]@[j]; }").unwrap();
        check("int h(int n) { int s = 0; for (int i = 0; i < n; ++i) { s += i; } return s; }")
            .unwrap();
    }

    #[test]
    fn rejects_type_confusion() {
        let mut f = FuncIr::new("bad");
        let b = f.new_block();
        f.entry = b;
        let x = f.new_vreg(IrTy::Float);
        f.block_mut(b).insts.push(Inst::ConstI { dst: x, v: 1 });
        f.block_mut(b).term = Term::Ret(None);
        let err = verify_func(&f, None).unwrap_err();
        assert!(err.message.contains("int constant into float"));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = FuncIr::new("bad");
        let b = f.new_block();
        f.entry = b;
        f.block_mut(b).insts.push(Inst::Copy {
            dst: VReg(5),
            src: VReg(6),
        });
        f.block_mut(b).term = Term::Ret(None);
        assert!(verify_func(&f, None).is_err());
    }

    #[test]
    fn rejects_impure_static_function() {
        let err = check("static void f(float a[n], int n) { a[0] = 1.0; }").unwrap_err();
        assert!(err.message.contains("contains a store"));
    }

    #[test]
    fn rejects_static_function_calling_print() {
        let err = check("static int f(int x) { print_int(x); return x; }").unwrap_err();
        assert!(err.message.contains("impure"));
    }
}
