//! # dyc-ir — the CFG intermediate representation
//!
//! DyC is built inside the Multiflow compiler: annotated C is lowered to a
//! CFG, traditional intraprocedural optimizations run "stopping just prior
//! to register allocation and scheduling" (§2.1), and then the binding-time
//! analysis and staging operate on the optimized CFG. This crate is that
//! mid-end:
//!
//! * [`lower`] — AST → typed CFG IR ([`FuncIr`]), including short-circuit
//!   control flow, 2-D array addressing, and annotation pseudo-instructions.
//! * [`opt`] — the traditional optimizations applied to *both* the static
//!   and dynamic builds (the paper compiles both with the same options,
//!   §3.3): constant folding/propagation, copy propagation, local CSE,
//!   dead-code elimination, branch folding, and CFG simplification.
//! * [`analysis`] — liveness, dominators, and natural-loop discovery
//!   (needed by the BTA and by the staging ablations).
//! * [`codegen`] — the static build: IR → VM code, ignoring annotations
//!   (this produces the paper's "statically compiled version").
//! * [`verify`] — an IR sanity checker used throughout the test suite.
//!
//! ## Example
//!
//! ```
//! use dyc_ir::lower::lower_program;
//! use dyc_lang::parse_program;
//!
//! let ast = parse_program("int add(int a, int b) { return a + b; }").unwrap();
//! let ir = lower_program(&ast).unwrap();
//! assert_eq!(ir.funcs[0].name, "add");
//! ```

pub mod analysis;
pub mod codegen;
pub mod func;
pub mod ids;
pub mod inst;
pub mod lower;
pub mod opt;
pub mod pretty;
pub mod verify;

pub use func::{Block, FuncIr, ProgramIr};
pub use ids::{BlockId, IrTy, VReg};
pub use inst::{Callee, Inst, Term};
pub use lower::{lower_program, LowerError};
