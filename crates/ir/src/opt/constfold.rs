//! Constant folding/propagation, copy propagation, and algebraic
//! simplification (block-local), plus constant-branch folding.
//!
//! This is the static half of what DyC's staged *dynamic* constant
//! propagation does at run time; here it only sees compile-time constants.

use crate::func::FuncIr;
use crate::ids::VReg;
use crate::inst::{Inst, Term};
use dyc_vm::{Cc, FAluOp, IAluOp, UnOp};
use std::collections::HashMap;

/// A known compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum K {
    I(i64),
    F(f64),
}

#[derive(Default)]
struct Env {
    consts: HashMap<VReg, K>,
    copies: HashMap<VReg, VReg>,
}

impl Env {
    /// Resolve a use through the copy map.
    fn resolve(&self, r: VReg) -> VReg {
        let mut cur = r;
        let mut hops = 0;
        while let Some(&next) = self.copies.get(&cur) {
            cur = next;
            hops += 1;
            if hops > 64 {
                break; // defensive: copy chains are short in practice
            }
        }
        cur
    }

    fn const_of(&self, r: VReg) -> Option<K> {
        self.consts
            .get(&self.resolve(r))
            .copied()
            .or_else(|| self.consts.get(&r).copied())
    }

    /// Invalidate everything known about `d` (it was just redefined).
    fn kill(&mut self, d: VReg) {
        self.consts.remove(&d);
        self.copies.remove(&d);
        self.copies.retain(|_, v| *v != d);
    }
}

/// Run one pass; returns true if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    // Variables named by annotations are specialization keys: if copy
    // propagation replaced their downstream uses with the copy source, the
    // binding-time analysis would lose the link between the annotation and
    // the code it is meant to specialize. Pin them.
    let mut pinned: std::collections::HashSet<VReg> = std::collections::HashSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            crate::analysis::annotation_uses(inst, |v| {
                pinned.insert(v);
            });
        }
    }
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let mut env = Env::default();
        let block = &mut f.blocks[bi];
        for inst in &mut block.insts {
            // Rewrite uses through the copy map first.
            changed |= rewrite_uses(inst, &env);
            let new = fold(inst, &env);
            if let Some(n) = new {
                if *inst != n {
                    *inst = n;
                    changed = true;
                }
            }
            // Update the environment with the (possibly rewritten) inst.
            if let Some(d) = inst.def() {
                env.kill(d);
                match inst {
                    Inst::ConstI { dst, v } => {
                        env.consts.insert(*dst, K::I(*v));
                    }
                    Inst::ConstF { dst, v } => {
                        env.consts.insert(*dst, K::F(*v));
                    }
                    Inst::Copy { dst, src } => {
                        if let Some(k) = env.const_of(*src) {
                            env.consts.insert(*dst, k);
                        }
                        let root = env.resolve(*src);
                        if root != *dst && !pinned.contains(dst) {
                            env.copies.insert(*dst, root);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Terminator: rewrite uses and fold constant branches.
        match &mut block.term {
            Term::Br { cond, t, f: fb } => {
                let r = env.resolve(*cond);
                if r != *cond {
                    *cond = r;
                    changed = true;
                }
                if let Some(k) = env.const_of(*cond) {
                    let taken = match k {
                        K::I(v) => v != 0,
                        K::F(v) => v != 0.0,
                    };
                    block.term = Term::Jmp(if taken { *t } else { *fb });
                    changed = true;
                }
            }
            Term::Switch { on, cases, default } => {
                let r = env.resolve(*on);
                if r != *on {
                    *on = r;
                    changed = true;
                }
                if let Some(K::I(v)) = env.const_of(*on) {
                    let target = cases
                        .iter()
                        .find_map(|(k, b)| (*k == v).then_some(*b))
                        .unwrap_or(*default);
                    block.term = Term::Jmp(target);
                    changed = true;
                }
            }
            Term::Ret(Some(v)) => {
                let r = env.resolve(*v);
                if r != *v {
                    *v = r;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

fn rewrite_uses(inst: &mut Inst, env: &Env) -> bool {
    let mut changed = false;
    let mut fix = |r: &mut VReg| {
        let n = env.resolve(*r);
        if n != *r {
            *r = n;
            changed = true;
        }
    };
    match inst {
        Inst::Copy { src, .. } | Inst::Un { src, .. } => fix(src),
        Inst::IBin { a, b, .. }
        | Inst::FBin { a, b, .. }
        | Inst::ICmp { a, b, .. }
        | Inst::FCmp { a, b, .. } => {
            fix(a);
            fix(b);
        }
        Inst::Load { base, idx, .. } => {
            fix(base);
            fix(idx);
        }
        Inst::Store { base, idx, src, .. } => {
            fix(base);
            fix(idx);
            fix(src);
        }
        Inst::Call { args, .. } => {
            for a in args {
                fix(a);
            }
        }
        _ => {}
    }
    changed
}

#[allow(clippy::too_many_lines)]
fn fold(inst: &Inst, env: &Env) -> Option<Inst> {
    match inst {
        Inst::IBin { op, dst, a, b } => {
            let ka = env.const_of(*a);
            let kb = env.const_of(*b);
            if let (Some(K::I(x)), Some(K::I(y))) = (ka, kb) {
                if let Some(v) = ialu(*op, x, y) {
                    return Some(Inst::ConstI { dst: *dst, v });
                }
            }
            // Algebraic identities on ints.
            match (op, ka, kb) {
                (IAluOp::Add, Some(K::I(0)), _) | (IAluOp::Mul, Some(K::I(1)), _) => {
                    return Some(Inst::Copy { dst: *dst, src: *b })
                }
                (IAluOp::Add, _, Some(K::I(0)))
                | (IAluOp::Sub, _, Some(K::I(0)))
                | (IAluOp::Mul, _, Some(K::I(1)))
                | (IAluOp::Div, _, Some(K::I(1)))
                | (IAluOp::Shl, _, Some(K::I(0)))
                | (IAluOp::Shr, _, Some(K::I(0))) => {
                    return Some(Inst::Copy { dst: *dst, src: *a })
                }
                (IAluOp::Mul, Some(K::I(0)), _) | (IAluOp::Mul, _, Some(K::I(0))) => {
                    return Some(Inst::ConstI { dst: *dst, v: 0 })
                }
                _ => {}
            }
            None
        }
        Inst::FBin { op, dst, a, b } => {
            let ka = env.const_of(*a);
            let kb = env.const_of(*b);
            if let (Some(K::F(x)), Some(K::F(y))) = (ka, kb) {
                let v = match op {
                    FAluOp::Add => x + y,
                    FAluOp::Sub => x - y,
                    FAluOp::Mul => x * y,
                    FAluOp::Div => x / y,
                };
                return Some(Inst::ConstF { dst: *dst, v });
            }
            // x * 1.0 and x / 1.0 are exact; other float identities are not.
            #[allow(clippy::redundant_guards)]
            match (op, ka, kb) {
                (FAluOp::Mul, Some(K::F(k)), _) if k == 1.0 => {
                    return Some(Inst::Copy { dst: *dst, src: *b })
                }
                (FAluOp::Mul, _, Some(K::F(k))) | (FAluOp::Div, _, Some(K::F(k))) if k == 1.0 => {
                    return Some(Inst::Copy { dst: *dst, src: *a })
                }
                _ => {}
            }
            None
        }
        Inst::ICmp { cc, dst, a, b } => {
            if let (Some(K::I(x)), Some(K::I(y))) = (env.const_of(*a), env.const_of(*b)) {
                return Some(Inst::ConstI {
                    dst: *dst,
                    v: icmp(*cc, x, y) as i64,
                });
            }
            None
        }
        Inst::FCmp { cc, dst, a, b } => {
            if let (Some(K::F(x)), Some(K::F(y))) = (env.const_of(*a), env.const_of(*b)) {
                return Some(Inst::ConstI {
                    dst: *dst,
                    v: fcmp(*cc, x, y) as i64,
                });
            }
            None
        }
        Inst::Un { op, dst, src } => {
            let k = env.const_of(*src)?;
            Some(match (op, k) {
                (UnOp::NegI, K::I(v)) => Inst::ConstI {
                    dst: *dst,
                    v: v.wrapping_neg(),
                },
                (UnOp::NotI, K::I(v)) => Inst::ConstI { dst: *dst, v: !v },
                (UnOp::NegF, K::F(v)) => Inst::ConstF { dst: *dst, v: -v },
                (UnOp::IToF, K::I(v)) => Inst::ConstF {
                    dst: *dst,
                    v: v as f64,
                },
                (UnOp::FToI, K::F(v)) => Inst::ConstI {
                    dst: *dst,
                    v: v as i64,
                },
                _ => return None,
            })
        }
        _ => None,
    }
}

fn ialu(op: IAluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        IAluOp::Add => a.wrapping_add(b),
        IAluOp::Sub => a.wrapping_sub(b),
        IAluOp::Mul => a.wrapping_mul(b),
        IAluOp::Div => {
            if b == 0 {
                return None; // keep the fault at run time
            }
            a.wrapping_div(b)
        }
        IAluOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        IAluOp::And => a & b,
        IAluOp::Or => a | b,
        IAluOp::Xor => a ^ b,
        IAluOp::Shl => a.wrapping_shl(b as u32 & 63),
        IAluOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

fn icmp(cc: Cc, a: i64, b: i64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

fn fcmp(cc: Cc, a: f64, b: f64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    fn fold_once(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        run(&mut f);
        f
    }

    #[test]
    fn folds_constant_arithmetic() {
        let f = fold_once("int f() { return 6 * 7; }");
        assert!(f
            .block(f.entry)
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ConstI { v: 42, .. })));
    }

    #[test]
    fn folds_through_copies() {
        let f = fold_once("int f() { int a = 5; int b = a; return b + 1; }");
        assert!(f
            .block(f.entry)
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ConstI { v: 6, .. })));
    }

    #[test]
    fn multiplication_by_one_becomes_copy() {
        let f = fold_once("int f(int x) { return x * 1; }");
        let insts = &f.block(f.entry).insts;
        assert!(insts.iter().any(|i| matches!(i, Inst::Copy { .. })));
        assert!(!insts.iter().any(|i| matches!(
            i,
            Inst::IBin {
                op: IAluOp::Mul,
                ..
            }
        )));
    }

    #[test]
    fn float_mul_by_one_becomes_copy_but_add_zero_does_not() {
        let f = fold_once("float f(float x) { return x * 1.0; }");
        assert!(f
            .block(f.entry)
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Copy { .. })));
        // x + 0.0 must stay (negative-zero semantics).
        let g = fold_once("float f(float x) { return x + 0.0; }");
        assert!(g
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::FBin { .. })));
    }

    #[test]
    fn divide_by_zero_not_folded() {
        let f = fold_once("int f() { return 1 / 0; }");
        assert!(f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::IBin {
                op: IAluOp::Div,
                ..
            }
        )));
    }

    #[test]
    fn constant_branch_becomes_jump() {
        let f = fold_once("int f(int x) { if (2 > 1) { return 1; } return x; }");
        assert!(matches!(f.block(f.entry).term, Term::Jmp(_)));
    }

    #[test]
    fn redefinition_invalidates_knowledge() {
        // a is 1, then reassigned to x; the fold of a+1 must not use 1.
        let f = fold_once("int f(int x) { int a = 1; a = x; return a + 1; }");
        assert!(f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::IBin {
                op: IAluOp::Add,
                ..
            }
        )));
    }

    #[test]
    fn constant_switch_becomes_jump() {
        let f = fold_once(
            "int f() { int r = 0; switch (2) { case 1: r = 1; break; case 2: r = 2; break; default: r = 3; } return r; }",
        );
        assert!(matches!(f.block(f.entry).term, Term::Jmp(_)));
    }
}
