//! Loop-invariant code motion.
//!
//! Multiflow — the compiler DyC is built in — performs serious loop
//! optimization, so the paper's statically compiled baselines do not
//! recompute invariant address arithmetic on every iteration. This pass
//! keeps our static baseline comparably honest: pure, speculation-safe
//! instructions whose operands are not assigned inside the loop are
//! hoisted to a preheader.
//!
//! Speculation safety: the hoisted instruction executes even on loop-exit
//! paths that would have skipped it, so loads (may fault) and
//! divisions/remainders (divide by zero) are never hoisted.

use crate::analysis::{liveness, natural_loops};
use crate::func::FuncIr;
use crate::ids::{BlockId, VReg};
use crate::inst::{Inst, Term};
use dyc_vm::IAluOp;
use std::collections::{HashMap, HashSet};

/// Run one pass; returns true if anything was hoisted.
pub fn run(f: &mut FuncIr) -> bool {
    // Process one loop per call (the pass pipeline iterates); innermost
    // first so invariants cascade outward across iterations.
    let mut loops = natural_loops(f);
    loops.sort_by_key(|l| l.body.len());
    let lv = liveness(f);
    for l in loops {
        // Walk body blocks in id order: the preheader's instruction order
        // (and thus downstream register assignment) must not depend on
        // hash iteration order.
        let mut body_blocks: Vec<BlockId> = l.body.iter().copied().collect();
        body_blocks.sort();
        // Count definitions of each register inside the loop.
        let mut defs: HashMap<VReg, usize> = HashMap::new();
        for &b in &body_blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    *defs.entry(d).or_insert(0) += 1;
                }
            }
        }
        let live_in_header: HashSet<VReg> = lv.live_in[l.header.index()].iter().copied().collect();
        // Registers holding in-loop constants: invariant by value. Their
        // defining instruction is cloned into the preheader when a hoisted
        // instruction reads them.
        let mut const_defs: HashMap<VReg, Inst> = HashMap::new();
        for &b in &body_blocks {
            for inst in &f.block(b).insts {
                if let (Some(d), Inst::ConstI { .. } | Inst::ConstF { .. }) = (inst.def(), inst) {
                    if defs.get(&d).copied() == Some(1) {
                        const_defs.insert(d, inst.clone());
                    }
                }
            }
        }

        // Collect hoistable instructions (iterate to a local fixpoint so
        // chains of invariant computations move together).
        let mut hoisted: Vec<Inst> = Vec::new();
        let mut hoisted_defs: HashSet<VReg> = HashSet::new();
        loop {
            let mut moved_any = false;
            for &b in &body_blocks {
                let mut i = 0;
                while i < f.block(b).insts.len() {
                    let inst = &f.block(b).insts[i];
                    if is_hoistable(inst, &defs, &hoisted_defs, &const_defs, &live_in_header) {
                        let inst = f.block_mut(b).insts.remove(i);
                        // Clone the constants this instruction reads into
                        // the preheader ahead of it.
                        for u in inst.uses() {
                            if !hoisted_defs.contains(&u) && defs.get(&u).copied().unwrap_or(0) > 0
                            {
                                let c = const_defs[&u].clone();
                                hoisted_defs.insert(u);
                                hoisted.push(c);
                            }
                        }
                        let d = inst.def().expect("hoistable instructions define");
                        *defs.get_mut(&d).expect("counted") -= 1;
                        hoisted_defs.insert(d);
                        hoisted.push(inst);
                        moved_any = true;
                    } else {
                        i += 1;
                    }
                }
            }
            if !moved_any {
                break;
            }
        }
        if hoisted.is_empty() {
            continue;
        }

        // Build the preheader and retarget non-backedge predecessors.
        let preheader = f.new_block();
        f.block_mut(preheader).insts = hoisted;
        f.block_mut(preheader).term = Term::Jmp(l.header);
        let body = l.body.clone();
        let header = l.header;
        retarget_entries(f, header, preheader, &body);
        return true;
    }
    false
}

fn is_hoistable(
    inst: &Inst,
    defs: &HashMap<VReg, usize>,
    hoisted: &HashSet<VReg>,
    const_defs: &HashMap<VReg, Inst>,
    live_in_header: &HashSet<VReg>,
) -> bool {
    // Pure and safe to execute speculatively.
    let safe = match inst {
        // Constants stay put: in-block constants fold into immediate
        // operand fields at code generation; hoisting would force them
        // into registers.
        Inst::ConstI { .. } | Inst::ConstF { .. } => false,
        Inst::IBin { op, .. } => !matches!(op, IAluOp::Div | IAluOp::Rem),
        Inst::FBin { .. } | Inst::ICmp { .. } | Inst::FCmp { .. } | Inst::Un { .. } => true,
        // Loads may fault; copies are free anyway and hoisting them
        // complicates the rename environments downstream.
        _ => false,
    };
    if !safe {
        return false;
    }
    let Some(d) = inst.def() else {
        return false;
    };
    // Single definition in the loop, not carried into the header.
    if defs.get(&d).copied().unwrap_or(0) != 1 || live_in_header.contains(&d) {
        return false;
    }
    // Operands defined wholly outside the loop, already hoisted, or
    // in-loop constants (clonable into the preheader).
    inst.uses().iter().all(|u| {
        hoisted.contains(u) || defs.get(u).copied().unwrap_or(0) == 0 || const_defs.contains_key(u)
    })
}

/// Point every edge that enters `header` from outside the loop at
/// `preheader` instead.
fn retarget_entries(f: &mut FuncIr, header: BlockId, preheader: BlockId, body: &HashSet<BlockId>) {
    if f.entry == header {
        f.entry = preheader;
    }
    let n = f.blocks.len();
    for bi in 0..n {
        let b = BlockId(bi as u32);
        if b == preheader || body.contains(&b) {
            continue;
        }
        f.block_mut(b)
            .term
            .map_succs(|s| if s == header { preheader } else { s });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::verify::verify_func;
    use dyc_lang::parse_program;

    fn licm_of(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        while run(&mut f) {}
        verify_func(&f, None).unwrap();
        f
    }

    fn loop_body_instrs(f: &FuncIr) -> usize {
        let loops = natural_loops(f);
        loops
            .iter()
            .flat_map(|l| &l.body)
            .map(|b| f.block(*b).insts.len())
            .sum()
    }

    #[test]
    fn hoists_invariant_multiplication() {
        let src = "int f(int n, int k) { int s = 0; for (int i = 0; i < n; ++i) { s += k * 4 + i; } return s; }";
        let f = licm_of(src);
        // k * 4 leaves the loop body.
        let loops = natural_loops(&f);
        let in_loop_mul = loops.iter().flat_map(|l| &l.body).any(|b| {
            f.block(*b).insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::IBin {
                        op: IAluOp::Mul,
                        ..
                    }
                )
            })
        });
        assert!(!in_loop_mul, "{}", crate::pretty::func_to_string(&f));
    }

    #[test]
    fn does_not_hoist_loads_or_divisions() {
        let src = "int f(int a[n], int n, int k) { int s = 0; for (int i = 0; i < n; ++i) { s += a[k] + 100 / k; } return s; }";
        let f = licm_of(src);
        let loops = natural_loops(&f);
        let still_in_loop = loops.iter().flat_map(|l| &l.body).any(|b| {
            f.block(*b).insts.iter().any(|i| {
                matches!(i, Inst::Load { .. })
                    || matches!(
                        i,
                        Inst::IBin {
                            op: IAluOp::Div,
                            ..
                        }
                    )
            })
        });
        assert!(still_in_loop, "loads and divisions must stay put");
    }

    #[test]
    fn does_not_hoist_variant_computation() {
        let src =
            "int f(int n) { int s = 0; for (int i = 0; i < n; ++i) { s += i * 2; } return s; }";
        let f = licm_of(src);
        let loops = natural_loops(&f);
        let mul_in_loop = loops.iter().flat_map(|l| &l.body).any(|b| {
            f.block(*b).insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::IBin {
                        op: IAluOp::Mul,
                        ..
                    } | Inst::IBin {
                        op: IAluOp::Shl,
                        ..
                    }
                )
            })
        });
        assert!(mul_in_loop, "i * 2 varies and must stay");
    }

    #[test]
    fn hoisted_code_still_computes_correctly() {
        use crate::codegen::codegen_program;
        use dyc_vm::{CostModel, Value, Vm};
        let src = "int f(int n, int k) { int s = 0; for (int i = 0; i < n; ++i) { s += k * 3; } return s; }";
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        crate::opt::optimize_program(&mut ir);
        let mut m = codegen_program(&ir);
        let mut vm = Vm::without_icache(CostModel::unit());
        let out = vm
            .call(&mut m, dyc_vm::FuncId(0), &[Value::I(10), Value::I(5)])
            .unwrap();
        assert_eq!(out, Some(Value::I(150)));
    }

    #[test]
    fn nested_loop_address_arithmetic_cascades_out() {
        let src = r#"
            float f(float a[][c], int r, int c) {
                float s = 0.0;
                for (int i = 0; i < r; ++i) {
                    for (int j = 0; j < c; ++j) {
                        s = s + a[i][j];
                    }
                }
                return s;
            }
        "#;
        let before = {
            let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
            let f = ir.funcs.remove(0);
            loop_body_instrs(&f)
        };
        let f = licm_of(src);
        // The i * c multiply moves from the inner loop to the outer body
        // (it still depends on i, so it stays within the outer loop).
        assert!(loop_body_instrs(&f) <= before);
        let loops = natural_loops(&f);
        let inner = loops.iter().min_by_key(|l| l.body.len()).unwrap();
        let mul_in_inner = inner.body.iter().any(|b| {
            f.block(*b).insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::IBin {
                        op: IAluOp::Mul,
                        ..
                    }
                )
            })
        });
        assert!(
            !mul_in_inner,
            "i*c must leave the inner loop:\n{}",
            crate::pretty::func_to_string(&f)
        );
    }
}
