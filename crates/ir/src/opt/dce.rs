//! Global dead-code elimination (liveness based).

use crate::analysis::liveness;
use crate::func::FuncIr;

/// Remove pure instructions whose results are never used. Returns true if
/// anything was removed.
pub fn run(f: &mut FuncIr) -> bool {
    let lv = liveness(f);
    let mut changed = false;
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = lv.live_out[bi].clone();
        live.extend(block.term.uses());
        // Walk backwards, dropping pure defs of dead registers.
        let mut keep = Vec::with_capacity(block.insts.len());
        for inst in block.insts.iter().rev() {
            let dead = match inst.def() {
                Some(d) => !live.contains(&d),
                None => false,
            };
            if dead && inst.is_pure() {
                changed = true;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(&d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
            // Annotations keep their variables alive and are never removed.
            crate::analysis::annotation_uses(inst, |v| {
                live.insert(v);
            });
            keep.push(inst.clone());
        }
        keep.reverse();
        if keep.len() != block.insts.len() {
            block.insts = keep;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    fn dce_of(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        run(&mut f);
        f
    }

    #[test]
    fn removes_unused_computation() {
        let f = dce_of("int f(int x) { int unused = x * 37; return x; }");
        assert!(!f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::IBin { .. })));
    }

    #[test]
    fn keeps_stores_and_calls() {
        let f = dce_of("void f(float a[n], int n) { a[0] = 1.0; print_int(n); }");
        let insts: Vec<_> = f.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(insts.iter().any(|i| matches!(i, Inst::Store { .. })));
        assert!(insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn keeps_values_live_across_blocks() {
        let f = dce_of("int f(int x) { int y = x + 1; if (x) { return y; } return 0; }");
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::IBin { .. })));
    }

    #[test]
    fn removes_dead_pure_host_call() {
        let f = dce_of("float f(float x) { float unused = cos(x); return x; }");
        assert!(!f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn keeps_variables_named_by_annotations() {
        let f = dce_of("void f(int x) { int key = x + 1; make_static(key); }");
        // key's definition must survive: the specializer reads it.
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::IBin { .. })));
    }
}
