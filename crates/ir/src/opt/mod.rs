//! Traditional intraprocedural optimizations.
//!
//! DyC "applies many traditional intraprocedural optimizations, stopping
//! just prior to register allocation and scheduling" (§2.1), and compiles
//! the statically and dynamically compiled versions with the same options
//! (§3.3). These passes therefore run on every build in the reproduction:
//!
//! * [`constfold`] — constant folding/propagation, copy propagation, and
//!   algebraic simplification (block-local, iterated to fixpoint).
//! * [`cse`] — local common-subexpression elimination by value numbering
//!   (catches repeated array-address arithmetic).
//! * [`licm`] — loop-invariant code motion (Multiflow does serious loop
//!   optimization; the static baselines must not recompute invariant
//!   address arithmetic every iteration).
//! * [`dce`] — global liveness-based dead-code elimination.
//! * [`simplify_cfg`] — constant-branch folding, jump threading,
//!   unreachable-block removal, and block merging.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod licm;
pub mod simplify_cfg;

use crate::func::{FuncIr, ProgramIr};

/// Run the standard pipeline on one function until it stops changing.
pub fn optimize_func(f: &mut FuncIr) {
    for _ in 0..16 {
        let mut changed = false;
        changed |= constfold::run(f);
        changed |= cse::run(f);
        changed |= licm::run(f);
        changed |= dce::run(f);
        changed |= simplify_cfg::run(f);
        if !changed {
            break;
        }
    }
}

/// Run the standard pipeline on every function.
pub fn optimize_program(p: &mut ProgramIr) {
    for f in &mut p.funcs {
        optimize_func(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Term};
    use crate::lower::lower_program;
    use crate::verify::verify_func;
    use dyc_lang::parse_program;

    fn optimized(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        optimize_func(&mut f);
        verify_func(&f, None).unwrap();
        f
    }

    #[test]
    fn pipeline_collapses_constant_function() {
        let f = optimized("int f() { int a = 2; int b = 3; return a * b + 1; }");
        // Everything folds to `return 7`.
        let total: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        assert_eq!(
            total,
            1,
            "expected a single const, got:\n{}",
            crate::pretty::func_to_string(&f)
        );
        assert!(matches!(
            f.block(f.entry).insts[0],
            Inst::ConstI { v: 7, .. }
        ));
    }

    #[test]
    fn pipeline_removes_dead_branches() {
        let f = optimized("int f(int x) { if (1 < 0) { x = 99; } return x; }");
        assert!(f.blocks.iter().all(|b| !matches!(b.term, Term::Br { .. })));
        let total: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut f = optimized(
            "int f(int n) { int s = 0; for (int i = 0; i < n; ++i) { s += i * 1; } return s; }",
        );
        let before = crate::pretty::func_to_string(&f);
        optimize_func(&mut f);
        assert_eq!(before, crate::pretty::func_to_string(&f));
    }
}
