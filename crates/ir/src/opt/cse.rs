//! Local common-subexpression elimination by value numbering.
//!
//! Catches the repeated address arithmetic 2-D indexing produces
//! (`i * ncols + j` computed for both a load and a nearby store). Loads
//! participate until the next store or impure call invalidates memory.

use crate::func::FuncIr;
use crate::ids::{IrTy, VReg};
use crate::inst::Inst;
use dyc_vm::{Cc, FAluOp, IAluOp, UnOp};
use std::collections::HashMap;

/// Value-number key for a pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    IBin(IAluOp, VReg, VReg),
    FBin(FKey, VReg, VReg),
    ICmp(Cc, VReg, VReg),
    FCmp(Cc, VReg, VReg),
    Un(UKey, VReg),
    Load(IrTy, VReg, VReg, bool, u64),
}

// FAluOp/UnOp are Hash-able already; wrap to keep derive simple if needed.
type FKey = FAluOp;
type UKey = UnOp;

/// Run one pass; returns true if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        let mut table: HashMap<Key, VReg> = HashMap::new();
        let mut mem_version = 0u64;
        for inst in &mut block.insts {
            let key = match inst {
                Inst::IBin { op, a, b, .. } => {
                    // Normalize commutative operands.
                    let (a, b) = if commutative_i(*op) && b < a {
                        (*b, *a)
                    } else {
                        (*a, *b)
                    };
                    Some(Key::IBin(*op, a, b))
                }
                Inst::FBin { op, a, b, .. } => {
                    let (a, b) = if commutative_f(*op) && b < a {
                        (*b, *a)
                    } else {
                        (*a, *b)
                    };
                    Some(Key::FBin(*op, a, b))
                }
                Inst::ICmp { cc, a, b, .. } => Some(Key::ICmp(*cc, *a, *b)),
                Inst::FCmp { cc, a, b, .. } => Some(Key::FCmp(*cc, *a, *b)),
                Inst::Un { op, src, .. } => Some(Key::Un(*op, *src)),
                Inst::Load {
                    ty,
                    base,
                    idx,
                    is_static,
                    ..
                } => Some(Key::Load(*ty, *base, *idx, *is_static, mem_version)),
                Inst::Store { .. } => {
                    mem_version += 1;
                    None
                }
                Inst::Call { callee, .. } => {
                    if !callee.is_pure() {
                        mem_version += 1;
                    }
                    None
                }
                _ => None,
            };
            let Some(dst) = inst.def() else {
                continue;
            };
            let hit = key.as_ref().and_then(|k| table.get(k).copied());
            // The redefinition of dst invalidates table entries that
            // mention it (as operand or as the memoized result).
            table.retain(|k, v| *v != dst && !key_uses(k, dst));
            match hit {
                Some(prev) if prev != dst => {
                    *inst = Inst::Copy { dst, src: prev };
                    changed = true;
                }
                Some(_) => {}
                None => {
                    if let Some(key) = key {
                        table.insert(key, dst);
                    }
                }
            }
        }
    }
    changed
}

fn key_uses(k: &Key, r: VReg) -> bool {
    match k {
        Key::IBin(_, a, b) | Key::FBin(_, a, b) | Key::ICmp(_, a, b) | Key::FCmp(_, a, b) => {
            *a == r || *b == r
        }
        Key::Un(_, a) => *a == r,
        Key::Load(_, base, idx, _, _) => *base == r || *idx == r,
    }
}

fn commutative_i(op: IAluOp) -> bool {
    matches!(
        op,
        IAluOp::Add | IAluOp::Mul | IAluOp::And | IAluOp::Or | IAluOp::Xor
    )
}

fn commutative_f(op: FAluOp) -> bool {
    matches!(op, FAluOp::Add | FAluOp::Mul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    fn cse_of(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        run(&mut f);
        f
    }

    fn count_ibins(f: &FuncIr) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::IBin { .. }))
            .count()
    }

    #[test]
    fn dedups_repeated_expression() {
        let f = cse_of("int f(int a, int b) { int x = a + b; int y = a + b; return x + y; }");
        // a+b computed once; x+y remains.
        assert_eq!(count_ibins(&f), 2);
    }

    #[test]
    fn commutative_operands_normalize() {
        let f = cse_of("int f(int a, int b) { int x = a + b; int y = b + a; return x * y; }");
        assert_eq!(count_ibins(&f), 2); // one add + one mul
    }

    #[test]
    fn store_invalidates_loads() {
        let f = cse_of(
            "int f(int a[n], int n, int i) { int x = a[i]; a[i] = x + 1; int y = a[i]; return y; }",
        );
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 2, "the load after the store must not be reused");
    }

    #[test]
    fn duplicate_loads_without_store_merge() {
        let f =
            cse_of("int f(int a[n], int n, int i) { int x = a[i]; int y = a[i]; return x + y; }");
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn redefinition_of_operand_invalidates() {
        let f = cse_of("int f(int a, int b) { int x = a + b; a = x; int y = a + b; return y; }");
        assert_eq!(count_ibins(&f), 2, "a changed; a+b must be recomputed");
    }
}
