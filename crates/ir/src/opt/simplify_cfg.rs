//! CFG simplification: jump threading, unreachable-block removal, and
//! straight-line block merging.

use crate::func::FuncIr;
use crate::ids::BlockId;
use crate::inst::Term;
use std::collections::HashMap;

/// Run one pass; returns true if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    let mut changed = false;
    changed |= collapse_trivial_branches(f);
    changed |= thread_jumps(f);
    changed |= remove_unreachable(f);
    changed |= merge_chains(f);
    changed
}

/// `br c ? x : x` becomes `jmp x`.
fn collapse_trivial_branches(f: &mut FuncIr) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        if let Term::Br { t, f: fb, .. } = b.term {
            if t == fb {
                b.term = Term::Jmp(t);
                changed = true;
            }
        }
    }
    changed
}

/// Retarget edges that point at empty blocks whose only content is `jmp`.
fn thread_jumps(f: &mut FuncIr) -> bool {
    // forward[b] = ultimate target of b if b is an empty jmp block.
    let n = f.blocks.len();
    let mut forward: Vec<Option<BlockId>> = vec![None; n];
    for (i, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            if let Term::Jmp(t) = b.term {
                if t.index() != i {
                    forward[i] = Some(t);
                }
            }
        }
    }
    let resolve = |mut b: BlockId| {
        let mut hops = 0;
        while let Some(t) = forward[b.index()] {
            b = t;
            hops += 1;
            if hops > n {
                break; // cycle of empty blocks (infinite loop in source)
            }
        }
        b
    };
    let mut changed = false;
    let entry = resolve(f.entry);
    if entry != f.entry {
        f.entry = entry;
        changed = true;
    }
    for b in &mut f.blocks {
        let before = b.term.clone();
        b.term.map_succs(resolve);
        if before != b.term {
            changed = true;
        }
    }
    changed
}

/// Drop blocks unreachable from the entry, renumbering the rest.
fn remove_unreachable(f: &mut FuncIr) -> bool {
    let reachable = f.reverse_postorder();
    if reachable.len() == f.blocks.len() {
        return false;
    }
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    for (new_idx, b) in reachable.iter().enumerate() {
        remap.insert(*b, BlockId(new_idx as u32));
    }
    let mut new_blocks = Vec::with_capacity(reachable.len());
    for b in &reachable {
        let mut blk = f.blocks[b.index()].clone();
        blk.term.map_succs(|s| remap[&s]);
        new_blocks.push(blk);
    }
    f.entry = remap[&f.entry];
    f.blocks = new_blocks;
    true
}

/// Merge `a -> b` when `a` ends in `jmp b` and `b` has exactly one
/// predecessor.
fn merge_chains(f: &mut FuncIr) -> bool {
    let mut changed = false;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for a in 0..f.blocks.len() {
            let target = match f.blocks[a].term {
                Term::Jmp(t) if t.index() != a => t,
                _ => continue,
            };
            if preds[target.index()].len() != 1 || target == f.entry {
                continue;
            }
            // Move target's instructions and terminator into a.
            let mut donor_insts = std::mem::take(&mut f.blocks[target.index()].insts);
            let donor_term = f.blocks[target.index()].term.clone();
            // Leave the donor as an unreachable self-loop; the next
            // remove_unreachable() sweep deletes it.
            f.blocks[target.index()].term = Term::Jmp(target);
            f.blocks[a].insts.append(&mut donor_insts);
            f.blocks[a].term = donor_term;
            merged = true;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
        if !merged {
            break;
        }
    }
    if changed {
        remove_unreachable(f);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::opt::constfold;
    use crate::verify::verify_func;
    use dyc_lang::parse_program;

    fn simplified(src: &str) -> FuncIr {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let mut f = ir.funcs.remove(0);
        constfold::run(&mut f);
        run(&mut f);
        verify_func(&f, None).unwrap();
        f
    }

    #[test]
    fn straight_line_collapses_to_one_block() {
        let f = simplified("int f(int x) { int a = x + 1; int b = a + 2; return b; }");
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn dead_branch_arm_removed() {
        let f = simplified("int f(int x) { if (0) { x = 99; } return x; }");
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.block(f.entry).term, Term::Ret(Some(_))));
    }

    #[test]
    fn loops_survive_simplification() {
        let f =
            simplified("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        // Loop still present: some block branches backward.
        let preds = f.predecessors();
        assert!(preds.iter().any(|p| p.len() >= 2));
    }

    #[test]
    fn unreachable_code_after_return_removed() {
        let f = simplified("int f(int x) { return x; x = 5; return x; }");
        assert_eq!(f.blocks.len(), 1);
    }
}
