//! Dataflow analyses over the CFG: liveness, dominators, natural loops.
//!
//! These serve three clients: dead-code elimination (liveness), the
//! binding-time analysis's loop handling (loops + dominators), and the
//! staging phase's "hash only on the subset of live static variables"
//! optimization of dispatch keys (§4.4.3).

use crate::func::FuncIr;
use crate::ids::{BlockId, VReg};
use std::collections::{HashMap, HashSet};

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<HashSet<VReg>>,
    /// Registers live at block exit.
    pub live_out: Vec<HashSet<VReg>>,
}

/// Compute backward liveness. Annotation pseudo-instructions keep their
/// variables alive: a variable named by `make_static` must survive to the
/// annotation point so the specializer can read it.
pub fn liveness(f: &FuncIr) -> Liveness {
    let n = f.blocks.len();
    // Per-block use/def summaries.
    let mut use_b = vec![HashSet::new(); n];
    let mut def_b = vec![HashSet::new(); n];
    for (i, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            for u in inst.uses() {
                if !def_b[i].contains(&u) {
                    use_b[i].insert(u);
                }
            }
            // Annotations act as uses of their variables.
            annotation_uses(inst, |v| {
                if !def_b[i].contains(&v) {
                    use_b[i].insert(v);
                }
            });
            if let Some(d) = inst.def() {
                def_b[i].insert(d);
            }
        }
        for u in b.term.uses() {
            if !def_b[i].contains(&u) {
                use_b[i].insert(u);
            }
        }
    }

    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    let rpo = f.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        // Backward problem: iterate in postorder (reversed RPO).
        for &b in rpo.iter().rev() {
            let i = b.index();
            let mut out = HashSet::new();
            for s in f.block(b).term.successors() {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn: HashSet<VReg> = use_b[i].clone();
            for v in &out {
                if !def_b[i].contains(v) {
                    inn.insert(*v);
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Invoke `f` for each variable an annotation pseudo-instruction names;
/// these count as uses so the specializer can read the values.
pub(crate) fn annotation_uses(inst: &crate::inst::Inst, mut f: impl FnMut(VReg)) {
    use crate::inst::Inst;
    match inst {
        Inst::MakeStatic { vars } => {
            for (v, _) in vars {
                f(*v);
            }
        }
        Inst::MakeDynamic { vars } => {
            for v in vars {
                f(*v);
            }
        }
        Inst::Promote { var } => f(*var),
        _ => {}
    }
}

/// Immediate dominators, computed by the simple iterative algorithm
/// (Cooper/Harvey/Kennedy). Unreachable blocks have no entry.
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: HashMap<BlockId, BlockId>,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &FuncIr) -> Dominators {
        let rpo = f.reverse_postorder();
        let mut order = HashMap::new();
        for (i, b) in rpo.iter().enumerate() {
            order.insert(*b, i);
        }
        let preds = f.predecessors();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if !idom.contains_key(&p) {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// True if `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    order: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while order[&a] > order[&b] {
            a = idom[&a];
        }
        while order[&b] > order[&a] {
            b = idom[&b];
        }
    }
    a
}

/// A natural loop: header plus body blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
}

/// Find natural loops via back edges (`s -> h` where `h` dominates `s`).
/// Loops sharing a header are merged.
pub fn natural_loops(f: &FuncIr) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(f);
    let preds = f.predecessors();
    let mut by_header: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for b in f.reverse_postorder() {
        for s in f.block(b).term.successors() {
            if dom.dominates(s, b) {
                // Back edge b -> s; collect the loop body by walking
                // predecessors from the latch.
                let body = by_header.entry(s).or_default();
                body.insert(s);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in &preds[x.index()] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, body)| NaturalLoop { header, body })
        .collect();
    out.sort_by_key(|l| l.header);
    out
}

/// Block headers of all natural loops (convenience for the BTA).
pub fn loop_headers(f: &FuncIr) -> HashSet<BlockId> {
    natural_loops(f).into_iter().map(|l| l.header).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dyc_lang::parse_program;

    fn ir_of(src: &str) -> FuncIr {
        lower_program(&parse_program(src).unwrap())
            .unwrap()
            .funcs
            .remove(0)
    }

    #[test]
    fn liveness_of_straight_line() {
        let f = ir_of("int f(int a, int b) { int c = a + b; return c; }");
        let lv = liveness(&f);
        // Params are live into the entry block.
        assert!(lv.live_in[f.entry.index()].contains(&f.params[0]));
        assert!(lv.live_in[f.entry.index()].contains(&f.params[1]));
    }

    #[test]
    fn liveness_circulates_around_loops() {
        let f = ir_of("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let lv = liveness(&f);
        // In the loop head, both n and s are live.
        let heads = loop_headers(&f);
        let h = heads.iter().next().copied().expect("one loop");
        assert!(lv.live_in[h.index()].len() >= 2);
    }

    #[test]
    fn dominators_of_diamond() {
        let f = ir_of("int f(int c) { int r = 0; if (c) { r = 1; } else { r = 2; } return r; }");
        let dom = Dominators::compute(&f);
        // Entry dominates everything reachable.
        for b in f.reverse_postorder() {
            assert!(dom.dominates(f.entry, b));
        }
    }

    #[test]
    fn finds_single_natural_loop() {
        let f = ir_of("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].body.len() >= 2);
        assert!(loops[0].body.contains(&loops[0].header));
    }

    #[test]
    fn finds_nested_loops() {
        let f = ir_of(
            "int f(int n) { int s = 0; for (int i = 0; i < n; ++i) { for (int j = 0; j < n; ++j) { s += 1; } } return s; }",
        );
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        // One loop's body contains the other's header.
        let (a, b) = (&loops[0], &loops[1]);
        assert!(a.body.contains(&b.header) || b.body.contains(&a.header));
    }

    #[test]
    fn make_static_keeps_variable_alive() {
        let f = ir_of("void f(int x) { int y = x + 1; make_static(y); }");
        let lv = liveness(&f);
        // y is used only by the annotation but must be live at entry of the
        // block after its definition — check it is in some use set.
        let any_live =
            (0..f.blocks.len()).any(|i| !lv.live_in[i].is_empty() || !lv.live_out[i].is_empty());
        assert!(any_live);
    }
}
