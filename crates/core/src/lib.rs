//! # dyc — staged, selective, value-specific dynamic compilation
//!
//! A from-scratch reproduction of **DyC** (Grant, Philipose, Mock,
//! Chambers, Eggers: *An Evaluation of Staged Run-Time Optimizations in
//! DyC*, PLDI 1999) targeting a deterministic virtual machine with an
//! Alpha-21164-calibrated cycle model.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! ```text
//!  annotated DyCL source ──lower──► CFG IR ──traditional opts──►
//!    ├─ static build: annotations ignored ─► VM code             (§3.3)
//!    └─ dynamic build: BTA + staging ─► driver stubs + region plans
//!         run time: dispatch → code cache → generating extension
//!                   → specialized VM code                         (§2.1)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dyc::{Compiler, Value};
//!
//! let src = r#"
//!     int power(int base, int exp) {
//!         make_static(exp);
//!         int r = 1;
//!         while (exp > 0) { r = r * base; exp = exp - 1; }
//!         return r;
//!     }
//! "#;
//! let program = Compiler::new().compile(src).unwrap();
//!
//! // Statically compiled: the loop runs at run time.
//! let mut s = program.static_session();
//! assert_eq!(s.run("power", &[Value::I(3), Value::I(4)]).unwrap(), Some(Value::I(81)));
//!
//! // Dynamically compiled: the loop is completely unrolled for exp == 4,
//! // then the specialized code is reused from the code cache.
//! let mut d = program.dynamic_session();
//! assert_eq!(d.run("power", &[Value::I(3), Value::I(4)]).unwrap(), Some(Value::I(81)));
//! assert_eq!(d.run("power", &[Value::I(5), Value::I(4)]).unwrap(), Some(Value::I(625)));
//! ```

pub mod error;
pub mod program;
pub mod session;

pub use dyc_bta::{OptConfig, PolicyMode};
pub use dyc_obs as obs;
pub use dyc_rt::{
    CacheBundle, CodeArtifact, MissPolicy, PolicyParams, RtStats, SharedOptions, SharedRuntime,
    ARTIFACT_VERSION,
};
pub use dyc_vm::{CodeFunc, CostModel, ExecStats, Value, VmError};
pub use error::CompileError;
pub use program::{Compiler, Program};
pub use session::Session;
