//! The compiler facade and compiled programs.

use crate::error::CompileError;
use crate::session::Session;
use dyc_bta::OptConfig;
use dyc_ir::codegen::codegen_program;
use dyc_ir::{lower_program, ProgramIr};
use dyc_lang::parse_program;
use dyc_rt::{Runtime, SharedOptions, SharedRuntime};
use dyc_stage::{stage_program, StagedProgram};
use dyc_vm::{CostModel, Module, Vm};
use std::sync::Arc;

/// Compiles DyCL source into runnable [`Program`]s.
///
/// Holds the optimization configuration ([`OptConfig`]) and the machine
/// cost model. Both static and dynamic builds are produced (with identical
/// traditional optimizations, per §3.3 of the paper).
#[derive(Debug, Clone)]
pub struct Compiler {
    cfg: OptConfig,
    cost: CostModel,
}

impl Compiler {
    /// A compiler with every staged optimization enabled (the paper's
    /// "normal configuration") and the Alpha-21164 cost model.
    pub fn new() -> Compiler {
        Compiler {
            cfg: OptConfig::all(),
            cost: CostModel::alpha21164(),
        }
    }

    /// A compiler with a specific optimization configuration (used for the
    /// Table 5 ablations).
    pub fn with_config(cfg: OptConfig) -> Compiler {
        Compiler {
            cfg,
            cost: CostModel::alpha21164(),
        }
    }

    /// Override the machine cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Compiler {
        self.cost = cost;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &OptConfig {
        &self.cfg
    }

    /// Compile DyCL source into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for syntax, name or type errors.
    pub fn compile(&self, source: &str) -> Result<Program, CompileError> {
        let ast = parse_program(source)?;
        let mut ir = lower_program(&ast)?;
        dyc_ir::verify::verify_program(&ir)?;
        dyc_ir::opt::optimize_program(&mut ir);
        dyc_ir::verify::verify_program(&ir)?;
        let static_module = codegen_program(&ir);
        let staged = stage_program(ir.clone(), self.cfg);
        Ok(Program {
            ir,
            static_module,
            staged,
            cost: self.cost.clone(),
        })
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

/// A compiled program: the optimized IR, the statically compiled module,
/// and the staged dynamic build.
#[derive(Debug, Clone)]
pub struct Program {
    ir: ProgramIr,
    static_module: Module,
    staged: StagedProgram,
    cost: CostModel,
}

impl Program {
    /// The optimized IR (inspection/diagnostics).
    pub fn ir(&self) -> &ProgramIr {
        &self.ir
    }

    /// The staged dynamic build (inspection/diagnostics).
    pub fn staged(&self) -> &StagedProgram {
        &self.staged
    }

    /// True if the program contains at least one dynamic region.
    pub fn has_dynamic_regions(&self) -> bool {
        !self.staged.entry_sites.is_empty()
    }

    /// Total instruction count of the statically compiled module
    /// (Table 1's "Instructions" column analogue).
    pub fn static_instruction_count(&self) -> usize {
        self.static_module.iter().map(|(_, f)| f.len()).sum()
    }

    /// A fresh execution environment running the statically compiled
    /// build ("compiled by ignoring the annotations", §3.3).
    pub fn static_session(&self) -> Session {
        Session::new_static(self.static_module.clone(), Vm::new(self.cost.clone()))
    }

    /// A fresh execution environment running the dynamically compiled
    /// build: driver stubs plus the run-time specializer.
    pub fn dynamic_session(&self) -> Session {
        let module = self.staged.build_module();
        let runtime = Runtime::new(self.staged.clone());
        Session::new_dynamic(module, Vm::new(self.cost.clone()), runtime)
    }

    /// A thread-shared concurrent runtime for this program with default
    /// options (16 cache shards, blocking single-flight). Hand it to
    /// [`Program::threaded_session`] once per thread.
    pub fn shared_runtime(&self) -> Arc<SharedRuntime> {
        Arc::new(SharedRuntime::new(self.staged.clone()))
    }

    /// A thread-shared concurrent runtime with explicit [`SharedOptions`]
    /// (shard count, miss policy, specialization budget).
    pub fn shared_runtime_with(&self, opts: SharedOptions) -> Arc<SharedRuntime> {
        Arc::new(SharedRuntime::with_options(self.staged.clone(), opts))
    }

    /// One thread's execution environment over a shared concurrent
    /// runtime: a private module replica and VM, dispatching through the
    /// shared sharded code cache with single-flight specialization.
    pub fn threaded_session(&self, shared: &Arc<SharedRuntime>) -> Session {
        let module = shared.base_module();
        let runtime = SharedRuntime::thread(shared);
        Session::new_threaded(module, Vm::new(self.cost.clone()), runtime)
    }

    /// A fresh dynamic session *warm-started* from a snapshot bundle
    /// string (see [`Session::cache_bundle`]): every verifiable cached
    /// specialization is re-installed before the first dispatch, so
    /// restored keys hit the cache instead of re-specializing.
    ///
    /// # Errors
    ///
    /// Only malformed JSON / a structurally invalid bundle is an error.
    /// A parseable bundle with stale or corrupted fingerprints still
    /// yields a working session — the bad entries are rejected
    /// per-entry and metered in
    /// [`RtStats::cache_warm_rejects`](dyc_rt::RtStats), and their keys
    /// simply re-specialize on first use.
    pub fn warm_start_from_str(&self, bundle: &str) -> Result<Session, String> {
        let bundle = dyc_rt::CacheBundle::parse(bundle)?;
        let mut module = self.staged.build_module();
        let mut runtime = Runtime::new(self.staged.clone());
        runtime.restore_bundle(&bundle, &mut module);
        Ok(Session::new_dynamic(
            module,
            Vm::new(self.cost.clone()),
            runtime,
        ))
    }

    /// [`Program::warm_start_from_str`], reading the bundle from `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors and malformed bundles.
    pub fn warm_start(&self, path: impl AsRef<std::path::Path>) -> Result<Session, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        self.warm_start_from_str(&text)
    }

    /// A thread-shared concurrent runtime warm-started from a snapshot
    /// bundle string: the bundle's entries are published into the
    /// shared registry and cache before any thread dispatches.
    /// Verification and metering mirror
    /// [`Program::warm_start_from_str`], with the meters on
    /// [`SharedRuntime::stats`].
    ///
    /// # Errors
    ///
    /// Only malformed JSON / a structurally invalid bundle is an error.
    pub fn warm_shared_runtime(&self, bundle: &str) -> Result<Arc<SharedRuntime>, String> {
        let bundle = dyc_rt::CacheBundle::parse(bundle)?;
        let shared = Arc::new(SharedRuntime::new(self.staged.clone()));
        shared.restore_bundle(&bundle);
        Ok(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_parse_errors() {
        let err = Compiler::new().compile("int f( {").unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
    }

    #[test]
    fn compile_reports_type_errors() {
        let err = Compiler::new()
            .compile("int f() { return nope; }")
            .unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn annotated_programs_have_regions() {
        let p = Compiler::new()
            .compile("int f(int x) { make_static(x); return x + 1; }")
            .unwrap();
        assert!(p.has_dynamic_regions());
        let q = Compiler::new()
            .compile("int f(int x) { return x + 1; }")
            .unwrap();
        assert!(!q.has_dynamic_regions());
    }
}
