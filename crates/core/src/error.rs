//! Compilation errors.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong turning DyCL source into a runnable
/// [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical or syntactic error.
    Parse(dyc_lang::ParseError),
    /// Name-resolution or type error during lowering.
    Lower(dyc_ir::LowerError),
    /// Internal consistency failure (a compiler bug surfaced by the
    /// verifier).
    Verify(dyc_ir::verify::VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Lower(e) => Some(e),
            CompileError::Verify(e) => Some(e),
        }
    }
}

impl From<dyc_lang::ParseError> for CompileError {
    fn from(e: dyc_lang::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<dyc_ir::LowerError> for CompileError {
    fn from(e: dyc_ir::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<dyc_ir::verify::VerifyError> for CompileError {
    fn from(e: dyc_ir::verify::VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e = CompileError::Parse(dyc_lang::ParseError {
            message: "boom".into(),
            line: 3,
        });
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("line 3"));
    }
}
