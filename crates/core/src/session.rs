//! Execution sessions: a VM instance plus (for dynamic builds) the
//! run-time system, with the measurement helpers the experiment harnesses
//! use.

use dyc_rt::{RtStats, Runtime, ThreadRuntime};
use dyc_vm::{ExecStats, Mem, Module, Value, Vm, VmError};

/// How a session executes dispatches.
#[derive(Debug)]
enum Exec {
    /// Statically compiled build: no dispatches exist.
    Static,
    /// Single-threaded dynamic build with its own [`Runtime`].
    ///
    /// Both runtime variants are boxed so dispatch-free static sessions
    /// don't pay for the (large) runtime state inline.
    Single(Box<Runtime>),
    /// One thread of a concurrent dynamic build: a [`ThreadRuntime`]
    /// over an `Arc`-shared [`dyc_rt::SharedRuntime`].
    Threaded(Box<ThreadRuntime>),
}

/// One execution environment for a compiled program.
///
/// Owns the VM (data memory, cycle counters, I-cache model), the code
/// module — which grows at run time in dynamic sessions — and, for dynamic
/// sessions, the run-time system (a whole [`Runtime`], or one thread's
/// [`ThreadRuntime`] handle onto a shared one).
#[derive(Debug)]
pub struct Session {
    vm: Vm,
    module: Module,
    exec: Exec,
}

impl Session {
    pub(crate) fn new_static(module: Module, vm: Vm) -> Session {
        Session {
            vm,
            module,
            exec: Exec::Static,
        }
    }

    pub(crate) fn new_dynamic(module: Module, vm: Vm, runtime: Runtime) -> Session {
        Session {
            vm,
            module,
            exec: Exec::Single(Box::new(runtime)),
        }
    }

    pub(crate) fn new_threaded(module: Module, vm: Vm, runtime: ThreadRuntime) -> Session {
        Session {
            vm,
            module,
            exec: Exec::Threaded(Box::new(runtime)),
        }
    }

    /// The VM's data memory (set up inputs, read back outputs).
    pub fn mem(&mut self) -> &mut Mem {
        &mut self.vm.mem
    }

    /// Allocate `n` zeroed words of data memory; returns the base address.
    pub fn alloc(&mut self, n: usize) -> i64 {
        self.vm.mem.alloc(n)
    }

    /// Guard against runaway guest loops (mainly for tests).
    pub fn set_step_limit(&mut self, steps: u64) {
        self.vm.set_step_limit(steps);
    }

    /// Run `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the function is unknown, guest code
    /// faults, or specialization fails.
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let id = self
            .module
            .func_by_name(func)
            .ok_or_else(|| VmError::Dispatch(format!("unknown function '{func}'")))?;
        match &mut self.exec {
            Exec::Static => self.vm.call(&mut self.module, id, args),
            Exec::Single(rt) => self
                .vm
                .call_with_handler(&mut self.module, rt.as_mut(), id, args),
            Exec::Threaded(rt) => {
                self.vm
                    .call_with_handler(&mut self.module, rt.as_mut(), id, args)
            }
        }
    }

    /// Run and return the execution-counter delta for just this call.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_measured(
        &mut self,
        func: &str,
        args: &[Value],
    ) -> Result<(Option<Value>, ExecStats), VmError> {
        let before = self.vm.stats.clone();
        let out = self.run(func, args)?;
        let delta = self.vm.stats.delta_since(&before);
        Ok((out, delta))
    }

    /// Cumulative VM counters.
    pub fn stats(&self) -> &ExecStats {
        &self.vm.stats
    }

    /// Run-time-system counters (dynamic sessions only). For a threaded
    /// session these are *this thread's* meters; global meters live on
    /// the shared runtime ([`dyc_rt::SharedRuntime::stats`]).
    pub fn rt_stats(&self) -> Option<&RtStats> {
        match &self.exec {
            Exec::Static => None,
            Exec::Single(rt) => Some(&rt.stats),
            Exec::Threaded(rt) => Some(&rt.stats),
        }
    }

    /// The single-threaded runtime, for dynamic sessions (diagnostics,
    /// cache introspection, explicit invalidation).
    pub fn runtime(&mut self) -> Option<&mut Runtime> {
        match &mut self.exec {
            Exec::Single(rt) => Some(rt.as_mut()),
            _ => None,
        }
    }

    /// Trace events recorded so far (oldest first), when the session was
    /// built with [`OptConfig::trace`](dyc_bta::OptConfig) (or, for
    /// threaded sessions, [`dyc_rt::SharedOptions::trace`]). Empty when
    /// tracing is off or the session is static.
    pub fn trace_events(&self) -> Vec<dyc_obs::Event> {
        match &self.exec {
            Exec::Static => Vec::new(),
            Exec::Single(rt) => rt.trace.events(),
            Exec::Threaded(rt) => rt.trace.events(),
        }
    }

    /// Events dropped from this session's trace ring (oldest-first
    /// overwrite once the fixed ring fills). Zero when tracing is off.
    pub fn trace_dropped(&self) -> u64 {
        match &self.exec {
            Exec::Static => 0,
            Exec::Single(rt) => rt.trace.dropped(),
            Exec::Threaded(rt) => rt.trace.dropped(),
        }
    }

    /// Values printed by the guest so far.
    pub fn output(&self) -> &[Value] {
        &self.vm.output
    }

    /// Take and clear the guest output.
    pub fn take_output(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.vm.output)
    }

    /// Number of functions currently in the module (grows as code is
    /// generated at run time).
    pub fn module_len(&self) -> usize {
        self.module.len()
    }

    /// Entry-site count of a dynamic session (0 for static sessions):
    /// site ids at or above this are internal promotion sites, whose
    /// numbering depends on the order specializations first created
    /// them.
    pub fn n_entry_sites(&self) -> usize {
        match &self.exec {
            Exec::Static => 0,
            Exec::Single(rt) => rt.n_entry_sites(),
            Exec::Threaded(rt) => rt.shared().n_entry_sites(),
        }
    }

    /// Disassemble a function by name (for the figures harness).
    pub fn disassemble(&self, func: &str) -> Option<String> {
        let id = self.module.func_by_name(func)?;
        Some(dyc_vm::pretty::func_to_string(self.module.func(id)))
    }

    /// Disassemble every function whose name starts with `prefix`
    /// (specialized versions are named `<region>$specN`).
    pub fn disassemble_matching(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (_, f) in self.module.iter() {
            if f.name.starts_with(prefix) {
                out.push_str(&dyc_vm::pretty::func_to_string(f));
                out.push('\n');
            }
        }
        out
    }

    /// Every `(site, key, code)` binding currently cached by a dynamic
    /// session's runtime, code included — the differential harnesses
    /// compare these across runtimes instruction for instruction. Empty
    /// for static sessions. For a threaded session the bindings come
    /// from the shared cache (they are the same for every thread).
    pub fn cached_code(&self) -> Vec<(u32, Vec<u64>, dyc_vm::CodeFunc)> {
        match &self.exec {
            Exec::Static => Vec::new(),
            Exec::Single(rt) => rt
                .cache_entries()
                .into_iter()
                .map(|(s, k, f)| (s, k, self.module.func(f).clone()))
                .collect(),
            Exec::Threaded(rt) => {
                let shared = rt.shared();
                shared
                    .cache_snapshot()
                    .into_iter()
                    .map(|(s, k, gid)| (s, k, shared.code(gid).as_ref().clone()))
                    .collect()
            }
        }
    }

    /// Serialize this dynamic session's entire code cache — every
    /// cached specialization plus the internal promotion sites — as a
    /// versioned, fingerprinted JSON bundle a future process can
    /// [`crate::Program::warm_start`] from. `None` for static sessions
    /// (they have no dynamic-code cache). For a threaded session the
    /// bundle is the *shared* cache, identical from every thread.
    pub fn cache_bundle(&self) -> Option<String> {
        match &self.exec {
            Exec::Static => None,
            Exec::Single(rt) => Some(rt.snapshot_bundle(&self.module).to_json()),
            Exec::Threaded(rt) => Some(rt.shared().snapshot_bundle().to_json()),
        }
    }

    /// Write [`Session::cache_bundle`] to `path`.
    ///
    /// # Errors
    ///
    /// Fails for static sessions and on I/O errors.
    pub fn snapshot_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let bundle = self
            .cache_bundle()
            .ok_or("static sessions have no dynamic-code cache to snapshot")?;
        std::fs::write(path.as_ref(), bundle)
            .map_err(|e| format!("writing {}: {e}", path.as_ref().display()))
    }

    /// Names of dynamically generated functions.
    pub fn generated_functions(&self) -> Vec<String> {
        self.module
            .iter()
            .filter(|(_, f)| f.name.contains("$spec"))
            .map(|(_, f)| f.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Compiler, OptConfig, Value};

    const POWER: &str = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
    "#;

    #[test]
    fn static_and_dynamic_agree_on_power() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        for (b, e) in [(2i64, 0i64), (2, 1), (3, 4), (5, 3), (-2, 5), (7, 2)] {
            let sv = s.run("power", &[Value::I(b), Value::I(e)]).unwrap();
            let dv = d.run("power", &[Value::I(b), Value::I(e)]).unwrap();
            assert_eq!(sv, dv, "power({b}, {e})");
        }
    }

    #[test]
    fn unrolled_power_has_no_branches() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        d.run("power", &[Value::I(3), Value::I(4)]).unwrap();
        let gen = d.generated_functions();
        assert_eq!(gen.len(), 1);
        let code = d.disassemble(&gen[0]).unwrap();
        assert!(
            !code.contains("brz") && !code.contains("brnz") && !code.contains("jmp"),
            "fully unrolled code should be straight-line:\n{code}"
        );
        assert!(d.rt_stats().unwrap().loops_unrolled >= 1);
    }

    #[test]
    fn code_cache_reuses_specializations() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        d.run("power", &[Value::I(3), Value::I(4)]).unwrap();
        d.run("power", &[Value::I(5), Value::I(4)]).unwrap(); // same exp: cache hit
        d.run("power", &[Value::I(5), Value::I(6)]).unwrap(); // new exp: miss
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.specializations, 2);
        assert_eq!(d.stats().dispatches, 3);
    }

    #[test]
    fn no_unrolling_emits_a_residual_loop() {
        let cfg = OptConfig::all().without("complete_loop_unrolling").unwrap();
        let p = Compiler::with_config(cfg).compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        assert_eq!(
            d.run("power", &[Value::I(3), Value::I(4)]).unwrap(),
            Some(Value::I(81))
        );
        let gen = d.generated_functions();
        let code = d.disassemble(&gen[0]).unwrap();
        assert!(
            code.contains("jmp") || code.contains("brz") || code.contains("brnz"),
            "without unrolling a loop must remain:\n{code}"
        );
        assert_eq!(d.rt_stats().unwrap().loops_unrolled, 0);
    }

    #[test]
    fn dynamic_compilation_charges_overhead() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        d.run("power", &[Value::I(3), Value::I(4)]).unwrap();
        assert!(d.stats().dyncomp_cycles > 0);
        assert!(d.stats().dispatch_cycles > 0);
        assert!(d.rt_stats().unwrap().instrs_generated > 0);
    }

    #[test]
    fn snapshot_then_warm_start_skips_respecialization() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        let cases = [(3i64, 4i64), (2, 7), (5, 2)];
        let mut want = Vec::new();
        for (b, e) in cases {
            want.push(d.run("power", &[Value::I(b), Value::I(e)]).unwrap());
        }
        assert_eq!(d.rt_stats().unwrap().specializations, 3);
        let bundle = d.cache_bundle().unwrap();

        let mut w = p.warm_start_from_str(&bundle).unwrap();
        let rt = w.rt_stats().unwrap();
        assert_eq!(rt.cache_warm_loads, 3);
        assert_eq!(rt.cache_warm_rejects, 0);
        for ((b, e), want) in cases.iter().zip(&want) {
            let got = w.run("power", &[Value::I(*b), Value::I(*e)]).unwrap();
            assert_eq!(got, *want, "power({b}, {e}) after warm start");
        }
        // Every dispatch hit restored code; nothing re-specialized.
        assert_eq!(w.rt_stats().unwrap().specializations, 0);

        // The restored code is byte-identical to what the cold session
        // cached, binding for binding. (Base addresses are module-layout
        // artifacts, not code bytes — the two modules install in
        // different orders.)
        let norm = |mut v: Vec<(u32, Vec<u64>, crate::CodeFunc)>| {
            for (_, _, f) in &mut v {
                f.base_addr = 0;
            }
            v.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
            v
        };
        assert_eq!(norm(d.cached_code()), norm(w.cached_code()));
    }

    #[test]
    fn corrupted_fingerprint_is_rejected_per_entry_not_fatal() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        for e in [4i64, 7, 2] {
            d.run("power", &[Value::I(3), Value::I(e)]).unwrap();
        }
        let mut bundle = crate::CacheBundle::parse(&d.cache_bundle().unwrap()).unwrap();
        bundle.entries[0].config_hash ^= 1;
        let corrupted_key = bundle.entries[0].key.clone();

        let mut w = p.warm_start_from_str(&bundle.to_json()).unwrap();
        let rt = w.rt_stats().unwrap();
        assert_eq!(rt.cache_warm_rejects, 1, "only the corrupted entry drops");
        assert_eq!(rt.cache_warm_loads, 2);
        // The rejected key still computes correctly — it just pays one
        // re-specialization.
        let e = corrupted_key[0] as i64;
        assert_eq!(
            w.run("power", &[Value::I(3), Value::I(e)]).unwrap(),
            Some(Value::I(3i64.pow(e as u32)))
        );
        assert_eq!(w.rt_stats().unwrap().specializations, 1);
    }

    #[test]
    fn warm_start_rejects_a_mismatched_program_wholesale() {
        let p = Compiler::new().compile(POWER).unwrap();
        let mut d = p.dynamic_session();
        d.run("power", &[Value::I(3), Value::I(4)]).unwrap();
        let bundle = d.cache_bundle().unwrap();
        // A different program parses the bundle fine but must reject
        // every entry at the fingerprint check.
        let q = Compiler::new()
            .compile("int twice(int x) { make_static(x); return x + x; }")
            .unwrap();
        let mut w = q.warm_start_from_str(&bundle).unwrap();
        let rt = w.rt_stats().unwrap();
        assert_eq!(rt.cache_warm_loads, 0);
        assert_eq!(rt.cache_warm_rejects, 1);
        assert_eq!(w.run("twice", &[Value::I(21)]).unwrap(), Some(Value::I(42)));
        // Unparseable input is the only hard error.
        assert!(q.warm_start_from_str("{not a bundle").is_err());
    }

    #[test]
    fn warm_shared_runtime_serves_restored_code_to_threads() {
        let p = Compiler::new().compile(POWER).unwrap();
        let shared = p.shared_runtime();
        let mut t = p.threaded_session(&shared);
        for e in [4i64, 7] {
            t.run("power", &[Value::I(3), Value::I(e)]).unwrap();
        }
        let bundle = t.cache_bundle().unwrap();

        let warm = p.warm_shared_runtime(&bundle).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.cache_warm_loads, 2);
        assert_eq!(stats.cache_warm_rejects, 0);
        let mut wt = p.threaded_session(&warm);
        assert_eq!(
            wt.run("power", &[Value::I(3), Value::I(4)]).unwrap(),
            Some(Value::I(81))
        );
        assert_eq!(
            wt.run("power", &[Value::I(3), Value::I(7)]).unwrap(),
            Some(Value::I(2187))
        );
        // Both dispatches hit restored bindings: no specialization ran.
        assert_eq!(warm.stats().specializations, 0);
    }

    #[test]
    fn asymptotic_speedup_on_power() {
        // After the first (compiling) call, the specialized region must
        // beat the static build per invocation.
        let p = Compiler::new().compile(POWER).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let args = [Value::I(3), Value::I(12)];
        d.run("power", &args).unwrap(); // compile
        let (_, ds) = d.run_measured("power", &args).unwrap();
        let (_, ss) = s.run_measured("power", &args).unwrap();
        assert!(
            ds.run_cycles() < ss.run_cycles(),
            "specialized {} vs static {} cycles",
            ds.run_cycles(),
            ss.run_cycles()
        );
    }
}
