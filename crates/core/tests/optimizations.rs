//! Behavioral tests for each of DyC's staged run-time optimizations
//! (§2.2), exercised through the public API. Each test checks both
//! *semantics* (static and dynamic builds agree) and the *mechanism*
//! (instrumentation counters / generated-code shape).

use dyc::{Compiler, OptConfig, Value};

fn compile(src: &str) -> dyc::Program {
    Compiler::new().compile(src).unwrap()
}

fn compile_cfg(src: &str, cfg: OptConfig) -> dyc::Program {
    Compiler::with_config(cfg).compile(src).unwrap()
}

// ---------------------------------------------------------------- unrolling

const DOT: &str = r#"
    float dot(float a[n], float b[n], int n) {
        make_static(a, n);
        float sum = 0.0;
        for (int i = 0; i < n; ++i) {
            sum = sum + a@[i] * b[i];
        }
        return sum;
    }
"#;

#[test]
fn complete_unrolling_with_static_loads_specializes_dot_product() {
    let p = compile(DOT);
    let mut d = p.dynamic_session();
    let a = d.alloc(4);
    let b = d.alloc(4);
    d.mem().write_floats(a, &[1.0, 0.0, 2.0, 0.0]);
    d.mem().write_floats(b, &[10.0, 20.0, 30.0, 40.0]);
    let out = d
        .run("dot", &[Value::I(a), Value::I(b), Value::I(4)])
        .unwrap();
    assert_eq!(out, Some(Value::F(70.0)));
    let rt = d.rt_stats().unwrap();
    assert!(rt.loops_unrolled >= 1, "loop must unroll");
    assert_eq!(rt.static_loads, 4, "a@[i] executes at specialization time");
    // The zero elements kill their multiplies and adds; the loads of b[1]
    // and b[3] die with them (dead-assignment elimination).
    assert!(rt.zero_copy_folds >= 2);
    assert!(rt.dae_removed >= 2);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    let loads = code.matches("ldf").count();
    assert_eq!(
        loads, 2,
        "only the two nonzero elements load from b:\n{code}"
    );
}

#[test]
fn dot_product_matches_static_build_across_vectors() {
    let p = compile(DOT);
    for vals in [
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 1.0, 1.0, 1.0],
        [0.5, -1.5, 0.0, 3.0],
    ] {
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        for sess in [&mut s, &mut d] {
            let a = sess.alloc(4);
            let b = sess.alloc(4);
            sess.mem().write_floats(a, &vals);
            sess.mem().write_floats(b, &[10.0, 20.0, 30.0, 40.0]);
        }
        let sv = s
            .run("dot", &[Value::I(0), Value::I(4), Value::I(4)])
            .unwrap();
        let dv = d
            .run("dot", &[Value::I(0), Value::I(4), Value::I(4)])
            .unwrap();
        assert_eq!(sv, dv, "vals {vals:?}");
    }
}

// ------------------------------------------------------- multi-way unrolling

const BINARY: &str = r#"
    int bsearch(int a[n], int n, int key) {
        make_static(a, n);
        int lo = 0;
        int hi = n - 1;
        while (lo <= hi) {
            int mid = (lo + hi) / 2;
            int v = a@[mid];
            if (v == key) { return mid; }
            if (v < key) { lo = mid + 1; } else { hi = mid - 1; }
        }
        return -1;
    }
"#;

#[test]
fn binary_search_multi_way_unrolls_into_a_comparison_tree() {
    let p = compile(BINARY);
    let mut d = p.dynamic_session();
    let a = d.alloc(8);
    d.mem().write_ints(a, &[2, 3, 5, 7, 11, 13, 17, 19]);
    for (key, want) in [(7, 3), (2, 0), (19, 7), (4, -1)] {
        let out = d
            .run("bsearch", &[Value::I(a), Value::I(8), Value::I(key)])
            .unwrap();
        assert_eq!(out, Some(Value::I(want)), "key {key}");
    }
    let rt = d.rt_stats().unwrap();
    assert!(
        rt.multi_way_unroll,
        "divergent lo/hi stores mean multi-way unrolling"
    );
    assert_eq!(
        rt.specializations, 1,
        "same array: one specialization serves all keys"
    );
    // The tree contains the array values as immediates — no loads at all.
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(
        !code.contains("ldi"),
        "array fully folded into code:\n{code}"
    );
}

// ------------------------------------------------------------- static calls

const CHEBY: &str = r#"
    float node(int k, int n) {
        make_static(n, k);
        return cos(3.14159265358979 * ((float) k + 0.5) / (float) n);
    }
"#;

#[test]
fn static_calls_memoize_cos_at_compile_time() {
    let p = compile(CHEBY);
    let mut d = p.dynamic_session();
    let out = d.run("node", &[Value::I(0), Value::I(4)]).unwrap().unwrap();
    let expected = (std::f64::consts::PI * 0.5 / 4.0).cos();
    assert!((out.as_f() - expected).abs() < 1e-9);
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.static_calls, 1, "cos ran at specialization time");
    // The generated code is a bare return of a constant.
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(!code.contains("hcall"), "no run-time cos call:\n{code}");
}

#[test]
fn static_calls_disabled_keeps_cos_at_run_time() {
    let cfg = OptConfig::all().without("static_calls").unwrap();
    let p = compile_cfg(CHEBY, cfg);
    let mut d = p.dynamic_session();
    d.run("node", &[Value::I(0), Value::I(4)]).unwrap();
    assert_eq!(d.rt_stats().unwrap().static_calls, 0);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(code.contains("hcall"), "cos must remain:\n{code}");
}

#[test]
fn user_static_functions_run_at_compile_time() {
    let src = r#"
        static int cube(int x) { return x * x * x; }
        int f(int n, int d) {
            make_static(n);
            return cube(n) + d;
        }
    "#;
    let p = compile(src);
    let mut d = p.dynamic_session();
    let out = d.run("f", &[Value::I(3), Value::I(5)]).unwrap();
    assert_eq!(out, Some(Value::I(32)));
    assert_eq!(d.rt_stats().unwrap().static_calls, 1);
}

// ------------------------------------------- zero/copy propagation and DAE

const SCALE: &str = r#"
    void scale(float x[n], float y[n], int n, float k) {
        make_static(n, k);
        for (int i = 0; i < n; ++i) {
            y[i] = x[i] * k;
        }
    }
"#;

#[test]
fn multiply_by_one_vanishes_with_zero_copy_propagation() {
    let p = compile(SCALE);
    let mut d = p.dynamic_session();
    let x = d.alloc(3);
    let y = d.alloc(3);
    d.mem().write_floats(x, &[1.5, -2.0, 4.0]);
    d.run(
        "scale",
        &[Value::I(x), Value::I(y), Value::I(3), Value::F(1.0)],
    )
    .unwrap();
    assert_eq!(d.mem().read_floats(y, 3), vec![1.5, -2.0, 4.0]);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(
        !code.contains("fmul"),
        "k == 1.0 removes every multiply:\n{code}"
    );
    assert!(
        !code.contains("fmov"),
        "copy propagation removes the moves too:\n{code}"
    );
}

#[test]
fn multiply_by_one_becomes_fmov_with_only_strength_reduction() {
    let cfg = OptConfig::all().without("zero_copy_propagation").unwrap();
    let p = compile_cfg(SCALE, cfg);
    let mut d = p.dynamic_session();
    let x = d.alloc(3);
    let y = d.alloc(3);
    d.mem().write_floats(x, &[1.5, -2.0, 4.0]);
    d.run(
        "scale",
        &[Value::I(x), Value::I(y), Value::I(3), Value::F(1.0)],
    )
    .unwrap();
    assert_eq!(d.mem().read_floats(y, 3), vec![1.5, -2.0, 4.0]);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    // §2.2.7: strength reduction alone turns fmul into fmov — which costs
    // the same as the multiply on the 21164, so nothing is gained.
    assert!(code.contains("fmov"), "expected moves:\n{code}");
    assert!(
        !code.contains("fmul"),
        "multiplies strength-reduced:\n{code}"
    );
    assert!(d.rt_stats().unwrap().strength_reductions >= 3);
}

#[test]
fn multiply_by_zero_kills_the_loads_via_dae() {
    let p = compile(SCALE);
    let mut d = p.dynamic_session();
    let x = d.alloc(3);
    let y = d.alloc(3);
    d.mem().write_floats(x, &[1.5, -2.0, 4.0]);
    d.run(
        "scale",
        &[Value::I(x), Value::I(y), Value::I(3), Value::F(0.0)],
    )
    .unwrap();
    assert_eq!(d.mem().read_floats(y, 3), vec![0.0, 0.0, 0.0]);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(
        !code.contains("ldf"),
        "loads of x are dead when k == 0:\n{code}"
    );
    assert!(d.rt_stats().unwrap().dae_removed >= 3);
}

#[test]
fn dae_disabled_keeps_the_dead_loads() {
    let cfg = OptConfig::all()
        .without("dead_assignment_elimination")
        .unwrap();
    let p = compile_cfg(SCALE, cfg);
    let mut d = p.dynamic_session();
    let x = d.alloc(3);
    let y = d.alloc(3);
    d.run(
        "scale",
        &[Value::I(x), Value::I(y), Value::I(3), Value::F(0.0)],
    )
    .unwrap();
    assert_eq!(d.mem().read_floats(y, 3), vec![0.0, 0.0, 0.0]);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(
        code.contains("ldf"),
        "without DAE the dead loads stay:\n{code}"
    );
    assert_eq!(d.rt_stats().unwrap().dae_removed, 0);
}

// --------------------------------------------------------- strength reduction

const MULDIV: &str = r#"
    int muldiv(int x, int k) {
        make_static(k);
        return (x * k) / k + x % k;
    }
"#;

#[test]
fn strength_reduction_turns_power_of_two_ops_into_shifts() {
    let p = compile(MULDIV);
    let mut d = p.dynamic_session();
    for x in [-17i64, -8, -1, 0, 1, 5, 100] {
        let out = d.run("muldiv", &[Value::I(x), Value::I(8)]).unwrap();
        assert_eq!(out, Some(Value::I(x + x % 8)), "x = {x}");
    }
    let rt = d.rt_stats().unwrap();
    assert!(rt.strength_reductions >= 3, "mul, div and rem all reduce");
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(
        !code.contains("div   r"),
        "division strength-reduced:\n{code}"
    );
    assert!(
        !code.contains("rem   r"),
        "remainder strength-reduced:\n{code}"
    );
    assert!(code.contains("shl") || code.contains("shr"));
}

#[test]
fn strength_reduction_respects_c_division_semantics() {
    // Truncating division: -7 / 4 == -1 (not -2), -7 % 4 == -3.
    let p = compile("int f(int x, int k) { make_static(k); return x / k * 100 + x % k; }");
    let mut d = p.dynamic_session();
    let mut s = p.static_session();
    for x in [-9i64, -7, -4, -1, 0, 1, 7, 9] {
        let dv = d.run("f", &[Value::I(x), Value::I(4)]).unwrap();
        let sv = s.run("f", &[Value::I(x), Value::I(4)]).unwrap();
        assert_eq!(dv, sv, "x = {x}");
        assert_eq!(dv, Some(Value::I((x / 4) * 100 + x % 4)));
    }
}

#[test]
fn strength_reduction_disabled_keeps_the_multiply() {
    let cfg = OptConfig::all()
        .without("strength_reduction")
        .unwrap()
        .without("zero_copy_propagation")
        .unwrap();
    let p = compile_cfg("int f(int x, int k) { make_static(k); return x * k; }", cfg);
    let mut d = p.dynamic_session();
    d.run("f", &[Value::I(3), Value::I(8)]).unwrap();
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    assert!(code.contains("mul"), "multiply must remain:\n{code}");
    assert_eq!(d.rt_stats().unwrap().strength_reductions, 0);
}

// ------------------------------------------------- internal promotions

const PROMOTE: &str = r#"
    int walk(int a[n], int n, int start) {
        make_static(n);
        int idx = start;
        promote(idx);
        int sum = 0;
        for (int i = 0; i < n; ++i) {
            sum = sum + a@[idx] * i;
            idx = idx;
        }
        return sum;
    }
"#;

#[test]
fn internal_promotion_specializes_on_a_runtime_value() {
    let p = compile(PROMOTE);
    let mut d = p.dynamic_session();
    let a = d.alloc(4);
    d.mem().write_ints(a, &[10, 20, 30, 40]);
    // First call: entry specialization for n, internal promotion of idx=2.
    let out = d
        .run("walk", &[Value::I(a), Value::I(3), Value::I(2)])
        .unwrap();
    assert_eq!(out, Some(Value::I(30 * (1 + 2))));
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.internal_promotions, 1);
    assert_eq!(rt.specializations, 2, "entry + promoted continuation");
    // Second call with a different start: the entry specialization is
    // reused; only the promotion re-specializes.
    let out = d
        .run("walk", &[Value::I(a), Value::I(3), Value::I(1)])
        .unwrap();
    assert_eq!(out, Some(Value::I(20 * 3)));
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 3);
}

#[test]
fn internal_promotions_disabled_leaves_value_dynamic() {
    let cfg = OptConfig::all().without("internal_promotions").unwrap();
    let p = compile_cfg(PROMOTE, cfg);
    let mut d = p.dynamic_session();
    let a = d.alloc(4);
    d.mem().write_ints(a, &[10, 20, 30, 40]);
    let out = d
        .run("walk", &[Value::I(a), Value::I(3), Value::I(2)])
        .unwrap();
    assert_eq!(out, Some(Value::I(90)));
    assert_eq!(d.rt_stats().unwrap().internal_promotions, 0);
}

// ------------------------------------------------- polyvariant division

const SHADER: &str = r#"
    float shade(float base, float light, int lit) {
        make_static(lit);
        float k = 0.0;
        if (lit) {
            k = light;
            promote(k);
        }
        return base + base * k;
    }
"#;

#[test]
fn polyvariant_division_specializes_only_the_annotated_path() {
    let p = compile(SHADER);
    let mut d = p.dynamic_session();
    let lit = d
        .run("shade", &[Value::F(2.0), Value::F(0.5), Value::I(1)])
        .unwrap();
    assert_eq!(lit, Some(Value::F(3.0)));
    let unlit = d
        .run("shade", &[Value::F(2.0), Value::F(0.5), Value::I(0)])
        .unwrap();
    assert_eq!(unlit, Some(Value::F(2.0)), "k stays 0.0 on the unlit path");
}

// ------------------------------------------------- dispatch policies

const POLICY_SRC: &str = r#"
    int poly(int x, int d) {
        make_static(x: cache_one_unchecked);
        return x * d;
    }
"#;

#[test]
fn unchecked_dispatch_costs_ten_cycles() {
    let p = compile(POLICY_SRC);
    let mut d = p.dynamic_session();
    d.run("poly", &[Value::I(3), Value::I(5)]).unwrap();
    let before = d.stats().dispatch_cycles;
    d.run("poly", &[Value::I(3), Value::I(7)]).unwrap();
    let per = d.stats().dispatch_cycles - before;
    assert_eq!(per, 10, "§4.4.3: unchecked dispatch ≈ 10 cycles");
    assert!(d.rt_stats().unwrap().dispatch_unchecked >= 2);
}

#[test]
fn cache_all_dispatch_costs_about_ninety_cycles() {
    let cfg = OptConfig::all().without("unchecked_dispatching").unwrap();
    let p = compile_cfg(POLICY_SRC, cfg);
    let mut d = p.dynamic_session();
    d.run("poly", &[Value::I(3), Value::I(5)]).unwrap();
    let before = d.stats().dispatch_cycles;
    d.run("poly", &[Value::I(3), Value::I(7)]).unwrap();
    let per = d.stats().dispatch_cycles - before;
    assert!(
        (70..=120).contains(&per),
        "§4.4.3: hashed dispatch ≈ 90 cycles, got {per}"
    );
    assert!(d.rt_stats().unwrap().dispatch_hashed >= 2);
}

// ---------------------------------------------------- static loads ablation

#[test]
fn static_loads_disabled_keeps_array_reads_at_run_time() {
    let cfg = OptConfig::all().without("static_loads").unwrap();
    let p = compile_cfg(DOT, cfg);
    let mut d = p.dynamic_session();
    let a = d.alloc(4);
    let b = d.alloc(4);
    d.mem().write_floats(a, &[1.0, 0.0, 2.0, 0.0]);
    d.mem().write_floats(b, &[10.0, 20.0, 30.0, 40.0]);
    let out = d
        .run("dot", &[Value::I(a), Value::I(b), Value::I(4)])
        .unwrap();
    assert_eq!(out, Some(Value::F(70.0)));
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.static_loads, 0);
    let gen = d.generated_functions();
    let code = d.disassemble(&gen[0]).unwrap();
    // All 8 loads (4 from a, 4 from b) remain.
    assert_eq!(code.matches("ldf").count(), 8, "loads survive:\n{code}");
}

// ------------------------------------------------------------- make_dynamic

#[test]
fn make_dynamic_ends_specialization() {
    let src = r#"
        int f(int x, int d) {
            make_static(x);
            int a = x * 2;
            make_dynamic(x);
            return a + x * d;
        }
    "#;
    let p = compile(src);
    let mut s = p.static_session();
    let mut d = p.dynamic_session();
    for (x, dd) in [(3i64, 4i64), (0, 9), (-5, 2)] {
        let sv = s.run("f", &[Value::I(x), Value::I(dd)]).unwrap();
        let dv = d.run("f", &[Value::I(x), Value::I(dd)]).unwrap();
        assert_eq!(sv, dv, "f({x}, {dd})");
        assert_eq!(sv, Some(Value::I(x * 2 + x * dd)));
    }
}

// ------------------------------------------------------------ side effects

#[test]
fn prints_inside_unrolled_loops_happen_in_order() {
    let src = r#"
        void emit(int n) {
            make_static(n);
            for (int i = 0; i < n; ++i) { print_int(i * i); }
        }
    "#;
    let p = compile(src);
    let mut s = p.static_session();
    let mut d = p.dynamic_session();
    s.run("emit", &[Value::I(4)]).unwrap();
    d.run("emit", &[Value::I(4)]).unwrap();
    assert_eq!(s.output(), d.output());
    assert_eq!(
        d.output(),
        &[Value::I(0), Value::I(1), Value::I(4), Value::I(9)]
    );
}

// ------------------------------------------------- recursion through regions

#[test]
fn dynamic_regions_called_from_plain_functions() {
    let src = r#"
        int power(int base, int exp) {
            make_static(exp);
            int r = 1;
            while (exp > 0) { r = r * base; exp = exp - 1; }
            return r;
        }
        int sum_powers(int b, int hi) {
            int s = 0;
            for (int e = 0; e <= hi; ++e) { s += power(b, e); }
            return s;
        }
    "#;
    let p = compile(src);
    let mut d = p.dynamic_session();
    let out = d.run("sum_powers", &[Value::I(2), Value::I(5)]).unwrap();
    assert_eq!(out, Some(Value::I(1 + 2 + 4 + 8 + 16 + 32)));
    // One specialization per exponent value.
    assert_eq!(d.rt_stats().unwrap().specializations, 6);
}

// --------------------------------------------- bounded caches & invalidation

const BOUNDED_SRC: &str = r#"
    int poly(int x, int d) {
        make_static(x: cache_all(2));
        return x * d;
    }
"#;

#[test]
fn bounded_cache_respecializes_evicted_keys_correctly() {
    let p = compile(BOUNDED_SRC);
    let mut d = p.dynamic_session();
    // Fill the two-entry cache, then overflow it with a third key: the
    // second-chance clock must evict exactly one resident version.
    for x in [1i64, 2, 3] {
        let out = d.run("poly", &[Value::I(x), Value::I(10)]).unwrap();
        assert_eq!(out, Some(Value::I(x * 10)));
    }
    let rt = d.rt_stats().unwrap();
    assert_eq!(rt.specializations, 3);
    assert_eq!(rt.cache_evictions, 1);
    assert!(d.runtime().unwrap().cache_entries().len() <= 2);
    // Revisiting every key — including whichever one was evicted — must
    // transparently re-specialize and still compute the right answers.
    let before = d.rt_stats().unwrap().clone();
    for x in [1i64, 2, 3] {
        let out = d.run("poly", &[Value::I(x), Value::I(7)]).unwrap();
        assert_eq!(out, Some(Value::I(x * 7)), "evicted key must respecialize");
    }
    let delta = d.rt_stats().unwrap().delta(&before);
    assert!(
        delta.specializations > 0,
        "the evicted key cannot still be cached"
    );
    assert!(d.runtime().unwrap().cache_entries().len() <= 2);
}

#[test]
fn invalidation_never_serves_stale_code() {
    // Plain make_static under the default cache-all policy (unchecked
    // upgrading disabled so the site keeps a keyed hash table).
    let src = r#"
        int poly(int x, int d) {
            make_static(x);
            return x * d;
        }
    "#;
    let cfg = OptConfig::all().without("unchecked_dispatching").unwrap();
    let p = compile_cfg(src, cfg);
    let mut d = p.dynamic_session();
    assert_eq!(
        d.run("poly", &[Value::I(5), Value::I(3)]).unwrap(),
        Some(Value::I(15))
    );
    assert_eq!(d.rt_stats().unwrap().specializations, 1);
    d.runtime().unwrap().invalidate_site(0);
    assert_eq!(d.rt_stats().unwrap().cache_invalidations, 1);
    assert!(d.runtime().unwrap().cache_entries().is_empty());
    // The same key must miss and re-specialize — never reuse the stale
    // FuncId dropped by the invalidation.
    assert_eq!(
        d.run("poly", &[Value::I(5), Value::I(4)]).unwrap(),
        Some(Value::I(20))
    );
    assert_eq!(d.rt_stats().unwrap().specializations, 2);
    assert_eq!(d.stats().dispatch_misses, 2);
}
