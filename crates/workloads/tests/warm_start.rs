//! Snapshot → warm-start round-trip over the full benchmark suite.
//!
//! For every workload: run the region cold (specializing), snapshot the
//! session's code cache as a bundle, warm-start a fresh session from it,
//! and re-run the same deterministic invocations. The warm session must
//! produce identical, validated results with **zero** specializations —
//! every dispatch, entry sites and internal promotions alike, hits
//! restored code — and its cached bindings must be instruction-identical
//! to the cold session's.

use dyc::{CodeFunc, Compiler, OptConfig, PolicyMode, Session, Value};
use dyc_workloads::{all, Workload};

/// Region invocations (enough to exercise cache hits after the miss).
fn n_reps() -> usize {
    if cfg!(debug_assertions) {
        2
    } else {
        4
    }
}

fn run_sequence(w: &dyn Workload, sess: &mut Session, reps: usize) -> Vec<Option<Value>> {
    let meta = w.meta();
    let args = w.setup_region(sess);
    sess.set_step_limit(200_000_000);
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let r = sess
            .run(meta.region_func, &args)
            .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
        assert!(
            w.check_region(r, sess),
            "{}: region result failed validation",
            meta.name
        );
        w.reset(sess, &args);
        out.push(r);
    }
    out
}

/// Sort cached bindings into a comparable form, dropping the base
/// address (a module-layout artifact, not code bytes).
fn normalize(mut entries: Vec<(u32, Vec<u64>, CodeFunc)>) -> Vec<(u32, Vec<u64>, String)> {
    entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    entries
        .into_iter()
        .map(|(s, k, f)| {
            (
                s,
                k,
                format!(
                    "name={} params={} regs={} code={:?}",
                    f.name, f.n_params, f.n_regs, f.code
                ),
            )
        })
        .collect()
}

#[test]
fn every_workload_warm_starts_with_zero_respecializations() {
    for w in all() {
        let meta = w.meta();
        let program = Compiler::new()
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", meta.name));

        // Cold: specialize and validate.
        let mut cold = program.dynamic_session();
        let cold_results = run_sequence(w.as_ref(), &mut cold, n_reps());
        let cold_stats = cold.rt_stats().unwrap().clone();
        assert!(
            cold_stats.specializations > 0,
            "{}: cold run never specialized",
            meta.name
        );
        let bundle = cold.cache_bundle().unwrap();

        // Warm: restore, re-run, compare.
        let mut warm = program
            .warm_start_from_str(&bundle)
            .unwrap_or_else(|e| panic!("{}: warm start failed: {e}", meta.name));
        {
            let rt = warm.rt_stats().unwrap();
            assert!(rt.cache_warm_loads > 0, "{}: nothing restored", meta.name);
            assert_eq!(rt.cache_warm_rejects, 0, "{}: rejected entries", meta.name);
            assert_eq!(
                rt.cache_warm_loads, cold_stats.specializations,
                "{}: restored count != cold specializations",
                meta.name
            );
        }
        let warm_results = run_sequence(w.as_ref(), &mut warm, n_reps());
        assert_eq!(warm_results, cold_results, "{}: results differ", meta.name);
        assert_eq!(
            warm.rt_stats().unwrap().specializations,
            0,
            "{}: warm run re-specialized",
            meta.name
        );
        assert_eq!(
            normalize(cold.cached_code()),
            normalize(warm.cached_code()),
            "{}: cached code differs after warm start",
            meta.name
        );
    }
}

/// Warm start into an *adaptive* session: restored cache entries are
/// seeded as already promoted, so re-running the cold sequence hits
/// restored code everywhere — zero re-specializations, and, critically,
/// zero policy deferrals: the engine must not make a restored key climb
/// the break-even threshold all over again. The bundle itself is
/// policy-agnostic (`config_hash` excludes the policy mode), so an
/// always-mode snapshot restores cleanly into an adaptive session.
#[test]
fn adaptive_warm_start_neither_respecializes_nor_defers() {
    for w in all() {
        let meta = w.meta();
        let cold_prog = Compiler::with_config(OptConfig::all())
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", meta.name));

        // Cold, always-specialize: populate and snapshot the cache.
        let mut cold = cold_prog.dynamic_session();
        let cold_results = run_sequence(w.as_ref(), &mut cold, n_reps());
        let cold_stats = cold.rt_stats().unwrap().clone();
        let bundle = cold.cache_bundle().unwrap();

        // Warm, adaptive: every restored key is born promoted.
        let adaptive_prog =
            Compiler::with_config(OptConfig::all().with_policy(PolicyMode::Adaptive))
                .compile(&w.source())
                .unwrap_or_else(|e| panic!("{}: adaptive compile failed: {e}", meta.name));
        let mut warm = adaptive_prog
            .warm_start_from_str(&bundle)
            .unwrap_or_else(|e| panic!("{}: adaptive warm start failed: {e}", meta.name));
        {
            let rt = warm.rt_stats().unwrap();
            assert_eq!(
                rt.cache_warm_loads, cold_stats.specializations,
                "{}: restored count != cold specializations",
                meta.name
            );
            assert_eq!(rt.cache_warm_rejects, 0, "{}: rejected entries", meta.name);
        }
        let warm_results = run_sequence(w.as_ref(), &mut warm, n_reps());
        assert_eq!(warm_results, cold_results, "{}: results differ", meta.name);

        let rt = warm.rt_stats().unwrap();
        assert_eq!(
            rt.specializations, 0,
            "{}: adaptive warm run re-specialized",
            meta.name
        );
        assert_eq!(
            (rt.policy_defers, rt.policy_throttled, rt.policy_promotes),
            (0, 0, 0),
            "{}: restored entries tripped the policy engine",
            meta.name
        );
    }
}
