//! Concurrent-dispatch stress test: every workload, many threads, one
//! shared runtime — verified against a single-threaded oracle.
//!
//! Each thread runs the *same* deterministic region-invocation sequence.
//! Under the blocking single-flight policy that serializes
//! specializations globally (a thread only reaches invocation N after
//! invocation N−1's specialization is published), so the shared cache
//! must end up with exactly the oracle's bindings: same (site, key)
//! pairs, instruction-identical code, and the same global
//! specialization count — i.e. zero duplicate specializations across
//! all threads. Steady-state dispatch must also stay allocation-free in
//! every thread.

use dyc::{CodeFunc, Compiler, MissPolicy, Session, SharedOptions, Value};
use dyc_workloads::{all, Workload};
use std::sync::Arc;

/// Threads per workload (lighter under debug builds, which run the
/// interpreter ~20x slower).
fn n_threads() -> usize {
    if cfg!(debug_assertions) {
        4
    } else {
        8
    }
}

/// Region invocations per thread.
fn n_reps() -> usize {
    if cfg!(debug_assertions) {
        3
    } else {
        6
    }
}

/// Run `reps` region invocations with the given args in one session.
/// Returns the region results, in order.
fn run_invocations(
    w: &dyn Workload,
    sess: &mut Session,
    args: &[Value],
    reps: usize,
) -> Vec<Option<Value>> {
    let meta = w.meta();
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let r = sess
            .run(meta.region_func, args)
            .unwrap_or_else(|e| panic!("{}: region run failed: {e}", meta.name));
        assert!(
            w.check_region(r, sess),
            "{}: region result failed validation",
            meta.name
        );
        w.reset(sess, args);
        out.push(r);
    }
    out
}

/// Set up the workload's deterministic inputs and run its sequence.
fn run_sequence(w: &dyn Workload, sess: &mut Session, reps: usize) -> Vec<Option<Value>> {
    let args = w.setup_region(sess);
    sess.set_step_limit(200_000_000);
    run_invocations(w, sess, &args, reps)
}

/// Sort cached bindings into a comparable form, dropping the name and
/// address (both embed module-local, order-dependent detail).
fn normalize(mut entries: Vec<(u32, Vec<u64>, CodeFunc)>) -> Vec<(u32, Vec<u64>, String)> {
    entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    entries
        .into_iter()
        .map(|(s, k, f)| {
            (
                s,
                k,
                format!("params={} regs={} code={:?}", f.n_params, f.n_regs, f.code),
            )
        })
        .collect()
}

#[test]
fn all_workloads_threads_match_single_threaded_oracle() {
    for w in all() {
        let meta = w.meta();
        let program = Compiler::new()
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", meta.name));
        let reps = n_reps();

        // Single-threaded oracle.
        let mut oracle = program.dynamic_session();
        let oracle_results = run_sequence(w.as_ref(), &mut oracle, reps);
        let oracle_specs = oracle.rt_stats().unwrap().specializations;
        let oracle_code = normalize(oracle.cached_code());
        assert!(
            !oracle_code.is_empty(),
            "{}: oracle cached no specializations",
            meta.name
        );

        // Shared concurrent runtime, all threads running the same
        // sequence under the blocking miss policy.
        let shared = program.shared_runtime();
        let threads = n_threads();
        let w = Arc::new(w);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let w = Arc::clone(&w);
                let shared = Arc::clone(&shared);
                let sess = program.threaded_session(&shared);
                std::thread::spawn(move || {
                    let mut sess = sess;
                    let wl = w.as_ref().as_ref();
                    let args = wl.setup_region(&mut sess);
                    sess.set_step_limit(200_000_000);
                    let results = run_invocations(wl, &mut sess, &args, reps);
                    // Steady state: every specialization is cached by
                    // now, so further invocations must not allocate in
                    // dispatch.
                    let warm_base = sess.rt_stats().unwrap().clone();
                    run_invocations(wl, &mut sess, &args, 2);
                    let warm = sess.rt_stats().unwrap().delta(&warm_base);
                    assert_eq!(
                        warm.dispatch_allocs,
                        0,
                        "{}: warm dispatch allocated",
                        wl.meta().name
                    );
                    (results, sess.cached_code())
                })
            })
            .collect();

        let mut thread_snapshots = Vec::new();
        for h in handles {
            let (results, snapshot) = h.join().unwrap();
            assert_eq!(
                results, oracle_results,
                "{}: threaded results diverge from oracle",
                meta.name
            );
            thread_snapshots.push(snapshot);
        }

        // No duplicate specializations: the global count matches the
        // oracle exactly, and every suppressed racer is accounted for.
        let s = shared.stats();
        assert_eq!(
            s.specializations, oracle_specs,
            "{}: single-flight failed to suppress duplicate specializations",
            meta.name
        );
        assert_eq!(
            s.single_flight_fallbacks, 0,
            "{}: blocking policy",
            meta.name
        );

        // Byte-identical code under the same (site, key) bindings.
        for snapshot in thread_snapshots {
            assert_eq!(
                normalize(snapshot),
                oracle_code,
                "{}: shared cache diverges from oracle cache",
                meta.name
            );
        }
        assert_eq!(
            shared.n_sites(),
            reps_independent_site_count(&mut program.dynamic_session(), w.as_ref().as_ref(), reps),
            "{}: internal promotion sites diverge from oracle",
            meta.name
        );
    }
}

/// The oracle's site count after the same sequence (entry sites plus
/// internal promotions).
fn reps_independent_site_count(sess: &mut Session, w: &dyn Workload, reps: usize) -> usize {
    run_sequence(w, sess, reps);
    sess.runtime().map(|rt| rt.n_sites()).unwrap_or(0)
}

#[test]
fn traced_threads_match_untraced_oracle_and_stay_allocation_free() {
    // Tracing is observational: with per-thread recorders on, every
    // thread must produce the same results and the same cached code
    // bytes as the untraced single-threaded oracle, keep the warm
    // dispatch path allocation-free, and actually record events.
    for w in all() {
        let meta = w.meta();
        let program = Compiler::new()
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", meta.name));
        let reps = n_reps();

        let mut oracle = program.dynamic_session();
        let oracle_results = run_sequence(w.as_ref(), &mut oracle, reps);
        let oracle_specs = oracle.rt_stats().unwrap().specializations;
        let oracle_code = normalize(oracle.cached_code());

        let shared = program.shared_runtime_with(SharedOptions {
            trace: true,
            ..SharedOptions::default()
        });
        let threads = n_threads();
        let w = Arc::new(w);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let w = Arc::clone(&w);
                let shared = Arc::clone(&shared);
                let sess = program.threaded_session(&shared);
                std::thread::spawn(move || {
                    let mut sess = sess;
                    let wl = w.as_ref().as_ref();
                    let args = wl.setup_region(&mut sess);
                    sess.set_step_limit(200_000_000);
                    let results = run_invocations(wl, &mut sess, &args, reps);
                    let warm_base = sess.rt_stats().unwrap().clone();
                    run_invocations(wl, &mut sess, &args, 2);
                    let warm = sess.rt_stats().unwrap().delta(&warm_base);
                    assert_eq!(
                        warm.dispatch_allocs,
                        0,
                        "{}: traced warm dispatch allocated",
                        wl.meta().name
                    );
                    (results, sess.cached_code(), sess.trace_events())
                })
            })
            .collect();

        for h in handles {
            let (results, snapshot, events) = h.join().unwrap();
            assert_eq!(
                results, oracle_results,
                "{}: traced results diverge from oracle",
                meta.name
            );
            assert_eq!(
                normalize(snapshot),
                oracle_code,
                "{}: traced cache diverges from oracle cache",
                meta.name
            );
            // Every thread dispatched, so every thread recorded.
            assert!(
                events
                    .iter()
                    .any(|e| e.kind.category() == dyc::obs::Category::Dispatch),
                "{}: traced thread recorded no dispatch events",
                meta.name
            );
        }
        assert_eq!(
            shared.stats().specializations,
            oracle_specs,
            "{}: tracing changed the specialization count",
            meta.name
        );
    }
}

#[test]
fn fallback_policy_matches_oracle_results_on_all_workloads() {
    // The Fallback miss policy trades specialization for latency on
    // races; results must still be identical everywhere.
    for w in all() {
        let meta = w.meta();
        let program = Compiler::new()
            .compile(&w.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", meta.name));
        let reps = n_reps().min(3);

        let mut oracle = program.dynamic_session();
        let oracle_results = run_sequence(w.as_ref(), &mut oracle, reps);

        let shared = program.shared_runtime_with(SharedOptions {
            miss_policy: MissPolicy::Fallback,
            ..SharedOptions::default()
        });
        let threads = n_threads().min(4);
        let w = Arc::new(w);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let w = Arc::clone(&w);
                let shared = Arc::clone(&shared);
                let sess = program.threaded_session(&shared);
                std::thread::spawn(move || {
                    let mut sess = sess;
                    run_sequence(w.as_ref().as_ref(), &mut sess, reps)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().unwrap(),
                oracle_results,
                "{}: fallback-policy results diverge from oracle",
                meta.name
            );
        }
    }
}
