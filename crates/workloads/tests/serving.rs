//! Serving-harness regression tests: deterministic key streams, a
//! replay validated against the single-threaded oracle with zero
//! duplicate specializations, and an eviction hit-rate sanity bound
//! under churn.
//!
//! These ride on `dyc_bench::traffic` (a dev-only dependency cycle —
//! bench depends on workloads for its tables, workloads dev-depends on
//! bench for the harness). `dyc_serve` replays the same streams at
//! 10^6–10^8 dispatches; this file pins the behavior CI can afford.

use dyc::obs::{Json, LiveHandles, LiveMetric, Sampler, SamplerConfig, WatchdogConfig};
use dyc::{Compiler, Value};
use dyc_bench::traffic::{
    expected, replay, replay_live, serve_source, Pattern, ServeConfig, StreamConfig, TrafficGen,
    ALL_PATTERNS,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Dispatch budget for the replay tests: 10^5 in release (the scale the
/// issue pins), scaled down in debug where the interpreter runs ~20x
/// slower.
fn n_dispatches() -> u64 {
    if cfg!(debug_assertions) {
        20_000
    } else {
        100_000
    }
}

/// The streams are seeded SplitMix64: same (seed, thread) must replay
/// the same keys forever. These prefixes are pinned so any change to
/// the generators (CDF construction, per-thread seeding, pattern
/// arithmetic) fails loudly instead of silently re-shaping every
/// benchmark in EXPERIMENTS.md.
#[test]
fn stream_prefixes_are_pinned() {
    let golden: [(Pattern, [u64; 8]); 4] = [
        (Pattern::Zipfian, [0, 2, 4, 0, 727, 1, 332, 4]),
        (Pattern::Churn, [259, 338, 404, 498, 262, 349, 420, 469]),
        (
            Pattern::FlashCrowd,
            [4096, 4096, 4096, 4096, 4096, 4096, 4096, 4096],
        ),
        (Pattern::Stampede, [0, 0, 0, 0, 1, 1, 1, 1]),
    ];
    for (pattern, want) in golden {
        let gen = TrafficGen::new(StreamConfig::of(pattern));
        let mut s = gen.stream(42, 0);
        let got: Vec<u64> = (0..8).map(|_| s.next_key()).collect();
        assert_eq!(got, want, "{} stream prefix changed", pattern.name());
    }
}

/// Same (seed, thread) replays identically; different threads diverge
/// (except stampede, whose streams are position-driven by design so all
/// threads hit the same key at the same position).
#[test]
fn streams_deterministic_per_thread() {
    for pattern in ALL_PATTERNS {
        let gen = TrafficGen::new(StreamConfig::of(pattern));
        let a: Vec<u64> = {
            let mut s = gen.stream(7, 3);
            (0..256).map(|_| s.next_key()).collect()
        };
        let b: Vec<u64> = {
            let mut s = gen.stream(7, 3);
            (0..256).map(|_| s.next_key()).collect()
        };
        assert_eq!(a, b, "{}: same (seed, thread) diverged", pattern.name());
        let c: Vec<u64> = {
            let mut s = gen.stream(7, 4);
            (0..256).map(|_| s.next_key()).collect()
        };
        if pattern == Pattern::Stampede {
            assert_eq!(a, c, "stampede threads must run in lockstep");
        } else {
            assert_ne!(a, c, "{}: threads 3 and 4 identical", pattern.name());
        }
    }
}

/// The closed-form oracle the replay validates against must itself
/// match the interpreter running the serve region single-threaded.
#[test]
fn closed_form_oracle_matches_single_threaded_interpreter() {
    let program = Compiler::new()
        .compile(&serve_source(None))
        .expect("serve source compiles");
    let mut sess = program.dynamic_session();
    for key in [0i64, 1, 7, 8, 63, 4095] {
        for x in [0i64, 1, 4] {
            let out = sess
                .run("serve", &[Value::I(key), Value::I(x)])
                .expect("serve runs");
            assert_eq!(
                out,
                Some(Value::I(expected(key, x))),
                "oracle diverges at key {key}, x {x}"
            );
        }
    }
}

/// A multi-threaded zipfian replay must stay in balance and perform
/// exactly one specialization per distinct key — the single-flight map
/// suppresses every duplicate, so `specializations == |distinct keys|`.
/// (Each dispatch inside `replay` is already checked against the
/// closed-form oracle; a wrong result fails the test through `replay`.)
#[test]
fn replay_balances_with_zero_duplicate_specializations() {
    let cfg = ServeConfig {
        stream: StreamConfig::of(Pattern::Zipfian),
        dispatches: n_dispatches(),
        threads: 4,
        seed: 7,
        ..ServeConfig::default()
    };
    let r = replay(&cfg).expect("replay succeeds");
    r.balance_check().expect("meters balance");
    assert_eq!(r.dispatches, cfg.dispatches);

    // Mirror replay's thread slicing to enumerate the distinct keys the
    // run actually dispatched.
    let gen = TrafficGen::new(cfg.stream);
    let per = cfg.dispatches / cfg.threads as u64;
    let extra = (cfg.dispatches % cfg.threads as u64) as usize;
    let mut distinct: HashSet<u64> = HashSet::new();
    for t in 0..cfg.threads {
        let n = per + u64::from(t < extra);
        let mut s = gen.stream(cfg.seed, t as u32);
        for _ in 0..n {
            distinct.insert(s.next_key());
        }
    }
    assert_eq!(
        r.snapshot.specializations,
        distinct.len() as u64,
        "duplicate specializations slipped past the single-flight map"
    );
    assert_eq!(r.hits + r.misses, r.dispatches);
}

/// Under rolling churn with a `cache_all(k)` bound smaller than the
/// live window, the clock must evict; the bounded run's hit rate must
/// sit strictly below the unbounded run's, and the unbounded run on the
/// same stream must serve almost entirely from cache.
#[test]
fn churn_eviction_hit_rate_sanity() {
    let base = ServeConfig {
        stream: StreamConfig::of(Pattern::Churn),
        dispatches: n_dispatches(),
        threads: 2,
        seed: 11,
        ..ServeConfig::default()
    };
    let unbounded = replay(&base).expect("unbounded replay");
    unbounded.balance_check().expect("unbounded balance");
    let bounded = replay(&ServeConfig {
        bound: Some(64),
        ..base
    })
    .expect("bounded replay");
    bounded.balance_check().expect("bounded balance");

    assert_eq!(unbounded.snapshot.cache_evictions, 0);
    assert!(
        bounded.snapshot.cache_evictions > 0,
        "cache_all(64) under churn never evicted"
    );
    assert!(
        unbounded.hit_rate > 0.95,
        "unbounded churn hit rate too low: {}",
        unbounded.hit_rate
    );
    assert!(
        bounded.hit_rate < unbounded.hit_rate,
        "bounded hit rate {} not below unbounded {}",
        bounded.hit_rate,
        unbounded.hit_rate
    );
    // The bound still retains part of the window: the run must not
    // degenerate to a 100%-miss stream either.
    assert!(
        bounded.hit_rate > 0.01,
        "bounded churn hit rate implausibly low: {}",
        bounded.hit_rate
    );
}

/// The observer-effect-free guarantee, extended to the live sampler: on
/// every stream shape, a replay with the sampler ticking and the
/// watchdog armed must publish byte-identical specialized code, the
/// same specialization count, and balanced meters — while the live
/// counters themselves must agree exactly with the run's own meters.
/// (Raw hit/wait/race splits are scheduling-dependent and deliberately
/// NOT compared across the two runs.)
#[test]
fn sampled_replay_is_observer_effect_free() {
    for pattern in ALL_PATTERNS {
        let cfg = ServeConfig {
            stream: StreamConfig::of(pattern),
            dispatches: n_dispatches() / 2,
            threads: 4,
            seed: 13,
            ..ServeConfig::default()
        };
        let base = replay(&cfg).expect("unsampled replay");
        base.balance_check().expect("unsampled balance");

        let handles = LiveHandles::with_flight(4096);
        let sampler = Sampler::spawn(
            Arc::clone(&handles.registry),
            handles.flight.clone(),
            SamplerConfig {
                interval: Duration::from_millis(25),
                watchdog: Some(WatchdogConfig::default()),
                ring: 256,
                ..SamplerConfig::default()
            },
        );
        let sampled = replay_live(&cfg, Some(&handles)).expect("sampled replay");
        sampled.balance_check().expect("sampled balance");
        let snap = handles.registry.snapshot();
        let (windows, incidents) = sampler.stop();

        let p = pattern.name();
        assert_eq!(base.dispatches, sampled.dispatches, "{p}: dispatches");
        assert_eq!(
            base.code_digest, sampled.code_digest,
            "{p}: sampling changed the published code"
        );
        assert_eq!(
            base.snapshot.specializations, sampled.snapshot.specializations,
            "{p}: sampling changed the specialization count"
        );
        // The live counters are a second, independently-fed view of the
        // sampled run's meters — they must agree exactly.
        assert_eq!(snap.get(LiveMetric::Dispatches), sampled.dispatches, "{p}");
        assert_eq!(snap.get(LiveMetric::Hits), sampled.hits, "{p}: hits");
        assert_eq!(snap.get(LiveMetric::Misses), sampled.misses, "{p}: misses");
        assert_eq!(
            snap.get(LiveMetric::Specializations),
            sampled.snapshot.specializations,
            "{p}: live specializations"
        );
        assert_eq!(
            snap.miss_ns.count(),
            sampled.misses,
            "{p}: live miss histogram count"
        );
        assert!(!windows.is_empty(), "{p}: sampler produced no windows");
        assert!(
            incidents.is_empty(),
            "{p}: default thresholds fired on a healthy run: {:?}",
            incidents[0].anomaly
        );
    }
}

/// An induced eviction storm — a tiny `cache_all(4)` bound under a
/// rolling churn stream — must trigger exactly one incident (the
/// watchdog latches), and the incident must carry a parseable Chrome
/// trace of the flight-recorder capture plus a parseable JSON record,
/// dumped to the incident directory.
#[test]
fn eviction_storm_triggers_one_incident() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("storm-incidents");
    let _ = std::fs::remove_dir_all(&dir);
    let handles = LiveHandles::with_flight(4096);
    let sampler = Sampler::spawn(
        Arc::clone(&handles.registry),
        handles.flight.clone(),
        SamplerConfig {
            interval: Duration::from_millis(10),
            // Eviction-storm rule only, hair trigger, latched: the
            // sustained storm must still produce exactly one incident.
            watchdog: Some(WatchdogConfig {
                trigger_after: 1,
                clear_after: 2,
                evict_share: 0.05,
                evict_min: 16,
                convoy_share: 1.1,
                break_even_factor: f64::INFINITY,
                spike_factor: f64::INFINITY,
                ..WatchdogConfig::default()
            }),
            incident_dir: Some(dir.clone()),
            ..SamplerConfig::default()
        },
    );
    let cfg = ServeConfig {
        stream: StreamConfig::of(Pattern::Churn),
        dispatches: n_dispatches(),
        threads: 2,
        seed: 17,
        bound: Some(4),
        ..ServeConfig::default()
    };
    let r = replay_live(&cfg, Some(&handles)).expect("storm replay");
    r.balance_check().expect("storm balance");
    assert!(
        r.snapshot.cache_evictions > 1000,
        "cache_all(4) under churn should evict heavily, got {}",
        r.snapshot.cache_evictions
    );
    let (_, incidents) = sampler.stop();
    assert_eq!(
        incidents.len(),
        1,
        "latched watchdog must fire exactly once under a sustained storm"
    );
    let inc = &incidents[0];
    assert_eq!(inc.anomaly.kind.name(), "eviction-storm");
    let trace = dyc::obs::parse_chrome_trace(&inc.trace_json).expect("incident trace parses");
    assert!(!trace.events.is_empty(), "flight-recorder capture is empty");
    assert!(trace
        .meta
        .iter()
        .any(|(k, v)| k == "incident" && v == "eviction-storm"));
    let rec = Json::parse(&inc.record_json).expect("incident record parses");
    assert_eq!(rec.get("kind").and_then(Json::str), Some("eviction-storm"));
    assert_eq!(inc.paths.len(), 2, "record + trace files");
    for p in &inc.paths {
        assert!(p.exists(), "incident dump {} missing", p.display());
    }
}

/// `dyc_serve --live`'s scrape path: while a replay runs with the
/// sampler attached, the std-only HTTP endpoint must answer a
/// Prometheus scrape whose counters are live (nonzero dispatches
/// mid-run or at worst immediately after).
#[test]
fn live_scrape_serves_prometheus_during_replay() {
    use dyc_bench::live::{http_get, MetricsServer};
    let handles = LiveHandles::new();
    let sampler = Sampler::spawn(
        Arc::clone(&handles.registry),
        None,
        SamplerConfig {
            interval: Duration::from_millis(10),
            ..SamplerConfig::default()
        },
    );
    let server = MetricsServer::start("127.0.0.1:0", sampler.view()).expect("bind");
    let addr = server.local_addr().to_string();
    let cfg = ServeConfig {
        stream: StreamConfig::of(Pattern::Zipfian),
        dispatches: n_dispatches(),
        threads: 4,
        seed: 19,
        ..ServeConfig::default()
    };
    let (r, scraped) = std::thread::scope(|s| {
        let replayer = s.spawn(|| replay_live(&cfg, Some(&handles)));
        // Poll until a scrape shows live dispatches (or the replay ends
        // — the counters are cumulative, so the last scrape still
        // proves the endpoint served during the session).
        let mut scraped = String::new();
        while !replayer.is_finished() {
            if let Ok(body) = http_get(&addr, "/metrics") {
                scraped = body;
                if scrape_value(&scraped, "dyc_live_dispatches_total") > 0.0 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let r = replayer.join().expect("replay thread").expect("replay");
        if scrape_value(&scraped, "dyc_live_dispatches_total") == 0.0 {
            scraped = http_get(&addr, "/metrics").expect("final scrape");
        }
        (r, scraped)
    });
    r.balance_check().expect("balance");
    server.stop();
    let _ = sampler.stop();
    assert!(scraped.contains("# TYPE dyc_live_dispatches_total counter"));
    assert!(scraped.contains("# HELP dyc_live_dispatches_total"));
    assert!(
        scrape_value(&scraped, "dyc_live_dispatches_total") > 0.0,
        "scrape never showed live dispatches:\n{scraped}"
    );
}

/// First sample value of `name` in a Prometheus text body.
fn scrape_value(body: &str, name: &str) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(name)?.trim_start().parse().ok())
        .unwrap_or(0.0)
}
