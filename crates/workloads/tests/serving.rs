//! Serving-harness regression tests: deterministic key streams, a
//! replay validated against the single-threaded oracle with zero
//! duplicate specializations, and an eviction hit-rate sanity bound
//! under churn.
//!
//! These ride on `dyc_bench::traffic` (a dev-only dependency cycle —
//! bench depends on workloads for its tables, workloads dev-depends on
//! bench for the harness). `dyc_serve` replays the same streams at
//! 10^6–10^8 dispatches; this file pins the behavior CI can afford.

use dyc::{Compiler, Value};
use dyc_bench::traffic::{
    expected, replay, serve_source, Pattern, ServeConfig, StreamConfig, TrafficGen, ALL_PATTERNS,
};
use std::collections::HashSet;

/// Dispatch budget for the replay tests: 10^5 in release (the scale the
/// issue pins), scaled down in debug where the interpreter runs ~20x
/// slower.
fn n_dispatches() -> u64 {
    if cfg!(debug_assertions) {
        20_000
    } else {
        100_000
    }
}

/// The streams are seeded SplitMix64: same (seed, thread) must replay
/// the same keys forever. These prefixes are pinned so any change to
/// the generators (CDF construction, per-thread seeding, pattern
/// arithmetic) fails loudly instead of silently re-shaping every
/// benchmark in EXPERIMENTS.md.
#[test]
fn stream_prefixes_are_pinned() {
    let golden: [(Pattern, [u64; 8]); 4] = [
        (Pattern::Zipfian, [0, 2, 4, 0, 727, 1, 332, 4]),
        (Pattern::Churn, [259, 338, 404, 498, 262, 349, 420, 469]),
        (
            Pattern::FlashCrowd,
            [4096, 4096, 4096, 4096, 4096, 4096, 4096, 4096],
        ),
        (Pattern::Stampede, [0, 0, 0, 0, 1, 1, 1, 1]),
    ];
    for (pattern, want) in golden {
        let gen = TrafficGen::new(StreamConfig::of(pattern));
        let mut s = gen.stream(42, 0);
        let got: Vec<u64> = (0..8).map(|_| s.next_key()).collect();
        assert_eq!(got, want, "{} stream prefix changed", pattern.name());
    }
}

/// Same (seed, thread) replays identically; different threads diverge
/// (except stampede, whose streams are position-driven by design so all
/// threads hit the same key at the same position).
#[test]
fn streams_deterministic_per_thread() {
    for pattern in ALL_PATTERNS {
        let gen = TrafficGen::new(StreamConfig::of(pattern));
        let a: Vec<u64> = {
            let mut s = gen.stream(7, 3);
            (0..256).map(|_| s.next_key()).collect()
        };
        let b: Vec<u64> = {
            let mut s = gen.stream(7, 3);
            (0..256).map(|_| s.next_key()).collect()
        };
        assert_eq!(a, b, "{}: same (seed, thread) diverged", pattern.name());
        let c: Vec<u64> = {
            let mut s = gen.stream(7, 4);
            (0..256).map(|_| s.next_key()).collect()
        };
        if pattern == Pattern::Stampede {
            assert_eq!(a, c, "stampede threads must run in lockstep");
        } else {
            assert_ne!(a, c, "{}: threads 3 and 4 identical", pattern.name());
        }
    }
}

/// The closed-form oracle the replay validates against must itself
/// match the interpreter running the serve region single-threaded.
#[test]
fn closed_form_oracle_matches_single_threaded_interpreter() {
    let program = Compiler::new()
        .compile(&serve_source(None))
        .expect("serve source compiles");
    let mut sess = program.dynamic_session();
    for key in [0i64, 1, 7, 8, 63, 4095] {
        for x in [0i64, 1, 4] {
            let out = sess
                .run("serve", &[Value::I(key), Value::I(x)])
                .expect("serve runs");
            assert_eq!(
                out,
                Some(Value::I(expected(key, x))),
                "oracle diverges at key {key}, x {x}"
            );
        }
    }
}

/// A multi-threaded zipfian replay must stay in balance and perform
/// exactly one specialization per distinct key — the single-flight map
/// suppresses every duplicate, so `specializations == |distinct keys|`.
/// (Each dispatch inside `replay` is already checked against the
/// closed-form oracle; a wrong result fails the test through `replay`.)
#[test]
fn replay_balances_with_zero_duplicate_specializations() {
    let cfg = ServeConfig {
        stream: StreamConfig::of(Pattern::Zipfian),
        dispatches: n_dispatches(),
        threads: 4,
        seed: 7,
        ..ServeConfig::default()
    };
    let r = replay(&cfg).expect("replay succeeds");
    r.balance_check().expect("meters balance");
    assert_eq!(r.dispatches, cfg.dispatches);

    // Mirror replay's thread slicing to enumerate the distinct keys the
    // run actually dispatched.
    let gen = TrafficGen::new(cfg.stream);
    let per = cfg.dispatches / cfg.threads as u64;
    let extra = (cfg.dispatches % cfg.threads as u64) as usize;
    let mut distinct: HashSet<u64> = HashSet::new();
    for t in 0..cfg.threads {
        let n = per + u64::from(t < extra);
        let mut s = gen.stream(cfg.seed, t as u32);
        for _ in 0..n {
            distinct.insert(s.next_key());
        }
    }
    assert_eq!(
        r.snapshot.specializations,
        distinct.len() as u64,
        "duplicate specializations slipped past the single-flight map"
    );
    assert_eq!(r.hits + r.misses, r.dispatches);
}

/// Under rolling churn with a `cache_all(k)` bound smaller than the
/// live window, the clock must evict; the bounded run's hit rate must
/// sit strictly below the unbounded run's, and the unbounded run on the
/// same stream must serve almost entirely from cache.
#[test]
fn churn_eviction_hit_rate_sanity() {
    let base = ServeConfig {
        stream: StreamConfig::of(Pattern::Churn),
        dispatches: n_dispatches(),
        threads: 2,
        seed: 11,
        ..ServeConfig::default()
    };
    let unbounded = replay(&base).expect("unbounded replay");
    unbounded.balance_check().expect("unbounded balance");
    let bounded = replay(&ServeConfig {
        bound: Some(64),
        ..base
    })
    .expect("bounded replay");
    bounded.balance_check().expect("bounded balance");

    assert_eq!(unbounded.snapshot.cache_evictions, 0);
    assert!(
        bounded.snapshot.cache_evictions > 0,
        "cache_all(64) under churn never evicted"
    );
    assert!(
        unbounded.hit_rate > 0.95,
        "unbounded churn hit rate too low: {}",
        unbounded.hit_rate
    );
    assert!(
        bounded.hit_rate < unbounded.hit_rate,
        "bounded hit rate {} not below unbounded {}",
        bounded.hit_rate,
        unbounded.hit_rate
    );
    // The bound still retains part of the window: the run must not
    // degenerate to a 100%-miss stream either.
    assert!(
        bounded.hit_rate > 0.01,
        "bounded churn hit rate implausibly low: {}",
        bounded.hit_rate
    );
}
