//! # dyc-workloads — the paper's benchmark suite, reproduced
//!
//! Table 1 of the paper lists five applications (dinero, m88ksim, mipsi,
//! pnmconvol, viewperf) and five kernels (binary, chebyshev, dotproduct,
//! query, romberg). Each is re-implemented here in DyCL with the same
//! annotations the paper describes, together with deterministic input
//! generators matching the paper's inputs (Table 1's "Values of Static
//! Variables" column) and the substrates they need — an address-trace
//! generator for dinero, a MIPS-subset ISA + assembler + bubble-sort guest
//! program for mipsi, an image/convolution-matrix model for pnmconvol, and
//! so on.
//!
//! [`measure`] contains the harness that regenerates the paper's Tables
//! 2–5 numbers from these workloads.

pub mod binary;
pub mod chebyshev;
pub mod dinero;
pub mod dotproduct;
pub mod m88ksim;
pub mod measure;
pub mod mipsi;
pub mod pnmconvol;
pub mod query;
pub mod rng;
pub mod romberg;
pub mod unrle;
pub mod viewperf;

use dyc::{Session, Value};

/// Application vs kernel, as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Mid-sized, widely used application.
    Application,
    /// Small kernel from prior dynamic-compilation studies.
    Kernel,
}

/// Static description of a workload (Table 1's columns).
#[derive(Debug, Clone)]
pub struct Meta {
    /// Benchmark name.
    pub name: &'static str,
    /// Application or kernel.
    pub kind: Kind,
    /// Table 1 "Description".
    pub description: &'static str,
    /// Table 1 "Annotated Static Variables".
    pub static_vars: &'static str,
    /// Table 1 "Values of Static Variables".
    pub static_values: &'static str,
    /// Name of the dynamically compiled (region) function.
    pub region_func: &'static str,
    /// Unit in which the break-even point is expressed (Table 3).
    pub break_even_unit: &'static str,
    /// How many such units one region invocation covers.
    pub units_per_invocation: u64,
}

/// A benchmark: DyCL source plus input setup and result checking.
/// Workloads are stateless descriptions, so they are `Send + Sync` and
/// can drive per-thread sessions of one shared concurrent runtime.
pub trait Workload: Send + Sync {
    /// Static description (Table 1).
    fn meta(&self) -> Meta;

    /// The annotated DyCL source.
    fn source(&self) -> String;

    /// Allocate and initialize inputs in a fresh session; returns the
    /// argument list for one region invocation. Deterministic: the same
    /// memory layout is produced in every session.
    fn setup_region(&self, sess: &mut Session) -> Vec<Value>;

    /// Restore any memory the region mutates, so repeated invocations do
    /// identical work. Default: nothing to restore.
    fn reset(&self, _sess: &mut Session, _args: &[Value]) {}

    /// Arguments for the whole-program entry point (`main` in the
    /// source), if this workload has one (Table 4 covers applications).
    fn setup_main(&self, _sess: &mut Session) -> Option<Vec<Value>> {
        None
    }

    /// Number of region invocations `main` performs (for Table 4's
    /// time-in-region column).
    fn main_region_invocations(&self) -> u64 {
        0
    }

    /// Validate a region result against the known-good answer.
    fn check_region(&self, result: Option<Value>, sess: &mut Session) -> bool;
}

/// All ten workloads, applications first (Table 1 order).
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(dinero::Dinero::default()),
        Box::new(m88ksim::M88ksim::default()),
        Box::new(mipsi::Mipsi::default()),
        Box::new(pnmconvol::Pnmconvol::default()),
        Box::new(viewperf::ViewperfProject::default()),
        Box::new(viewperf::ViewperfShade::default()),
        Box::new(binary::BinarySearch::default()),
        Box::new(chebyshev::Chebyshev::default()),
        Box::new(dotproduct::DotProduct::default()),
        Box::new(query::Query::default()),
        Box::new(romberg::Romberg::default()),
    ]
}

/// Look up a workload by name (including extension workloads that are
/// not part of the paper's Table 1 suite).
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    if name == "unrle" {
        return Some(Box::new(unrle::Unrle::default()));
    }
    all().into_iter().find(|w| w.meta().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_benchmarks() {
        let names: Vec<String> = all().iter().map(|w| w.meta().name.to_string()).collect();
        for expected in [
            "dinero",
            "m88ksim",
            "mipsi",
            "pnmconvol",
            "viewperf:project",
            "viewperf:shade",
            "binary",
            "chebyshev",
            "dotproduct",
            "query",
            "romberg",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mipsi").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_source_compiles() {
        for w in all() {
            let m = w.meta();
            dyc::Compiler::new()
                .compile(&w.source())
                .unwrap_or_else(|e| panic!("{} fails to compile: {e}", m.name));
        }
    }
}
